//! The CNK kernel object: `bgsim::Kernel` implementation tying together
//! the partitioner, scheduler, futexes, guard pages, function shipping,
//! and persistent memory.

use std::collections::HashMap;

use bgsim::chip;
use bgsim::engine::EvHandle;
use bgsim::fault::{FaultEvent, FaultKind};
use bgsim::idmap::IdMap;
use bgsim::machine::{
    BlockKind, BootReport, CommCaps, JobMap, Kernel, LaunchError, MemOpResult, NetMsg, RankInfo,
    SimCore, SyscallAction, Workload, WorkloadFactory, IPI_GUARD_REPOSITION,
};
use bgsim::noise::NoiseSource;
use bgsim::op::{CloneArgs, Op};
use bgsim::rng::LazyStreams;
use bgsim::telemetry::{Domain, Slot, TpKind};
use bgsim::tlb::{Tlb, TlbEntry};
use ciod::{service_cycles, Ciod, RetryPolicy, Vfs};
use sysabi::{
    CloneFlags, CoreId, Errno, FutexOp, JobSpec, MapFlags, NodeId, ProcId, Prot, Rank, Sig,
    SigDisposition, SysReq, SysRet, Tid, UtsName,
};

use crate::boot;
use crate::futex::FutexTable;
use crate::mem::{partition_node, tracker_errno, AddressSpace, ProcRequirements, Region};
use crate::persist::PersistRegistry;
use crate::process::{Guard, Process};
use crate::sched::{SchedError, Scheduler};

// ---- timing constants (cycles) ---------------------------------------------

/// Trap entry + exit for a local syscall.
const SYSCALL_BASE: u64 = 140;
/// Marshaling a function-ship request (fixed part).
const FSHIP_MARSHAL: u64 = 700;
/// Demarshaling a reply (fixed part).
const FSHIP_DEMARSHAL: u64 = 450;
/// Marshal/demarshal cost per 8 payload bytes.
const FSHIP_PER_8B: u64 = 1;
/// Thread creation (clone) cost.
const CLONE_COST: u64 = 1_900;
/// Machine-check handler cost charged on a parity fault (§V.B).
const PARITY_HANDLER_COST: u64 = 2_200;
/// RAS handler cost per spurious DAC guard fault in an injected storm.
const GUARD_STORM_COST: u64 = 420;

/// Kernel-event tag namespace for function-ship retry timers. Kept out
/// of the injected-noise tag space (which packs a source index and core
/// into the low bits) by the top bit; the low 63 bits carry the io id.
const TAG_IO_RETRY: u64 = 1 << 63;

/// CNK tunables.
#[derive(Clone, Debug)]
pub struct CnkConfig {
    /// TLB entries available to the static map per core (the rest are
    /// kernel-reserved).
    pub tlb_budget: usize,
    /// Physical bytes reserved for the kernel at the bottom of DRAM.
    pub kernel_reserve: u64,
    /// Physical bytes reserved for the persistent-memory arena at the
    /// top of DRAM (§IV.D).
    pub persist_reserve: u64,
    /// Enable the §VIII extended thread affinity model.
    pub affinity_extension: bool,
    /// Guard range size at the heap boundary (§IV.C).
    pub guard_bytes: u64,
    /// Job credentials.
    pub uid: u32,
    pub gid: u32,
    /// Research hook: synthetic noise sources injected into the kernel
    /// (empty in production CNK — that emptiness *is* §V.A's result).
    /// This is the §I "easily modifiable base" point and the Ferreira-
    /// style noise-injection methodology the paper cites.
    pub injected_noise: Vec<NoiseSource>,
    /// BG/L-style I/O service: one CIOD thread per I/O node servicing
    /// requests serially, instead of BG/P's dedicated ioproxy per
    /// compute-node process (§IV.A: "A key difference from BG/L is that
    /// on BG/P each MPI process has a dedicated I/O proxy process").
    /// Used by the `io_proxy_ablation` bench.
    pub bgl_io_mode: bool,
    /// Retry/timeout/backoff policy for function-shipped I/O when the
    /// CIOD link misbehaves. Timers are only armed when the machine has
    /// a fault schedule — fault-free runs schedule no extra events.
    pub io_retry: RetryPolicy,
}

impl Default for CnkConfig {
    fn default() -> Self {
        CnkConfig {
            tlb_budget: 60,
            kernel_reserve: 16 << 20,
            persist_reserve: 64 << 20,
            affinity_extension: false,
            guard_bytes: 64 << 10,
            uid: 1000,
            gid: 100,
            injected_noise: Vec::new(),
            bgl_io_mode: false,
            io_retry: RetryPolicy::default(),
        }
    }
}

/// A function-shipped request in flight, stamped with its issue cycle so
/// the reply can report round-trip latency to the telemetry registry.
struct PendingReq {
    issued: u64,
    io: PendingIo,
    /// Send attempts so far (first try included).
    attempts: u32,
    /// The marshaled request, retained for resends. Empty when fault
    /// injection is off (no retries can ever be needed).
    payload: Vec<u8>,
    /// The armed reply-timeout timer, when fault injection is on.
    timer: Option<EvHandle>,
}

/// One entry of the kernel's RAS event log (§V: "RAS events are
/// reported and handled").
#[derive(Clone, Copy, Debug)]
pub struct RasRecord {
    pub at: u64,
    pub node: u32,
    /// Short event code (`coll-drop`, `io-retry`, `io-eio`, ...).
    pub code: &'static str,
    pub detail: u64,
}

/// What a pending function-ship request will do on completion.
enum PendingIo {
    /// Ordinary syscall: hand the demarshaled result to the thread.
    Plain { tid: Tid },
    /// An mmap-with-fd fill (§VI.A: "to mmap a file, CNK copies in the
    /// data"): write the read data at `vaddr`, then return `vaddr`.
    MmapFill { tid: Tid, vaddr: u64 },
}

/// The Compute Node Kernel.
///
/// Per-node and per-ION columns (`futexes`, `persist`, `ciods`, the RNG
/// streams) materialize on first touch rather than at boot, so an idle
/// node on a 100k-node rack costs no kernel-side heap. RNG streams are
/// a pure function of `(master seed, name, index)`, so lazy creation is
/// draw-for-draw identical to the old eager columns.
pub struct Cnk {
    pub cfg: CnkConfig,
    sched: Scheduler,
    /// Per-node futex tables, grown on first touch. Indexed sparsely: a
    /// short vec means the tail nodes have never parked a waiter.
    futexes: Vec<FutexTable>,
    /// Per-node persistent-memory registries, grown on first
    /// `PersistOpen`. Contents survive reproducible resets (backed by
    /// self-refreshed DRAM), so they are only dropped on a shape change.
    persist: Vec<PersistRegistry>,
    /// Node count `persist` is provisioned for (shape-change detector).
    persist_nodes: usize,
    /// Processes keyed by `ProcId` — ids are allocated from `next_proc`
    /// monotonically, so the dense window iterates in rank order.
    procs: IdMap<Process>,
    next_proc: u32,
    vfs: Vfs,
    /// CIOD daemons, grown on first attach/service per ION. Like
    /// `persist`, ION state survives compute-chip resets.
    ciods: Vec<Ciod>,
    /// ION count `ciods` is provisioned for (shape-change detector).
    ciod_count: usize,
    ion_rng: LazyStreams,
    pending_io: IdMap<PendingReq>,
    next_io: u64,
    noise_rng: LazyStreams,
    /// Per-ION serialization point for BG/L-style I/O service.
    ion_busy_until: Vec<u64>,
    /// At-most-once cache on the I/O node: replies already sent, keyed
    /// by io id, so a retried request that was in fact serviced replays
    /// the reply instead of re-running the side effect. Only populated
    /// when fault injection is on.
    served: HashMap<u64, Vec<u8>>,
    /// The kernel RAS event log.
    ras_log: Vec<RasRecord>,
    booted: bool,
}

impl Cnk {
    pub fn new(cfg: CnkConfig) -> Cnk {
        Cnk {
            cfg,
            sched: Scheduler::new(0, 1),
            futexes: Vec::new(),
            persist: Vec::new(),
            persist_nodes: 0,
            procs: IdMap::new(),
            next_proc: 0,
            vfs: Vfs::new(),
            ciods: Vec::new(),
            ciod_count: 0,
            ion_rng: LazyStreams::new("ion-service"),
            pending_io: IdMap::new(),
            next_io: 0,
            noise_rng: LazyStreams::new("cnk-injected-noise"),
            ion_busy_until: Vec::new(),
            served: HashMap::new(),
            ras_log: Vec::new(),
            booted: false,
        }
    }

    pub fn with_defaults() -> Cnk {
        Cnk::new(CnkConfig::default())
    }

    /// The I/O-node filesystem (test setup: pre-populate input files).
    pub fn vfs_mut(&mut self) -> &mut Vfs {
        &mut self.vfs
    }

    pub fn vfs(&self) -> &Vfs {
        &self.vfs
    }

    /// The ioproxy console output of a process (job stdout).
    pub fn console_of(&self, sc: &SimCore, proc: ProcId) -> Option<Vec<u8>> {
        let node = self.procs.get(proc.0 as u64)?.node;
        let ion = sc.coll.io_node_of(node) as usize;
        self.ciods
            .get(ion)?
            .proxy(proc.0)
            .map(|p| p.console.clone())
    }

    pub fn process(&self, proc: ProcId) -> Option<&Process> {
        self.procs.get(proc.0 as u64)
    }

    /// The node's futex table, materialized on first touch. A free
    /// function over the field so callers holding disjoint borrows of
    /// other `Cnk` fields can still reach it.
    fn futex_table(futexes: &mut Vec<FutexTable>, node: NodeId) -> &mut FutexTable {
        if futexes.len() <= node.idx() {
            futexes.resize_with(node.idx() + 1, FutexTable::new);
        }
        &mut futexes[node.idx()]
    }

    /// The ION's CIOD daemon, materialized on first touch.
    fn ciod_at(ciods: &mut Vec<Ciod>, ion: usize) -> &mut Ciod {
        while ciods.len() <= ion {
            ciods.push(Ciod::new(ciods.len() as u32));
        }
        &mut ciods[ion]
    }

    /// The node's persist registry, materialized on first `PersistOpen`.
    fn persist_at(
        persist: &mut Vec<PersistRegistry>,
        persist_reserve: u64,
        dram_bytes: u64,
        node: NodeId,
    ) -> &mut PersistRegistry {
        let lo = dram_bytes - persist_reserve;
        if persist.len() <= node.idx() {
            persist.resize_with(node.idx() + 1, || PersistRegistry::new(lo, dram_bytes));
        }
        &mut persist[node.idx()]
    }

    fn proc_of(&self, sc: &SimCore, tid: Tid) -> ProcId {
        sc.thread(tid).proc
    }

    fn done(ret: SysRet, cost: u64) -> SyscallAction {
        SyscallAction::Done { ret, cost }
    }

    fn err(e: Errno, cost: u64) -> SyscallAction {
        SyscallAction::Done {
            ret: SysRet::Err(e),
            cost,
        }
    }

    /// Pin a process's full static map into every one of its cores' TLBs.
    ///
    /// The map is identical on every core of the process, so the default
    /// layout builds it once and Arc-shares it (`Tlb::install_base`) —
    /// one copy per process, not per core, which is most of the TLB
    /// footprint at rack scale. `eager_layout` keeps the legacy per-core
    /// copies. Both paths validate the same entries in the same order,
    /// so a bad map fails with an identical error either way.
    fn pin_map(&self, sc: &mut SimCore, proc: &Process) -> Result<(), LaunchError> {
        let mut map = Vec::new();
        for r in proc
            .aspace
            .map
            .regions
            .iter()
            .chain(proc.aspace.persist.iter())
        {
            for &(ps, va) in &r.pages {
                map.push(TlbEntry {
                    vaddr: va,
                    paddr: r.paddr + (va - r.vaddr),
                    size: ps,
                    pinned: true,
                });
            }
        }
        if sc.cfg.eager_layout {
            for &core in &proc.cores {
                for &entry in &map {
                    sc.tlbs[core.idx()].pin(entry).map_err(|e| {
                        LaunchError::NoMemory(format!("TLB pin failed on {core}: {e:?}"))
                    })?;
                }
            }
        } else {
            let Some(&first) = proc.cores.first() else {
                return Ok(());
            };
            Tlb::validate_map(&map, sc.tlbs[first.idx()].capacity())
                .map_err(|e| LaunchError::NoMemory(format!("TLB pin failed on {first}: {e:?}")))?;
            let shared: std::sync::Arc<[TlbEntry]> = map.into();
            for &core in &proc.cores {
                sc.tlbs[core.idx()]
                    .install_base(shared.clone())
                    .map_err(|e| {
                        LaunchError::NoMemory(format!("TLB pin failed on {core}: {e:?}"))
                    })?;
            }
        }
        Ok(())
    }

    /// Pin one extra region (persist attach at runtime).
    fn pin_region(&self, sc: &mut SimCore, proc: &Process, r: &Region) -> Result<(), Errno> {
        for &core in &proc.cores {
            for &(ps, va) in &r.pages {
                let pa = r.paddr + (va - r.vaddr);
                if sc.tlbs[core.idx()]
                    .pin(TlbEntry {
                        vaddr: va,
                        paddr: pa,
                        size: ps,
                        pinned: true,
                    })
                    .is_err()
                {
                    return Err(Errno::ENOMEM);
                }
            }
        }
        Ok(())
    }

    /// Arm (or re-arm) a guard range on a core's DAC.
    fn arm_guard(sc: &mut SimCore, core: CoreId, slot: u32, lo: u64, hi: u64) {
        sc.dacs[core.idx()]
            .arm(slot, lo, hi)
            .expect("DAC slot invalid");
    }

    /// Function-ship a request for `tid` (§IV.A). Marks the thread
    /// pending and returns the marshal cost spent before blocking.
    fn fship(&mut self, sc: &mut SimCore, tid: Tid, req: &SysReq, pending: PendingIo) {
        let node = sc.thread(tid).node;
        let proc = sc.thread(tid).proc;
        let id = self.next_io;
        self.next_io += 1;
        let encoded = ciod::wire::encode_req(req);
        let mut payload = proc.0.to_be_bytes().to_vec();
        payload.extend_from_slice(&encoded);
        let bytes = payload.len() as u64;
        // Marshal cost is paid by the caller as message-send delay.
        let marshal = FSHIP_MARSHAL + bytes / 8 * FSHIP_PER_8B;
        // The retry machinery only exists under fault injection: a
        // fault-free run arms no timer and retains no payload, so its
        // event stream is untouched.
        let faulty = !sc.cfg.faults.is_empty();
        let timer = faulty.then(|| {
            sc.schedule_kernel_event_in(node, TAG_IO_RETRY | id, self.cfg.io_retry.timeout(0))
        });
        self.pending_io.insert(
            id,
            PendingReq {
                issued: sc.now(),
                io: pending,
                attempts: 1,
                payload: if faulty { payload.clone() } else { Vec::new() },
                timer,
            },
        );
        sc.tel
            .count(sc.tel.ids.fship_requests, Slot::Node(node.0), 1);
        let core = sc.thread(tid).core;
        sc.tel.tp(
            sc.now(),
            node.0,
            core.0,
            TpKind::FshipReq,
            req.name(),
            id,
            bytes,
        );
        sc.prof
            .span(Domain::Ciod, sc.now(), node.0, "fship_req", marshal);
        sc.coll_send(node, node, bytes, id * 4 + 1, payload, marshal);
    }

    /// Append to the RAS log (and telemetry) — the §V "RAS events are
    /// reported and handled" path.
    fn ras(&mut self, sc: &mut SimCore, node: NodeId, code: &'static str, detail: u64) {
        self.ras_log.push(RasRecord {
            at: sc.now(),
            node: node.0,
            code,
            detail,
        });
        sc.tel.count(sc.tel.ids.ras_events, Slot::Node(node.0), 1);
        sc.tel.tp(
            sc.now(),
            node.0,
            bgsim::telemetry::NO_CORE,
            TpKind::HwFault,
            code,
            detail,
            0,
        );
    }

    /// A reply-timeout timer fired for io `id`: resend with exponential
    /// backoff, or give up and fail the syscall with a clean `EIO`.
    fn io_timeout(&mut self, sc: &mut SimCore, node: NodeId, id: u64) {
        let policy = self.cfg.io_retry;
        let Some(req) = self.pending_io.get_mut(id) else {
            // Reply won the race; the timer is stale.
            return;
        };
        req.timer = None;
        if policy.exhausted(req.attempts) {
            let req = self
                .pending_io
                .remove(id)
                .expect("pending io vanished mid-timeout");
            self.ras(sc, node, "io-eio", id);
            let (PendingIo::Plain { tid } | PendingIo::MmapFill { tid, .. }) = req.io;
            sc.defer_unblock(tid, Some(SysRet::Err(Errno::EIO)));
            return;
        }
        let attempt = req.attempts;
        req.attempts += 1;
        let payload = req.payload.clone();
        let bytes = payload.len() as u64;
        let backoff = policy.backoff(attempt - 1);
        let marshal = FSHIP_MARSHAL + bytes / 8 * FSHIP_PER_8B + backoff;
        let timer =
            sc.schedule_kernel_event_in(node, TAG_IO_RETRY | id, backoff + policy.timeout(attempt));
        if let Some(req) = self.pending_io.get_mut(id) {
            req.timer = Some(timer);
        }
        sc.tel.count(sc.tel.ids.ciod_retries, Slot::Node(node.0), 1);
        sc.tel
            .count(sc.tel.ids.ciod_backoff_cycles, Slot::Node(node.0), backoff);
        sc.tel.tp(
            sc.now(),
            node.0,
            bgsim::telemetry::NO_CORE,
            TpKind::FshipReq,
            "retry",
            id,
            attempt as u64,
        );
        sc.prof
            .span(Domain::Ciod, sc.now(), node.0, "fship_retry", backoff);
        sc.coll_send(node, node, bytes, id * 4 + 1, payload, marshal);
    }

    /// Service a request on the I/O node and send the reply back.
    fn ion_service(&mut self, sc: &mut SimCore, msg: NetMsg) {
        let id = msg.tag / 4;
        let faulty = !sc.cfg.faults.is_empty();
        // At-most-once: a compute-node retry of a request we already
        // serviced replays the cached reply — the side effect (write,
        // unlink...) must not run twice. Cache only exists under fault
        // injection; without it no request is ever sent twice.
        if faulty {
            if let Some(reply) = self.served.get(&id) {
                let reply = reply.clone();
                let bytes = reply.len() as u64;
                sc.coll_send(msg.dst_node, msg.src_node, bytes, id * 4 + 2, reply, 1_000);
                return;
            }
        }
        // A mangled request (injected corruption) fails wire validation;
        // the daemon logs and drops it — the compute node's retry timer
        // recovers. Sending garbage back would be worse than silence.
        let Some(prefix) = msg.payload.get(0..4) else {
            self.ras(sc, msg.src_node, "ion-drop-corrupt", id);
            return;
        };
        let proc = u32::from_be_bytes(prefix.try_into().unwrap_or([0; 4]));
        let req_bytes = &msg.payload[4..];
        let ion = sc.coll.io_node_of(msg.src_node) as usize;
        let (ret, service) = match ciod::wire::decode_req(req_bytes) {
            Ok(req) => {
                let ret = Self::ciod_at(&mut self.ciods, ion).service(&mut self.vfs, proc, &req);
                (ret, service_cycles(&req))
            }
            Err(_) => {
                self.ras(sc, msg.src_node, "ion-drop-corrupt", id);
                return;
            }
        };
        // The ION runs Linux: its service time jitters.
        let jitter = Ciod::service_jitter(self.ion_rng.get(&sc.hub, ion as u64));
        let mut delay = service + jitter;
        if self.cfg.bgl_io_mode {
            // BG/L-style single service thread: requests queue behind
            // each other on the I/O node.
            if self.ion_busy_until.len() <= ion {
                self.ion_busy_until.resize(ion + 1, 0);
            }
            let now = sc.now();
            let start = self.ion_busy_until[ion].max(now);
            self.ion_busy_until[ion] = start + service;
            delay += start - now;
        }
        let reply = ciod::wire::encode_ret(&ret);
        if faulty {
            self.served.insert(id, reply.clone());
        }
        let bytes = reply.len() as u64;
        sc.prof
            .span(Domain::Ciod, sc.now(), msg.dst_node.0, "ion_service", delay);
        sc.coll_send(msg.dst_node, msg.src_node, bytes, id * 4 + 2, reply, delay);
    }

    /// A reply arrived back at the compute node.
    fn cn_reply(&mut self, sc: &mut SimCore, msg: NetMsg) {
        let id = msg.tag / 4;
        // Late duplicate (a retry raced the original reply): the request
        // already completed; drop silently.
        let Some(req) = self.pending_io.get(id) else {
            return;
        };
        // A mangled reply (injected corruption) fails wire validation.
        // With a retry timer armed, leave the request pending — the
        // timer resends and the ION replays its cached reply. Without
        // one (fault injection off: unreachable), fall through and the
        // decode below degrades to a clean `EIO`.
        if ciod::wire::decode_ret(&msg.payload).is_err() && req.timer.is_some() {
            self.ras(sc, msg.dst_node, "cn-drop-corrupt", id);
            return;
        }
        let PendingReq {
            issued,
            io: pending,
            timer,
            ..
        } = self
            .pending_io
            .remove(id)
            .expect("pending io vanished mid-reply");
        if let Some(h) = timer {
            sc.cancel_kernel_event(h);
        }
        let latency = sc.now().saturating_sub(issued);
        sc.tel.hist(
            sc.tel.ids.fship_latency,
            Slot::Node(msg.dst_node.0),
            latency,
        );
        sc.tel.tp(
            sc.now(),
            msg.dst_node.0,
            bgsim::telemetry::NO_CORE,
            TpKind::FshipRep,
            "reply",
            id,
            latency,
        );
        sc.prof.span(
            Domain::Ciod,
            sc.now(),
            msg.dst_node.0,
            "fship_reply",
            latency,
        );
        let ret = ciod::wire::decode_ret(&msg.payload).unwrap_or(SysRet::Err(Errno::EIO));
        let demarshal = FSHIP_DEMARSHAL + msg.bytes / 8 * FSHIP_PER_8B;
        match pending {
            PendingIo::Plain { tid } => {
                // The demarshal cost is modeled as already absorbed in the
                // reply delay; unblock with the result.
                let _ = demarshal;
                sc.defer_unblock(tid, Some(ret));
            }
            PendingIo::MmapFill { tid, vaddr } => match ret {
                SysRet::Data(data) => {
                    let proc = sc.thread(tid).proc;
                    let node = sc.thread(tid).node;
                    if let Some(p) = self.procs.get(proc.0 as u64) {
                        if let Some(pa) = p.aspace.translate(vaddr) {
                            let _ = sc.dram[node.idx()].write(pa, &data);
                        }
                    }
                    sc.defer_unblock(tid, Some(SysRet::Val(vaddr as i64)));
                }
                SysRet::Err(e) => sc.defer_unblock(tid, Some(SysRet::Err(e))),
                _ => sc.defer_unblock(tid, Some(SysRet::Err(Errno::EIO))),
            },
        }
    }

    /// Deliver a signal to a thread per process disposition. Returns true
    /// if the signal was queued/acted on.
    fn post_signal(&mut self, sc: &mut SimCore, tid: Tid, sig: Sig) {
        let proc_id = sc.thread(tid).proc;
        let node = sc.thread(tid).node;
        let Some(p) = self.procs.get(proc_id.0 as u64) else {
            return;
        };
        match p.disposition(sig) {
            SigDisposition::Ignore => {}
            SigDisposition::Handler(_) => {
                // Interrupt a futex wait with EINTR (NPTL cancellation
                // depends on this).
                if matches!(
                    sc.thread(tid).state,
                    bgsim::ThreadState::Blocked(BlockKind::Futex)
                ) && self
                    .futexes
                    .get_mut(node.idx())
                    .is_some_and(|f| f.remove(tid))
                {
                    sc.defer_unblock(tid, Some(SysRet::Err(Errno::EINTR)));
                }
                sc.post_signal(tid, sig);
            }
            SigDisposition::Default => {
                if sig.default_fatal() || sig == Sig::Parity {
                    // An unhandled machine-check is fatal (the
                    // checkpoint/restart world of §V.B).
                    sc.defer_kill(proc_id, 128 + sig as i32);
                } else {
                    // Non-fatal default: ignored.
                }
            }
        }
    }

    fn schedule_noise(&mut self, sc: &mut SimCore, node: NodeId, src_idx: usize, core_local: u32) {
        let delay = {
            let src = &self.cfg.injected_noise[src_idx];
            src.next_delay(self.noise_rng.get(&sc.hub, node.0 as u64))
        };
        sc.schedule_kernel_event_in(node, ((src_idx as u64) << 8) | core_local as u64, delay);
    }

    fn tp_futex_wake(&mut self, sc: &mut SimCore, tid: Tid, node: NodeId, uaddr: u64, woken: i64) {
        let core = sc.thread(tid).core;
        sc.tel.count(
            sc.tel.ids.futex_wakes,
            Slot::Core(core.0),
            woken.max(0) as u64,
        );
        sc.tel.tp(
            sc.now(),
            node.0,
            core.0,
            TpKind::FutexWake,
            "wake",
            uaddr,
            woken.max(0) as u64,
        );
    }

    fn guard_hit(&mut self, sc: &mut SimCore, tid: Tid, vaddr: u64) {
        let core = sc.thread(tid).core;
        let node = sc.thread(tid).node;
        sc.tel.count(sc.tel.ids.guard_faults, Slot::Core(core.0), 1);
        sc.tel.tp(
            sc.now(),
            node.0,
            core.0,
            TpKind::GuardFault,
            "dac_guard",
            tid.0 as u64,
            vaddr,
        );
        // A DAC guard hit is delivered as SIGSEGV; default kills the
        // process (stack smashed into the heap).
        self.post_signal(sc, tid, Sig::Segv);
    }

    /// The kernel RAS event log, in record order.
    pub fn ras_log(&self) -> &[RasRecord] {
        &self.ras_log
    }

    /// Human-readable RAS exit report (one line per event), the §V
    /// "report to the control system" stand-in.
    pub fn ras_report(&self) -> String {
        let mut s = String::new();
        for r in &self.ras_log {
            s.push_str(&format!(
                "cycle {} node {} {} detail={}\n",
                r.at, r.node, r.code, r.detail
            ));
        }
        s
    }

    /// `CiodShortWrite`: truncate the data of every in-flight shipped
    /// write touching `node` to half, re-marshaling the request — the
    /// application sees a genuine POSIX short write and must continue
    /// the write itself.
    fn shorten_inflight_writes(&mut self, sc: &mut SimCore, node: NodeId) {
        use bgsim::machine::NetDomain;
        for id in sc.inflight_ids(node, NetDomain::Collective) {
            let Some(m) = sc.inflight_msg_mut(id) else {
                continue;
            };
            // Only requests (tag%4==1) with a decodable body are writes
            // we can shorten.
            if m.tag % 4 != 1 || m.payload.len() < 4 {
                continue;
            }
            let prefix: Vec<u8> = m.payload[0..4].to_vec();
            let Ok(req) = ciod::wire::decode_req(&m.payload[4..]) else {
                continue;
            };
            let shortened = match req {
                SysReq::Write { fd, data } if data.len() >= 2 => {
                    let half = data.len() / 2;
                    SysReq::Write {
                        fd,
                        data: data[..half].to_vec(),
                    }
                }
                SysReq::Pwrite { fd, data, offset } if data.len() >= 2 => {
                    let half = data.len() / 2;
                    SysReq::Pwrite {
                        fd,
                        data: data[..half].to_vec(),
                        offset,
                    }
                }
                _ => continue,
            };
            let mut payload = prefix;
            payload.extend_from_slice(&ciod::wire::encode_req(&shortened));
            m.payload = payload;
            self.ras(sc, node, "short-write", id);
        }
    }
}

impl Kernel for Cnk {
    fn name(&self) -> &'static str {
        "cnk"
    }

    fn boot(&mut self, sc: &mut SimCore, reproducible: bool) -> BootReport {
        let nodes = sc.cfg.nodes as usize;
        let tpc = sc.cfg.chip.threads_per_core;
        self.sched = Scheduler::new(sc.cfg.total_cores() as usize, tpc);
        // Futex tables are per-boot state; drop and regrow on demand.
        self.futexes.clear();
        if self.persist_nodes != nodes {
            // Persist registries survive reproducible resets (backed by
            // self-refreshed DRAM); re-provision only when the machine
            // shape changes. Each node's registry materializes on its
            // first PersistOpen.
            self.persist.clear();
            self.persist_nodes = nodes;
        }
        let ions = sc.cfg.io_nodes() as usize;
        self.ion_busy_until.clear();
        if self.ciod_count != ions {
            // ION state survives compute-chip resets; re-provision only
            // on shape change. Daemons (and their service-jitter RNG
            // streams) materialize on first attach/service.
            self.ciods.clear();
            self.ion_rng = LazyStreams::new("ion-service");
            self.ciod_count = ions;
        }
        // Research-mode injected noise (off by default). Streams restart
        // from their seeds on every boot.
        if !self.cfg.injected_noise.is_empty() {
            self.noise_rng = LazyStreams::new("cnk-injected-noise");
            for node in 0..nodes as u32 {
                for (i, src) in self.cfg.injected_noise.clone().iter().enumerate() {
                    for core in 0..sc.cfg.chip.cores {
                        if src.cores.contains(core) {
                            self.schedule_noise(sc, NodeId(node), i, core);
                        }
                    }
                }
            }
        }
        if sc.cfg.eager_layout {
            // Legacy footprint: materialize every per-node/per-ION
            // column up front. Reservation only — lazily derived state
            // is identical, so traces don't move.
            self.futexes.resize_with(nodes, FutexTable::new);
            let dram = sc.cfg.chip.dram_bytes;
            let lo = dram - self.cfg.persist_reserve;
            while self.persist.len() < nodes {
                self.persist.push(PersistRegistry::new(lo, dram));
            }
            while self.ciods.len() < ions {
                self.ciods.push(Ciod::new(self.ciods.len() as u32));
            }
            self.ion_rng.materialize_eager(&sc.hub, ions as u64);
            self.ion_busy_until.resize(ions, 0);
            if !self.cfg.injected_noise.is_empty() {
                self.noise_rng.materialize_eager(&sc.hub, nodes as u64);
            }
        }
        self.booted = true;
        boot::boot_report(&sc.cfg.chip, reproducible)
    }

    fn reset(&mut self) {
        self.sched.reset();
        self.futexes.clear();
        self.procs.clear();
        self.pending_io.clear();
        self.booted = false;
        // persist registries, vfs, and ciods survive (ION state and
        // self-refreshed DRAM are not part of the compute-chip reset).
    }

    fn launch(
        &mut self,
        sc: &mut SimCore,
        spec: &JobSpec,
        factory: &mut dyn WorkloadFactory,
    ) -> Result<JobMap, LaunchError> {
        assert!(self.booted, "launch before boot");
        // Tear down the previous job: clear private memory (clean slate),
        // unpin TLBs, detach proxies. `IdMap::keys` is ascending-id, so
        // teardown runs in rank order.
        let old: Vec<u64> = self.procs.keys().collect();
        for proc in old {
            let Some(p) = self.procs.remove(proc) else {
                continue;
            };
            for r in &p.aspace.map.regions {
                let _ = sc.dram[p.node.idx()].clear_range(r.paddr, r.bytes);
            }
            let ion = sc.coll.io_node_of(p.node) as usize;
            Self::ciod_at(&mut self.ciods, ion).detach_proc(proc as u32);
        }
        for t in &mut sc.tlbs {
            t.reset();
        }
        for d in &mut sc.dacs {
            d.reset();
        }
        self.sched.reset();
        for f in &mut self.futexes {
            f.clear();
        }

        let ppn = spec.mode.procs_per_node();
        let cpp = spec.mode.cores_per_proc();
        let img = &spec.image;
        let dynamic_bytes = if img.dynamic {
            // A fixed window for ld.so + libraries, with slack for dlopen.
            let need = img
                .dynlibs
                .iter()
                .map(|l| l.text_bytes + l.data_bytes)
                .sum::<u64>();
            crate::mem::partition::align_up(need + (32 << 20), 16 << 20)
        } else {
            0
        };
        let req = ProcRequirements {
            text_bytes: img.text_bytes,
            data_bytes: img.data_bytes,
            heap_stack_bytes: img.initial_heap + img.main_stack * 4,
            shared_bytes: spec.shared_mem_bytes,
            dynamic_bytes,
        };
        let maps = partition_node(
            &req,
            ppn,
            sc.cfg.chip.dram_bytes,
            self.cfg.kernel_reserve,
            self.cfg.persist_reserve,
            self.cfg.tlb_budget,
        )
        .map_err(|e| LaunchError::NoMemory(format!("{e:?}")))?;

        // Pre-populate the ION filesystem with the dynamic libraries so
        // the ld.so model can open them.
        if img.dynamic {
            let root = self.vfs.root();
            let lib = match self.vfs.resolve(root, "/lib") {
                Ok(i) => i,
                Err(_) => self
                    .vfs
                    .mkdir_at(root, "lib", 0o755, 0, 0)
                    .map_err(|e| LaunchError::BadSpec(format!("ION /lib create failed: {e:?}")))?,
            };
            for l in &img.dynlibs {
                if self.vfs.resolve(lib, &l.name).is_err() {
                    let ino = self
                        .vfs
                        .create_at(lib, &l.name, 0o755, 0, 0)
                        .expect("lib create");
                    self.vfs
                        .truncate(ino, l.text_bytes + l.data_bytes)
                        .expect("lib size");
                }
            }
        }

        let mut ranks = Vec::new();
        for node in 0..spec.nodes {
            let node_id = NodeId(node);
            let ion = sc.coll.io_node_of(node_id) as usize;
            for pi in 0..ppn {
                let rank = Rank(node * ppn + pi);
                let proc = ProcId(self.next_proc);
                self.next_proc += 1;
                let cores: Vec<CoreId> = (0..cpp)
                    .map(|c| sc.core_of(node_id, pi * cpp + c))
                    .collect();
                let aspace = AddressSpace::new(maps[pi as usize].clone(), img.main_stack);
                let mut p = Process::new(
                    proc,
                    node_id,
                    rank,
                    cores.clone(),
                    aspace,
                    self.cfg.uid,
                    self.cfg.gid,
                );
                p.persist_grants = spec.persist_grants.clone();

                // Static core assignment (§VIII).
                for &c in &cores {
                    self.sched.assign_core(c, proc);
                }
                let main_core = cores[0];
                self.sched
                    .admit(main_core, proc)
                    .map_err(|_| LaunchError::TooManyThreads)?;

                let wl = factory.main_workload(rank);
                let tid = sc.create_thread(proc, node_id, main_core, wl);
                p.main_tid = tid;
                p.live_threads = 1;

                // Arm the main-thread guard at the heap boundary (§IV.C).
                let brk0 = p.aspace.heap.brk_addr();
                let slot = p
                    .alloc_dac_slot(main_core, sc.cfg.chip.dac_pairs)
                    .expect("fresh core has DAC slots");
                Self::arm_guard(sc, main_core, slot, brk0, brk0 + self.cfg.guard_bytes);
                p.guards.insert(
                    tid,
                    Guard {
                        lo: brk0,
                        hi: brk0 + self.cfg.guard_bytes,
                        slot,
                        tracks_heap: true,
                    },
                );

                self.pin_map(sc, &p)?;
                Self::ciod_at(&mut self.ciods, ion).attach_proc(&self.vfs, proc.0, p.uid, p.gid);
                self.procs.insert(proc.0 as u64, p);
                ranks.push(RankInfo {
                    rank,
                    proc,
                    node: node_id,
                    main_tid: tid,
                });
            }
        }
        Ok(JobMap { ranks })
    }

    fn syscall(&mut self, sc: &mut SimCore, tid: Tid, req: &SysReq) -> SyscallAction {
        // Function-shipped I/O (§IV.A).
        if req.is_io() {
            if !sc.cfg.chip.collective_unit.usable() {
                return Self::err(Errno::EIO, SYSCALL_BASE);
            }
            self.fship(sc, tid, req, PendingIo::Plain { tid });
            return SyscallAction::Block {
                kind: BlockKind::Io,
            };
        }

        let proc_id = self.proc_of(sc, tid);
        let node = sc.thread(tid).node;

        match req {
            SysReq::Brk { addr } => {
                let Some(p) = self.procs.get_mut(proc_id.0 as u64) else {
                    return Self::err(Errno::ESRCH, SYSCALL_BASE);
                };
                let old = p.aspace.heap.brk_addr();
                let newb = match p.aspace.heap.brk(*addr) {
                    Ok(b) => b,
                    Err(_) => return Self::done(SysRet::Val(old as i64), SYSCALL_BASE + 120),
                };
                // Heap grew: reposition the main-thread guard (§IV.C),
                // via IPI if another thread moved the boundary.
                if newb > old {
                    let main_tid = p.main_tid;
                    let main_core = p.cores[0];
                    if let Some(g) = p.guards.get_mut(&main_tid) {
                        if g.tracks_heap {
                            g.lo = newb;
                            g.hi = newb + self.cfg.guard_bytes;
                            let (lo, hi, slot) = (g.lo, g.hi, g.slot);
                            if tid == main_tid {
                                Self::arm_guard(sc, main_core, slot, lo, hi);
                            } else {
                                // "CNK issues an inter-processor interrupt
                                // to the main thread in order to reposition
                                // the guard area."
                                sc.send_ipi(main_core, IPI_GUARD_REPOSITION);
                            }
                        }
                    }
                }
                Self::done(SysRet::Val(newb as i64), SYSCALL_BASE + 160)
            }
            SysReq::Mmap {
                len,
                prot,
                flags,
                fd,
                offset,
                ..
            } => {
                let Some(p) = self.procs.get_mut(proc_id.0 as u64) else {
                    return Self::err(Errno::ESRCH, SYSCALL_BASE);
                };
                match fd {
                    None => match p.aspace.heap.mmap(*len, *prot) {
                        Ok(addr) => Self::done(SysRet::Val(addr as i64), SYSCALL_BASE + 210),
                        Err(e) => Self::err(tracker_errno(e), SYSCALL_BASE + 210),
                    },
                    Some(fd) => {
                        // File mapping: read-only, full copy-in (§VI.A),
                        // MAP_COPY style (§IV.B.2).
                        if prot.contains(Prot::WRITE) && !flags.contains(MapFlags::PRIVATE) {
                            return Self::err(Errno::EACCES, SYSCALL_BASE + 210);
                        }
                        // Library text goes into the fixed dynamic
                        // window if present, else the heap arena.
                        let vaddr = match p.aspace.alloc_dynamic(*len) {
                            Ok(v) => v,
                            Err(_) => match p.aspace.heap.mmap(*len, *prot) {
                                Ok(v) => v,
                                Err(e) => return Self::err(tracker_errno(e), SYSCALL_BASE + 210),
                            },
                        };
                        let read = SysReq::Pread {
                            fd: *fd,
                            len: *len,
                            offset: *offset,
                        };
                        self.fship(sc, tid, &read, PendingIo::MmapFill { tid, vaddr });
                        SyscallAction::Block {
                            kind: BlockKind::Io,
                        }
                    }
                }
            }
            SysReq::Munmap { addr, len } => {
                let Some(p) = self.procs.get_mut(proc_id.0 as u64) else {
                    return Self::err(Errno::ESRCH, SYSCALL_BASE);
                };
                match p.aspace.heap.munmap(*addr, *len) {
                    Ok(()) => Self::done(SysRet::Val(0), SYSCALL_BASE + 170),
                    Err(e) => Self::err(tracker_errno(e), SYSCALL_BASE + 170),
                }
            }
            SysReq::Mprotect { addr, len, prot } => {
                let Some(p) = self.procs.get_mut(proc_id.0 as u64) else {
                    return Self::err(Errno::ESRCH, SYSCALL_BASE);
                };
                // Record for the guard-page convention (§IV.C) even if
                // the range is brk space.
                p.last_mprotect = Some((*addr, *len));
                match p.aspace.heap.mprotect(*addr, *len, *prot) {
                    Ok(()) => Self::done(SysRet::Val(0), SYSCALL_BASE + 110),
                    Err(e) => Self::err(tracker_errno(e), SYSCALL_BASE + 110),
                }
            }
            SysReq::Clone { .. } => {
                // Direct clone without a child program makes no sense in
                // the simulation; NPTL goes through Op::Spawn.
                Self::err(Errno::EINVAL, SYSCALL_BASE)
            }
            SysReq::SetTidAddress { addr } => {
                if let Some(p) = self.procs.get_mut(proc_id.0 as u64) {
                    p.clear_tid_addr.insert(tid, *addr);
                }
                Self::done(SysRet::Val(tid.0 as i64), SYSCALL_BASE)
            }
            SysReq::Futex { uaddr, op } => self.sys_futex(sc, tid, proc_id, node, *uaddr, *op),
            SysReq::SchedYield => {
                let core = sc.thread(tid).core;
                self.sched.enqueue(core, proc_id, tid);
                SyscallAction::YieldCpu
            }
            SysReq::Sigaction { sig, disposition } => {
                if !sig.catchable() && !matches!(disposition, SigDisposition::Default) {
                    return Self::err(Errno::EINVAL, SYSCALL_BASE);
                }
                if let Some(p) = self.procs.get_mut(proc_id.0 as u64) {
                    p.sig.insert(*sig, *disposition);
                }
                Self::done(SysRet::Val(0), SYSCALL_BASE + 60)
            }
            SysReq::Tgkill { tid: target, sig } => {
                let target = Tid(*target);
                if target.idx() >= sc.threads.len()
                    || sc.thread(target).proc != proc_id
                    || !sc.thread(target).state.is_live()
                {
                    return Self::err(Errno::ESRCH, SYSCALL_BASE);
                }
                self.post_signal(sc, target, *sig);
                Self::done(SysRet::Val(0), SYSCALL_BASE + 200)
            }
            SysReq::Gettid => Self::done(SysRet::Val(tid.0 as i64), SYSCALL_BASE),
            SysReq::Getpid => Self::done(SysRet::Val(proc_id.0 as i64), SYSCALL_BASE),
            SysReq::Uname => Self::done(SysRet::Uname(self.utsname()), SYSCALL_BASE + 80),
            SysReq::ExitThread { code } => SyscallAction::ExitThread { code: *code },
            SysReq::ExitGroup { code } => SyscallAction::ExitProc { code: *code },
            // §VII.B: "MPI cannot spawn dynamic tasks because CNK does
            // not allow fork/exec operations."
            SysReq::Fork | SysReq::Exec { .. } => Self::err(Errno::ENOSYS, SYSCALL_BASE),
            SysReq::PersistOpen { name, len } => {
                let Some(p) = self.procs.get_mut(proc_id.0 as u64) else {
                    return Self::err(Errno::ESRCH, SYSCALL_BASE);
                };
                let granted = p.persist_grants.iter().any(|g| g == name);
                let uid = p.uid;
                let dram = sc.cfg.chip.dram_bytes;
                match Self::persist_at(&mut self.persist, self.cfg.persist_reserve, dram, node)
                    .open(name, *len, uid, granted)
                {
                    Ok(r) => {
                        let region = PersistRegistry::as_region(&r);
                        // Already attached? (re-open in the same job)
                        if p.aspace.persist.iter().any(|x| x.vaddr == region.vaddr) {
                            return Self::done(SysRet::Val(r.vaddr as i64), SYSCALL_BASE + 300);
                        }
                        p.aspace.attach_persist(region.clone());
                        let Some(p_immutable) = self.procs.get(proc_id.0 as u64) else {
                            return Self::err(Errno::ESRCH, SYSCALL_BASE + 300);
                        };
                        if let Err(e) = self.pin_region(sc, p_immutable, &region) {
                            return Self::err(e, SYSCALL_BASE + 300);
                        }
                        Self::done(SysRet::Val(r.vaddr as i64), SYSCALL_BASE + 300)
                    }
                    Err(e) => Self::err(e, SYSCALL_BASE + 300),
                }
            }
            SysReq::QueryStaticMap => {
                let Some(p) = self.procs.get(proc_id.0 as u64) else {
                    return Self::err(Errno::ESRCH, SYSCALL_BASE);
                };
                Self::done(
                    SysRet::StaticMap(p.aspace.map.as_triples()),
                    SYSCALL_BASE + 150,
                )
            }
            SysReq::AffinityPartner { local_core } => {
                if !self.cfg.affinity_extension {
                    return Self::err(Errno::ENOSYS, SYSCALL_BASE);
                }
                if *local_core >= sc.cfg.chip.cores {
                    return Self::err(Errno::EINVAL, SYSCALL_BASE);
                }
                let core = sc.core_of(node, *local_core);
                // Designating one's own core is pointless but harmless.
                self.sched.set_remote_partner(core, proc_id);
                Self::done(SysRet::Val(0), SYSCALL_BASE + 120)
            }
            other => {
                debug_assert!(!other.is_io());
                Self::err(Errno::ENOSYS, SYSCALL_BASE)
            }
        }
    }

    fn spawn(
        &mut self,
        sc: &mut SimCore,
        parent: Tid,
        args: &CloneArgs,
        core_hint: Option<u32>,
        child: Box<dyn Workload>,
    ) -> (SysRet, u64) {
        let proc_id = sc.thread(parent).proc;
        let node = sc.thread(parent).node;
        // §IV.B.1: "The flags to clone are validated against the expected
        // flags."
        if args.flags != CloneFlags::NPTL_THREAD_FLAGS {
            return (SysRet::Err(Errno::EINVAL), SYSCALL_BASE);
        }
        let Some(p) = self.procs.get(proc_id.0 as u64) else {
            return (SysRet::Err(Errno::ESRCH), SYSCALL_BASE);
        };
        let cores = p.cores.clone();
        // Placement: explicit hint (node-local core index) or the
        // least-loaded core of the process.
        let core = match core_hint {
            Some(local) => {
                if local >= sc.cfg.chip.cores {
                    return (SysRet::Err(Errno::EINVAL), SYSCALL_BASE);
                }
                sc.core_of(node, local)
            }
            None => {
                let sched = &self.sched;
                let mut best = cores[0];
                let mut best_q = usize::MAX;
                for &c in &cores {
                    let q = sched.queued(c) + usize::from(!sc.core_idle(c));
                    if q < best_q {
                        best_q = q;
                        best = c;
                    }
                }
                best
            }
        };
        match self.sched.admit(core, proc_id) {
            Ok(()) => {}
            Err(SchedError::CoreFull) => return (SysRet::Err(Errno::EAGAIN), CLONE_COST),
            Err(_) => return (SysRet::Err(Errno::EPERM), SYSCALL_BASE),
        }
        let tid = sc.create_thread(proc_id, node, core, child);
        let p = self
            .procs
            .get_mut(proc_id.0 as u64)
            .expect("invariant: spawn caller's process exists (it issued the clone)");
        p.live_threads += 1;
        if args.flags.contains(CloneFlags::CHILD_CLEARTID) {
            p.clear_tid_addr.insert(tid, args.child_tid_addr);
        }
        // §IV.C: the last mprotect before clone becomes the new thread's
        // stack guard.
        if let Some((gaddr, glen)) = p.last_mprotect.take() {
            if let Some(slot) = p.alloc_dac_slot(core, sc.cfg.chip.dac_pairs) {
                p.guards.insert(
                    tid,
                    Guard {
                        lo: gaddr,
                        hi: gaddr + glen,
                        slot,
                        tracks_heap: false,
                    },
                );
                Self::arm_guard(sc, core, slot, gaddr, gaddr + glen);
            }
        }
        // CLONE_PARENT_SETTID: write the child's tid at the parent's
        // address.
        if args.flags.contains(CloneFlags::PARENT_SETTID) && args.parent_tid_addr != 0 {
            if let Some(pa) = self.translate(sc, parent, args.parent_tid_addr) {
                let _ = sc.dram[node.idx()].write_u32(pa, tid.0);
            }
        }
        if sc.core_idle(core) {
            sc.dispatch(tid);
        } else {
            self.sched.enqueue(core, proc_id, tid);
        }
        (SysRet::Val(tid.0 as i64), CLONE_COST)
    }

    fn compute_cost(&mut self, sc: &mut SimCore, tid: Tid, op: &Op) -> u64 {
        let node = sc.thread(tid).node;
        let chipc = &sc.cfg.chip;
        match op {
            Op::Compute { cycles } => *cycles,
            Op::Daxpy { n, reps } => chip::daxpy_cycles(chipc, *n, *reps) + sc.refresh_jitter(node),
            Op::Stream { bytes } => {
                // Concurrent streams on the node contend in the L2 banks
                // (§III); this core's own stream counts itself.
                let streams = sc.active_streams(node).max(1);
                chip::stream_cycles(chipc, *bytes, streams) + sc.refresh_jitter(node)
            }
            Op::Flops { flops } => chip::dgemm_cycles(chipc, *flops) + sc.refresh_jitter(node),
            _ => 1,
        }
    }

    fn mem_touch(
        &mut self,
        sc: &mut SimCore,
        tid: Tid,
        vaddr: u64,
        bytes: u64,
        _write: bool,
    ) -> MemOpResult {
        let proc_id = sc.thread(tid).proc;
        let core = sc.thread(tid).core;
        // DAC guard check first (the hardware watches the access).
        let hit = sc.dacs[core.idx()].check(vaddr).is_some()
            || (bytes > 1 && sc.dacs[core.idx()].check(vaddr + bytes - 1).is_some());
        if hit {
            self.guard_hit(sc, tid, vaddr);
            return MemOpResult {
                cost: 420,
                faulted: true,
            };
        }
        let Some(p) = self.procs.get(proc_id.0 as u64) else {
            return MemOpResult {
                cost: 1,
                faulted: false,
            };
        };
        if !p.aspace.mapped(vaddr) || (bytes > 1 && !p.aspace.mapped(vaddr + bytes - 1)) {
            // No demand paging: an unmapped access is an immediate
            // SIGSEGV (§VI.B).
            let node = sc.thread(tid).node;
            sc.tel.count(sc.tel.ids.segv_faults, Slot::Core(core.0), 1);
            sc.tel.tp(
                sc.now(),
                node.0,
                core.0,
                TpKind::Segv,
                "unmapped",
                tid.0 as u64,
                vaddr,
            );
            self.post_signal(sc, tid, Sig::Segv);
            return MemOpResult {
                cost: 420,
                faulted: true,
            };
        }
        // Static TLB: never a miss (§VI.B / Table II "No TLB misses").
        let cost = chip::stream_cycles(&sc.cfg.chip, bytes, 1).max(1);
        MemOpResult {
            cost,
            faulted: false,
        }
    }

    fn pick_next(&mut self, _sc: &mut SimCore, core: CoreId) -> Option<Tid> {
        self.sched.pick(core)
    }

    fn on_unblock(&mut self, sc: &mut SimCore, tid: Tid) {
        let core = sc.thread(tid).core;
        let proc = sc.thread(tid).proc;
        if sc.core_idle(core) {
            sc.dispatch(tid);
        } else {
            self.sched.enqueue(core, proc, tid);
        }
    }

    fn on_exit(&mut self, sc: &mut SimCore, tid: Tid) {
        let core = sc.thread(tid).core;
        let proc_id = sc.thread(tid).proc;
        let node = sc.thread(tid).node;
        self.sched.release(core);
        self.sched.unqueue(core, tid);
        if let Some(f) = self.futexes.get_mut(node.idx()) {
            f.remove(tid);
        }
        if let Some(p) = self.procs.get_mut(proc_id.0 as u64) {
            p.live_threads = p.live_threads.saturating_sub(1);
            // CLONE_CHILD_CLEARTID: clear the tid word and wake joiners
            // (this is what makes pthread_join return).
            if let Some(addr) = p.clear_tid_addr.remove(&tid) {
                if let Some(pa) = p.aspace.translate(addr) {
                    let _ = sc.dram[node.idx()].write_u32(pa, 0);
                    let woken = self
                        .futexes
                        .get_mut(node.idx())
                        .map(|f| f.wake(pa, u32::MAX, u32::MAX))
                        .unwrap_or_default();
                    for t in woken {
                        sc.defer_unblock(t, Some(SysRet::Val(0)));
                    }
                }
            }
            // Disarm the thread's guard.
            if let Some(g) = p.guards.remove(&tid) {
                let _ = sc.dacs[core.idx()].disarm(g.slot);
            }
        }
    }

    fn kernel_event(&mut self, sc: &mut SimCore, node: NodeId, tag: u64) {
        if tag & TAG_IO_RETRY != 0 {
            self.io_timeout(sc, node, tag & !TAG_IO_RETRY);
            return;
        }
        // Production CNK schedules no periodic kernel work — that
        // absence *is* the low-noise result of §V.A. Events only exist
        // here when noise injection is configured for a study.
        let src_idx = ((tag >> 8) & 0xffff) as usize;
        let core_local = (tag & 0xff) as u32;
        if src_idx >= self.cfg.injected_noise.len() {
            return;
        }
        let (cost, src_name) = {
            let src = &self.cfg.injected_noise[src_idx];
            (
                src.cost(self.noise_rng.get(&sc.hub, node.0 as u64)),
                src.name,
            )
        };
        let core = sc.core_of(node, core_local);
        sc.tel.count(sc.tel.ids.daemon_wakes, Slot::Core(core.0), 1);
        sc.tel.tp(
            sc.now(),
            node.0,
            core.0,
            TpKind::DaemonWake,
            src_name,
            src_idx as u64,
            cost,
        );
        sc.stretch_running(core, cost, tag);
        self.schedule_noise(sc, node, src_idx, core_local);
    }

    fn net_deliver(&mut self, sc: &mut SimCore, msg: NetMsg) {
        match msg.tag % 4 {
            1 => self.ion_service(sc, msg),
            2 => self.cn_reply(sc, msg),
            _ => {}
        }
    }

    fn on_ipi(&mut self, sc: &mut SimCore, core: CoreId, kind: u32) {
        if kind != IPI_GUARD_REPOSITION {
            return;
        }
        let _node = sc.node_of_core(core);
        let Some(proc_id) = self.sched.home_proc(core) else {
            return;
        };
        let Some(p) = self.procs.get(proc_id.0 as u64) else {
            return;
        };
        if let Some(g) = p.guards.get(&p.main_tid) {
            Self::arm_guard(sc, core, g.slot, g.lo, g.hi);
        }
    }

    fn on_fault(&mut self, sc: &mut SimCore, core: CoreId, kind: u32) {
        if kind != bgsim::machine::FAULT_PARITY {
            return;
        }
        // §V.B: "CNK was able to handle L1 parity errors by signaling the
        // application with the error to allow the application to perform
        // recovery."
        sc.stretch_running(core, PARITY_HANDLER_COST, 0x2000 | kind as u64);
        if let Some(tid) = sc.running[core.idx()] {
            self.post_signal(sc, tid, Sig::Parity);
        }
    }

    fn on_ras(&mut self, sc: &mut SimCore, node: NodeId, ev: &FaultEvent) {
        // Every injected fault lands in the RAS log — that reporting is
        // the point of the RAS subsystem, whatever the recovery is. The
        // machine already counted/traced the event when it dispatched
        // it (`ras.events`), so only the kernel-side record is added
        // here.
        self.ras_log.push(RasRecord {
            at: sc.now(),
            node: node.0,
            code: ev.kind.name(),
            detail: ev.arg,
        });
        match ev.kind {
            FaultKind::CiodShortWrite => self.shorten_inflight_writes(sc, node),
            FaultKind::GuardStorm => {
                // A storm of spurious DAC guard violations: each one
                // costs handler time on its core, none is a real
                // protection fault, so nobody gets signaled. Survivable
                // noise, visible in `fault.guard`.
                for local in 0..sc.cores_per_node() {
                    let core = sc.core_of(node, local);
                    sc.tel
                        .count(sc.tel.ids.guard_faults, Slot::Core(core.0), ev.arg);
                    sc.tel.tp(
                        sc.now(),
                        node.0,
                        core.0,
                        TpKind::GuardFault,
                        "dac_storm",
                        ev.arg,
                        0,
                    );
                    sc.stretch_running(core, ev.arg * GUARD_STORM_COST, 0x3000);
                }
            }
            // Network faults were applied by the machine layer; machine
            // checks arrive separately through `on_fault`.
            _ => {}
        }
    }

    fn check_invariants(&self, sc: &SimCore) -> Vec<String> {
        use bgsim::machine::ThreadState;
        let mut v = Vec::new();

        // Futex wake accounting: the per-node tables and the thread
        // states must agree exactly — every parked waiter is a
        // futex-blocked thread on that node, each parked once, and
        // every futex-blocked thread is parked somewhere.
        let mut parked: HashMap<Tid, usize> = HashMap::new();
        for (node_idx, table) in self.futexes.iter().enumerate() {
            for tid in table.waiter_tids() {
                *parked.entry(tid).or_insert(0) += 1;
                match sc.threads.get(tid.idx()) {
                    None => v.push(format!(
                        "futex table node {node_idx}: waiter tid {} does not exist",
                        tid.0
                    )),
                    Some(t) => {
                        if t.node.idx() != node_idx {
                            v.push(format!(
                                "futex table node {node_idx}: waiter tid {} lives on node {}",
                                tid.0, t.node.0
                            ));
                        }
                        if t.state != ThreadState::Blocked(BlockKind::Futex) {
                            v.push(format!(
                                "futex waiter tid {} is not futex-blocked (state {:?})",
                                tid.0, t.state
                            ));
                        }
                    }
                }
            }
        }
        for (tid, n) in &parked {
            if *n > 1 {
                v.push(format!("tid {} parked on {n} futex queues", tid.0));
            }
        }
        for t in &sc.threads {
            if t.state == ThreadState::Blocked(BlockKind::Futex) && !parked.contains_key(&t.tid) {
                v.push(format!(
                    "tid {} is futex-blocked but parked in no futex table",
                    t.tid.0
                ));
            }
        }

        // No lost CIOD replies: every pending function-ship request must
        // still have its issuer waiting on it (a fatal machine check
        // tears the job down with requests legitimately in flight).
        let fatal = self.ras_log.iter().any(|r| r.code == "machine-check");
        for (id, req) in self.pending_io.iter() {
            let (PendingIo::Plain { tid } | PendingIo::MmapFill { tid, .. }) = req.io;
            match sc.threads.get(tid.idx()) {
                None => v.push(format!(
                    "pending io #{id}: issuer tid {} does not exist",
                    tid.0
                )),
                Some(t) if t.state.is_live() && t.state != ThreadState::Blocked(BlockKind::Io) => {
                    v.push(format!(
                        "pending io #{id}: issuer tid {} is live but not io-blocked ({:?})",
                        tid.0, t.state
                    ));
                }
                Some(_) => {}
            }
        }
        if sc.live_threads() == 0 && !fatal && !self.pending_io.is_empty() {
            v.push(format!(
                "job finished cleanly with {} CIOD request(s) still pending (lost replies)",
                self.pending_io.len()
            ));
        }

        // Memory-partition conservation: within each process the static
        // map plus attached persistent regions must tile without
        // overlap, virtually and (for the map) physically.
        for (pid, p) in self.procs.iter() {
            let pid = ProcId(pid as u32);
            let mut vspans: Vec<(u64, u64, &'static str)> = Vec::new();
            for r in &p.aspace.map.regions {
                if r.bytes == 0 {
                    v.push(format!("proc {}: zero-byte map region {:?}", pid.0, r.kind));
                    continue;
                }
                vspans.push((r.vaddr, r.vend(), "map"));
            }
            for r in &p.aspace.persist {
                vspans.push((r.vaddr, r.vend(), "persist"));
            }
            vspans.sort_unstable();
            for w in vspans.windows(2) {
                if w[1].0 < w[0].1 {
                    v.push(format!(
                        "proc {}: {} region [{:#x},{:#x}) overlaps {} region [{:#x},{:#x})",
                        pid.0, w[0].2, w[0].0, w[0].1, w[1].2, w[1].0, w[1].1
                    ));
                }
            }
            let mut pspans: Vec<(u64, u64)> = p
                .aspace
                .map
                .regions
                .iter()
                .filter(|r| r.bytes > 0)
                .map(|r| (r.paddr, r.paddr + r.bytes))
                .collect();
            pspans.sort_unstable();
            for w in pspans.windows(2) {
                if w[1].0 < w[0].1 {
                    v.push(format!(
                        "proc {}: physical spans [{:#x},{:#x}) and [{:#x},{:#x}) overlap",
                        pid.0, w[0].0, w[0].1, w[1].0, w[1].1
                    ));
                }
            }
            let live = sc
                .threads
                .iter()
                .filter(|t| t.proc == pid && t.state.is_live())
                .count() as u32;
            if live != p.live_threads {
                v.push(format!(
                    "proc {}: live_threads={} but {} live thread(s) in the machine",
                    pid.0, p.live_threads, live
                ));
            }
        }

        // Function-ship plumbing on the I/O nodes.
        for c in &self.ciods {
            v.extend(c.check_invariants(&self.vfs));
        }
        v
    }

    fn translate(&self, sc: &SimCore, tid: Tid, vaddr: u64) -> Option<u64> {
        let proc = sc.thread(tid).proc;
        self.procs.get(proc.0 as u64)?.aspace.translate(vaddr)
    }

    fn resident_bytes(&self) -> usize {
        self.procs.resident_bytes()
            + self.futexes.capacity() * std::mem::size_of::<FutexTable>()
            + self.persist.capacity() * std::mem::size_of::<PersistRegistry>()
            + self.ciods.capacity() * std::mem::size_of::<Ciod>()
            + self.ion_rng.resident_bytes()
            + self.noise_rng.resident_bytes()
            + self.pending_io.resident_bytes()
            + self.ion_busy_until.capacity() * std::mem::size_of::<u64>()
            + self.ras_log.capacity() * std::mem::size_of::<RasRecord>()
            + self
                .served
                .values()
                .map(|r| r.capacity() + 48)
                .sum::<usize>()
    }

    fn comm_caps(&self, _sc: &SimCore, _tid: Tid) -> CommCaps {
        CommCaps::cnk()
    }

    fn utsname(&self) -> UtsName {
        UtsName::cnk()
    }

    fn features(&self) -> bgsim::features::FeatureMatrix {
        crate::features::matrix()
    }
}

impl Cnk {
    fn sys_futex(
        &mut self,
        sc: &mut SimCore,
        tid: Tid,
        proc_id: ProcId,
        node: NodeId,
        uaddr: u64,
        op: FutexOp,
    ) -> SyscallAction {
        let Some(p) = self.procs.get(proc_id.0 as u64) else {
            return Self::err(Errno::ESRCH, SYSCALL_BASE);
        };
        let Some(pa) = p.aspace.translate(uaddr) else {
            return Self::err(Errno::EFAULT, SYSCALL_BASE + 40);
        };
        let ft = Self::futex_table(&mut self.futexes, node);
        let cost = SYSCALL_BASE + 90;
        match op {
            FutexOp::Wait { expected } | FutexOp::WaitBitset { expected, .. } => {
                let cur = sc.dram[node.idx()].read_u32(pa).unwrap_or(0);
                if cur != expected {
                    return Self::err(Errno::EAGAIN, cost);
                }
                let bitset = match op {
                    FutexOp::WaitBitset { bitset, .. } => bitset,
                    _ => sysabi::futex::FUTEX_BITSET_MATCH_ANY,
                };
                ft.wait(pa, tid, bitset);
                let core = sc.thread(tid).core;
                sc.tel.count(sc.tel.ids.futex_waits, Slot::Core(core.0), 1);
                sc.tel.tp(
                    sc.now(),
                    node.0,
                    core.0,
                    TpKind::FutexWait,
                    "wait",
                    tid.0 as u64,
                    uaddr,
                );
                SyscallAction::Block {
                    kind: BlockKind::Futex,
                }
            }
            FutexOp::Wake { count } => {
                let woken = ft.wake(pa, count, sysabi::futex::FUTEX_BITSET_MATCH_ANY);
                let n = woken.len() as i64;
                for t in woken {
                    sc.defer_unblock(t, Some(SysRet::Val(0)));
                }
                self.tp_futex_wake(sc, tid, node, uaddr, n);
                Self::done(SysRet::Val(n), cost)
            }
            FutexOp::WakeBitset { count, bitset } => {
                let woken = ft.wake(pa, count, bitset);
                let n = woken.len() as i64;
                for t in woken {
                    sc.defer_unblock(t, Some(SysRet::Val(0)));
                }
                self.tp_futex_wake(sc, tid, node, uaddr, n);
                Self::done(SysRet::Val(n), cost)
            }
            FutexOp::Requeue {
                wake,
                requeue,
                target_uaddr,
            }
            | FutexOp::CmpRequeue {
                wake,
                requeue,
                target_uaddr,
                ..
            } => {
                if let FutexOp::CmpRequeue { expected, .. } = op {
                    let cur = sc.dram[node.idx()].read_u32(pa).unwrap_or(0);
                    if cur != expected {
                        return Self::err(Errno::EAGAIN, cost);
                    }
                }
                let Some(tpa) = self
                    .procs
                    .get(proc_id.0 as u64)
                    .and_then(|p| p.aspace.translate(target_uaddr))
                else {
                    return Self::err(Errno::EFAULT, cost);
                };
                let (woken, moved) =
                    Self::futex_table(&mut self.futexes, node).requeue(pa, wake, requeue, tpa);
                let total = woken.len() as i64 + moved as i64;
                for t in woken {
                    sc.defer_unblock(t, Some(SysRet::Val(0)));
                }
                Self::done(SysRet::Val(total), cost)
            }
        }
    }
}
