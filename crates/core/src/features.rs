//! CNK's Table II / Table III feature matrix.

use bgsim::features::{Capability, Ease, EaseRange, FeatureEntry, FeatureMatrix};

/// The CNK column of Tables II and III.
pub fn matrix() -> FeatureMatrix {
    use Capability::*;
    use Ease::*;
    let e = |cap, use_ease, implement_ease| FeatureEntry {
        cap,
        use_ease,
        implement_ease,
    };
    FeatureMatrix {
        kernel: "CNK",
        entries: vec![
            e(LargePageUse, EaseRange::exact(Easy), None),
            e(MultipleLargePageSizes, EaseRange::exact(Easy), None),
            e(LargePhysContiguous, EaseRange::exact(Easy), None),
            e(NoTlbMisses, EaseRange::exact(Easy), None),
            // Table III: medium to implement in CNK.
            e(
                FullMemoryProtection,
                EaseRange::exact(NotAvailable),
                Some(Medium),
            ),
            e(
                GeneralDynamicLinking,
                EaseRange::exact(NotAvailable),
                Some(Medium),
            ),
            e(FullMmap, EaseRange::exact(NotAvailable), Some(Hard)),
            e(PredictableScheduling, EaseRange::exact(Easy), None),
            // "easy - not avail": one thread per core is easy; beyond the
            // fixed limit, unavailable (footnote 3).
            e(ThreadOvercommit, EaseRange::range(Easy, NotAvailable), None),
            e(PerformanceReproducible, EaseRange::exact(Easy), None),
            e(CycleReproducible, EaseRange::exact(Easy), None),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_table_ii_rows() {
        let m = matrix();
        for cap in Capability::ALL {
            assert!(m.get(cap).is_some(), "{cap:?} missing from CNK matrix");
        }
    }

    #[test]
    fn not_available_rows_have_impl_difficulty() {
        // Table III lists implementation difficulty exactly for the
        // rows Table II marks "not avail".
        let m = matrix();
        for e in &m.entries {
            if !e.use_ease.available() {
                assert!(e.implement_ease.is_some(), "{:?}", e.cap);
            }
        }
    }

    #[test]
    fn paper_row_spot_checks() {
        let m = matrix();
        assert_eq!(
            m.get(Capability::NoTlbMisses).unwrap().use_ease,
            EaseRange::exact(Ease::Easy)
        );
        assert_eq!(
            m.get(Capability::FullMmap).unwrap().implement_ease,
            Some(Ease::Hard)
        );
        assert_eq!(
            m.get(Capability::CycleReproducible).unwrap().use_ease,
            EaseRange::exact(Ease::Easy)
        );
    }
}
