//! The futex implementation (§IV.B.1).
//!
//! "For atomic operations, such as pthread_mutex, a full implementation
//! of futex was needed." CNK's futexes key on the *physical* address of
//! the futex word (translation is static, so this is exact) and support
//! the operations NPTL issues: WAIT/WAKE, REQUEUE/CMP_REQUEUE, and the
//! bitset variants.
//!
//! The value check happens against simulated DRAM through the caller, so
//! the lost-wakeup race NPTL depends on the kernel to close is closed the
//! same way here: check-and-block is atomic with respect to wakes because
//! the kernel is single-threaded per node (non-preemptive, §VI.C).

use std::collections::{HashMap, VecDeque};

use sysabi::futex::FUTEX_BITSET_MATCH_ANY;
use sysabi::Tid;

/// One waiter parked on a futex word.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Waiter {
    pub tid: Tid,
    pub bitset: u32,
}

/// A futex table (one per node; keys are physical addresses, so
/// processes sharing memory share futexes — which is how shared-memory
/// synchronization works in DUAL/VN mode).
#[derive(Clone, Debug, Default)]
pub struct FutexTable {
    queues: HashMap<u64, VecDeque<Waiter>>,
}

impl FutexTable {
    pub fn new() -> FutexTable {
        FutexTable::default()
    }

    /// Every parked tid across all queues, in queue order (invariant
    /// cross-checks: each must correspond to a futex-blocked thread).
    pub fn waiter_tids(&self) -> Vec<Tid> {
        let mut tids: Vec<Tid> = self
            .queues
            .values()
            .flat_map(|q| q.iter().map(|w| w.tid))
            .collect();
        tids.sort_unstable_by_key(|t| t.0);
        tids
    }

    /// Park `tid` on `key` with a wake mask.
    pub fn wait(&mut self, key: u64, tid: Tid, bitset: u32) {
        self.queues
            .entry(key)
            .or_default()
            .push_back(Waiter { tid, bitset });
    }

    /// Wake up to `count` waiters whose bitset intersects `mask`.
    /// Returns the tids woken, FIFO order.
    pub fn wake(&mut self, key: u64, count: u32, mask: u32) -> Vec<Tid> {
        let mut woken = Vec::new();
        if let Some(q) = self.queues.get_mut(&key) {
            let mut rest = VecDeque::new();
            while let Some(w) = q.pop_front() {
                if woken.len() < count as usize && (w.bitset & mask) != 0 {
                    woken.push(w.tid);
                } else {
                    rest.push_back(w);
                }
            }
            *q = rest;
            if q.is_empty() {
                self.queues.remove(&key);
            }
        }
        woken
    }

    /// Wake up to `wake` waiters and move up to `requeue` more to
    /// `target` (condition-variable broadcast without thundering herd).
    /// Returns (woken tids, requeued count).
    pub fn requeue(&mut self, key: u64, wake: u32, requeue: u32, target: u64) -> (Vec<Tid>, u32) {
        let woken = self.wake(key, wake, FUTEX_BITSET_MATCH_ANY);
        let mut moved = 0u32;
        if key != target {
            if let Some(q) = self.queues.get_mut(&key) {
                let mut to_move = Vec::new();
                while moved < requeue {
                    match q.pop_front() {
                        Some(w) => {
                            to_move.push(w);
                            moved += 1;
                        }
                        None => break,
                    }
                }
                if q.is_empty() {
                    self.queues.remove(&key);
                }
                self.queues.entry(target).or_default().extend(to_move);
            }
        }
        (woken, moved)
    }

    /// Remove a specific waiter (signal interruption / thread kill).
    /// Returns true if it was parked here.
    pub fn remove(&mut self, tid: Tid) -> bool {
        let mut found = false;
        self.queues.retain(|_, q| {
            let before = q.len();
            q.retain(|w| w.tid != tid);
            found |= q.len() != before;
            !q.is_empty()
        });
        found
    }

    /// Waiters parked on `key`.
    pub fn waiters(&self, key: u64) -> usize {
        self.queues.get(&key).map_or(0, |q| q.len())
    }

    /// Total parked waiters.
    pub fn total_waiters(&self) -> usize {
        self.queues.values().map(|q| q.len()).sum()
    }

    pub fn clear(&mut self) {
        self.queues.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ANY: u32 = FUTEX_BITSET_MATCH_ANY;

    #[test]
    fn wake_fifo_order() {
        let mut f = FutexTable::new();
        for i in 0..5 {
            f.wait(0x100, Tid(i), ANY);
        }
        assert_eq!(f.wake(0x100, 2, ANY), vec![Tid(0), Tid(1)]);
        assert_eq!(f.waiters(0x100), 3);
        assert_eq!(f.wake(0x100, 10, ANY), vec![Tid(2), Tid(3), Tid(4)]);
        assert_eq!(f.waiters(0x100), 0);
    }

    #[test]
    fn wake_respects_bitset() {
        let mut f = FutexTable::new();
        f.wait(0x100, Tid(0), 0b01);
        f.wait(0x100, Tid(1), 0b10);
        f.wait(0x100, Tid(2), 0b11);
        // Mask 0b10 skips tid 0.
        assert_eq!(f.wake(0x100, 10, 0b10), vec![Tid(1), Tid(2)]);
        assert_eq!(f.waiters(0x100), 1);
        // tid 0 still wakeable by matching mask.
        assert_eq!(f.wake(0x100, 1, ANY), vec![Tid(0)]);
    }

    #[test]
    fn different_keys_independent() {
        let mut f = FutexTable::new();
        f.wait(0x100, Tid(0), ANY);
        f.wait(0x200, Tid(1), ANY);
        assert_eq!(f.wake(0x100, 10, ANY), vec![Tid(0)]);
        assert_eq!(f.waiters(0x200), 1);
    }

    #[test]
    fn requeue_moves_waiters() {
        let mut f = FutexTable::new();
        // Condvar broadcast: 1 woken, rest requeued to the mutex.
        for i in 0..6 {
            f.wait(0xC0, Tid(i), ANY);
        }
        let (woken, moved) = f.requeue(0xC0, 1, u32::MAX, 0x40);
        assert_eq!(woken, vec![Tid(0)]);
        assert_eq!(moved, 5);
        assert_eq!(f.waiters(0xC0), 0);
        assert_eq!(f.waiters(0x40), 5);
        // Unlocking the mutex wakes them one at a time, FIFO.
        assert_eq!(f.wake(0x40, 1, ANY), vec![Tid(1)]);
    }

    #[test]
    fn requeue_to_same_key_only_wakes() {
        let mut f = FutexTable::new();
        f.wait(0x1, Tid(0), ANY);
        f.wait(0x1, Tid(1), ANY);
        let (woken, moved) = f.requeue(0x1, 1, u32::MAX, 0x1);
        assert_eq!(woken.len(), 1);
        assert_eq!(moved, 0);
        assert_eq!(f.waiters(0x1), 1);
    }

    #[test]
    fn remove_for_cancellation() {
        let mut f = FutexTable::new();
        f.wait(0x1, Tid(0), ANY);
        f.wait(0x1, Tid(1), ANY);
        assert!(f.remove(Tid(0)));
        assert!(!f.remove(Tid(0)));
        assert_eq!(f.wake(0x1, 10, ANY), vec![Tid(1)]);
        assert_eq!(f.total_waiters(), 0);
    }

    #[test]
    fn wake_empty_key_is_noop() {
        let mut f = FutexTable::new();
        assert_eq!(f.wake(0xdead, 10, ANY), Vec::<Tid>::new());
    }
}
