//! CNK process state.

use std::collections::HashMap;

use sysabi::{CoreId, NodeId, ProcId, Rank, Sig, SigDisposition, Tid};

use crate::mem::AddressSpace;

/// Guard-page bookkeeping for one thread (§IV.C).
#[derive(Clone, Copy, Debug)]
pub struct Guard {
    pub lo: u64,
    pub hi: u64,
    /// The DAC slot on the thread's core.
    pub slot: u32,
    /// The main-thread guard tracks the heap boundary and is repositioned
    /// on brk growth.
    pub tracks_heap: bool,
}

/// One CNK process (an MPI task).
#[derive(Debug)]
pub struct Process {
    pub proc: ProcId,
    pub node: NodeId,
    pub rank: Rank,
    /// Cores statically assigned to this process.
    pub cores: Vec<CoreId>,
    pub aspace: AddressSpace,
    pub uid: u32,
    pub gid: u32,
    /// Signal dispositions.
    pub sig: HashMap<Sig, SigDisposition>,
    /// §IV.C: "CNK remembers the last mprotect range and makes an
    /// assumption during the clone syscall that the last mprotect applies
    /// to the new thread" (its stack guard).
    pub last_mprotect: Option<(u64, u64)>,
    /// set_tid_address / CLONE_CHILD_CLEARTID registrations.
    pub clear_tid_addr: HashMap<Tid, u64>,
    /// Armed guard ranges per thread.
    pub guards: HashMap<Tid, Guard>,
    pub main_tid: Tid,
    /// Persistent-memory grant names from the job spec.
    pub persist_grants: Vec<String>,
    /// Live thread count (for exit_group bookkeeping).
    pub live_threads: u32,
    /// Next DAC slot to hand out per core (slot 0 is the main guard).
    next_dac_slot: HashMap<CoreId, u32>,
}

impl Process {
    pub fn new(
        proc: ProcId,
        node: NodeId,
        rank: Rank,
        cores: Vec<CoreId>,
        aspace: AddressSpace,
        uid: u32,
        gid: u32,
    ) -> Process {
        Process {
            proc,
            node,
            rank,
            cores,
            aspace,
            uid,
            gid,
            sig: HashMap::new(),
            last_mprotect: None,
            clear_tid_addr: HashMap::new(),
            guards: HashMap::new(),
            main_tid: Tid(u32::MAX),
            persist_grants: Vec::new(),
            live_threads: 0,
            next_dac_slot: HashMap::new(),
        }
    }

    /// Effective disposition of a signal.
    pub fn disposition(&self, sig: Sig) -> SigDisposition {
        self.sig.get(&sig).copied().unwrap_or_default()
    }

    /// Allocate a DAC slot on `core` for a new guard range.
    pub fn alloc_dac_slot(&mut self, core: CoreId, dac_pairs: u32) -> Option<u32> {
        let next = self.next_dac_slot.entry(core).or_insert(0);
        if *next >= dac_pairs {
            return None;
        }
        let s = *next;
        *next += 1;
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{partition_node, ProcRequirements};

    fn proc() -> Process {
        let maps = partition_node(
            &ProcRequirements {
                text_bytes: 1 << 20,
                data_bytes: 1 << 20,
                heap_stack_bytes: 64 << 20,
                shared_bytes: 1 << 20,
                dynamic_bytes: 0,
            },
            1,
            2 << 30,
            16 << 20,
            0,
            64,
        )
        .unwrap();
        Process::new(
            ProcId(0),
            NodeId(0),
            Rank(0),
            vec![CoreId(0), CoreId(1), CoreId(2), CoreId(3)],
            AddressSpace::new(maps.into_iter().next().unwrap(), 8 << 20),
            1000,
            100,
        )
    }

    #[test]
    fn default_dispositions() {
        let p = proc();
        assert_eq!(p.disposition(Sig::Segv), SigDisposition::Default);
    }

    #[test]
    fn dac_slots_bounded_per_core() {
        let mut p = proc();
        for i in 0..4 {
            assert_eq!(p.alloc_dac_slot(CoreId(0), 4), Some(i));
        }
        assert_eq!(p.alloc_dac_slot(CoreId(0), 4), None);
        // Other cores unaffected.
        assert_eq!(p.alloc_dac_slot(CoreId(1), 4), Some(0));
    }
}
