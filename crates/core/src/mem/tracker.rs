//! The mmap range tracker (§IV.C).
//!
//! "The mmap system call tracks which memory ranges have been allocated.
//! It also coalesces memory when buffers are freed, or permissions on
//! those buffers change. However, since CNK statically maps memory, the
//! mmap system call does not need to perform any adjustments, or handle
//! page faults. It merely provides free addresses to the application."
//!
//! The tracker manages the heap+stack arena: `brk` grows from the bottom,
//! `mmap` allocates from the top, and freed ranges coalesce with their
//! neighbors. Each allocated range carries protection bits purely as
//! bookkeeping (CNK does not enforce them — §IV.B.2's conscious
//! lightweight decision — but `mprotect` records them because NPTL's
//! guard-page convention depends on the *last* mprotect call).

use std::collections::BTreeMap;

use sysabi::Prot;

/// An allocated range.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Alloc {
    pub addr: u64,
    pub len: u64,
    pub prot: Prot,
}

/// Allocation errors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TrackerError {
    /// No free range large enough.
    NoSpace,
    /// The given range is not entirely allocated.
    NotAllocated,
    /// brk would collide with an mmap allocation.
    BrkCollision,
    /// Zero-length request.
    ZeroLength,
}

/// Allocation granularity: CNK hands out 64 KiB-aligned chunks (no page
/// faults means granularity is bookkeeping-only; 64 KiB keeps the map
/// small).
pub const GRAIN: u64 = 64 << 10;

fn grain_up(v: u64) -> u64 {
    (v + GRAIN - 1) & !(GRAIN - 1)
}

/// The heap+stack arena tracker.
#[derive(Clone, Debug)]
pub struct ArenaTracker {
    lo: u64,
    hi: u64,
    /// Current program break (brk arena occupies [lo, brk)).
    brk: u64,
    /// mmap allocations, keyed by address.
    allocs: BTreeMap<u64, Alloc>,
}

impl ArenaTracker {
    pub fn new(lo: u64, hi: u64) -> ArenaTracker {
        assert!(lo < hi && lo.is_multiple_of(GRAIN) && hi.is_multiple_of(GRAIN));
        ArenaTracker {
            lo,
            hi,
            brk: lo,
            allocs: BTreeMap::new(),
        }
    }

    pub fn brk_addr(&self) -> u64 {
        self.brk
    }

    pub fn bounds(&self) -> (u64, u64) {
        (self.lo, self.hi)
    }

    /// Lowest address of any mmap allocation (the "mmap floor" brk must
    /// not cross).
    fn mmap_floor(&self) -> u64 {
        self.allocs.keys().next().copied().unwrap_or(self.hi)
    }

    /// Set the program break. `addr == 0` queries. Returns the new break.
    pub fn brk(&mut self, addr: u64) -> Result<u64, TrackerError> {
        if addr == 0 {
            return Ok(self.brk);
        }
        if addr < self.lo {
            return Err(TrackerError::NotAllocated);
        }
        let target = grain_up(addr);
        if target > self.mmap_floor() {
            return Err(TrackerError::BrkCollision);
        }
        self.brk = target;
        Ok(self.brk)
    }

    /// Allocate `len` bytes from the top of the arena ("merely provides
    /// free addresses"). Returns the address.
    pub fn mmap(&mut self, len: u64, prot: Prot) -> Result<u64, TrackerError> {
        if len == 0 {
            return Err(TrackerError::ZeroLength);
        }
        let len = grain_up(len);
        // Scan free gaps from the top: between hi and the last alloc,
        // then between allocs, down to brk.
        let mut gap_hi = self.hi;
        for (&addr, a) in self.allocs.iter().rev() {
            let a_end = addr + a.len;
            if gap_hi - a_end >= len {
                let at = gap_hi - len;
                self.allocs.insert(
                    at,
                    Alloc {
                        addr: at,
                        len,
                        prot,
                    },
                );
                return Ok(at);
            }
            gap_hi = addr;
        }
        if gap_hi >= self.brk && gap_hi - self.brk >= len {
            let at = gap_hi - len;
            self.allocs.insert(
                at,
                Alloc {
                    addr: at,
                    len,
                    prot,
                },
            );
            return Ok(at);
        }
        Err(TrackerError::NoSpace)
    }

    /// Free `[addr, addr+len)`. Partial frees split ranges; freeing
    /// adjacent ranges coalesces the free space implicitly (free space is
    /// the complement of the alloc map, so coalescing == removal).
    pub fn munmap(&mut self, addr: u64, len: u64) -> Result<(), TrackerError> {
        if len == 0 {
            return Err(TrackerError::ZeroLength);
        }
        let end = addr + grain_up(len);
        // Collect overlapping allocations; the whole range must be
        // covered by them.
        let overlapping: Vec<Alloc> = self
            .allocs
            .range(..end)
            .rev()
            .take_while(|(_, a)| a.addr + a.len > addr)
            .map(|(_, a)| *a)
            .collect();
        let covered: u64 = overlapping
            .iter()
            .map(|a| (a.addr + a.len).min(end).saturating_sub(a.addr.max(addr)))
            .sum();
        if covered < end - addr {
            return Err(TrackerError::NotAllocated);
        }
        for a in overlapping {
            self.allocs.remove(&a.addr);
            // Left fragment survives.
            if a.addr < addr {
                self.allocs.insert(
                    a.addr,
                    Alloc {
                        addr: a.addr,
                        len: addr - a.addr,
                        prot: a.prot,
                    },
                );
            }
            // Right fragment survives.
            if a.addr + a.len > end {
                self.allocs.insert(
                    end,
                    Alloc {
                        addr: end,
                        len: a.addr + a.len - end,
                        prot: a.prot,
                    },
                );
            }
        }
        Ok(())
    }

    /// Record protection bits on a range (bookkeeping only). The range
    /// must be allocated. Adjacent same-prot ranges coalesce.
    pub fn mprotect(&mut self, addr: u64, len: u64, prot: Prot) -> Result<(), TrackerError> {
        if len == 0 {
            return Err(TrackerError::ZeroLength);
        }
        let end = addr + grain_up(len);
        // brk space is implicitly allocated.
        if addr >= self.lo && end <= self.brk {
            return Ok(());
        }
        let a = self
            .allocs
            .range(..=addr)
            .next_back()
            .map(|(_, a)| *a)
            .filter(|a| a.addr + a.len >= end)
            .ok_or(TrackerError::NotAllocated)?;
        // Split/update.
        self.allocs.remove(&a.addr);
        if a.addr < addr {
            self.allocs.insert(
                a.addr,
                Alloc {
                    addr: a.addr,
                    len: addr - a.addr,
                    prot: a.prot,
                },
            );
        }
        self.allocs.insert(
            addr,
            Alloc {
                addr,
                len: end - addr,
                prot,
            },
        );
        if a.addr + a.len > end {
            self.allocs.insert(
                end,
                Alloc {
                    addr: end,
                    len: a.addr + a.len - end,
                    prot: a.prot,
                },
            );
        }
        self.coalesce();
        Ok(())
    }

    fn coalesce(&mut self) {
        let addrs: Vec<u64> = self.allocs.keys().copied().collect();
        for w in addrs.windows(2) {
            let (a_addr, b_addr) = (w[0], w[1]);
            let (Some(a), Some(b)) = (
                self.allocs.get(&a_addr).copied(),
                self.allocs.get(&b_addr).copied(),
            ) else {
                continue;
            };
            if a.addr + a.len == b.addr && a.prot == b.prot {
                self.allocs.remove(&b.addr);
                self.allocs.insert(
                    a.addr,
                    Alloc {
                        addr: a.addr,
                        len: a.len + b.len,
                        prot: a.prot,
                    },
                );
            }
        }
    }

    /// Is `[addr, addr+len)` fully allocated (brk space counts)?
    pub fn is_allocated(&self, addr: u64, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        let end = addr + len;
        if addr >= self.lo && end <= self.brk {
            return true;
        }
        let mut pos = addr;
        while pos < end {
            match self
                .allocs
                .range(..=pos)
                .next_back()
                .map(|(_, a)| *a)
                .filter(|a| a.addr + a.len > pos)
            {
                Some(a) => pos = a.addr + a.len,
                None => return false,
            }
        }
        true
    }

    /// The recorded allocation containing `addr`.
    pub fn alloc_at(&self, addr: u64) -> Option<Alloc> {
        self.allocs
            .range(..=addr)
            .next_back()
            .map(|(_, a)| *a)
            .filter(|a| a.addr + a.len > addr)
    }

    /// Count of distinct allocated ranges (tests coalescing).
    pub fn range_count(&self) -> usize {
        self.allocs.len()
    }

    /// Total allocated mmap bytes.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocs.values().map(|a| a.len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LO: u64 = 0x1000_0000;
    const HI: u64 = 0x2000_0000;

    fn t() -> ArenaTracker {
        ArenaTracker::new(LO, HI)
    }

    #[test]
    fn brk_query_and_set() {
        let mut a = t();
        assert_eq!(a.brk(0).unwrap(), LO);
        let nb = a.brk(LO + 1000).unwrap();
        assert_eq!(nb, LO + GRAIN); // rounded to grain
        assert_eq!(a.brk(0).unwrap(), nb);
    }

    #[test]
    fn mmap_allocates_from_top() {
        let mut a = t();
        let x = a.mmap(1 << 20, Prot::READ | Prot::WRITE).unwrap();
        assert_eq!(x + (1 << 20), HI);
        let y = a.mmap(1 << 20, Prot::READ | Prot::WRITE).unwrap();
        assert_eq!(y + (1 << 20), x);
    }

    #[test]
    fn brk_mmap_collision() {
        let mut a = t();
        // Allocate nearly everything with mmap...
        a.mmap(HI - LO - GRAIN, Prot::READ).unwrap();
        // ...then brk cannot cross into it.
        assert_eq!(a.brk(LO + 2 * GRAIN), Err(TrackerError::BrkCollision));
        assert!(a.brk(LO + GRAIN).is_ok());
    }

    #[test]
    fn free_reusable_and_coalesced() {
        let mut a = t();
        let x = a.mmap(4 * GRAIN, Prot::READ).unwrap();
        let y = a.mmap(4 * GRAIN, Prot::READ).unwrap();
        let z = a.mmap(4 * GRAIN, Prot::READ).unwrap();
        assert_eq!(a.range_count(), 3);
        // Free the middle, then the bottom: free space coalesces so a
        // large allocation fits again.
        a.munmap(y, 4 * GRAIN).unwrap();
        a.munmap(z, 4 * GRAIN).unwrap();
        let big = a.mmap(8 * GRAIN, Prot::READ).unwrap();
        assert_eq!(big + 8 * GRAIN, x);
    }

    #[test]
    fn partial_free_splits() {
        let mut a = t();
        let x = a.mmap(4 * GRAIN, Prot::READ).unwrap();
        a.munmap(x + GRAIN, GRAIN).unwrap();
        assert!(a.is_allocated(x, GRAIN));
        assert!(!a.is_allocated(x + GRAIN, GRAIN));
        assert!(a.is_allocated(x + 2 * GRAIN, 2 * GRAIN));
        assert_eq!(a.range_count(), 2);
    }

    #[test]
    fn double_free_rejected() {
        let mut a = t();
        let x = a.mmap(GRAIN, Prot::READ).unwrap();
        a.munmap(x, GRAIN).unwrap();
        assert_eq!(a.munmap(x, GRAIN), Err(TrackerError::NotAllocated));
    }

    #[test]
    fn free_spanning_two_allocs() {
        let mut a = t();
        let x = a.mmap(2 * GRAIN, Prot::READ).unwrap();
        let y = a.mmap(2 * GRAIN, Prot::READ).unwrap();
        assert_eq!(y + 2 * GRAIN, x);
        // One munmap over both.
        a.munmap(y, 4 * GRAIN).unwrap();
        assert_eq!(a.allocated_bytes(), 0);
    }

    #[test]
    fn mprotect_records_and_coalesces() {
        let mut a = t();
        let x = a.mmap(4 * GRAIN, Prot::READ | Prot::WRITE).unwrap();
        a.mprotect(x, GRAIN, Prot::NONE).unwrap();
        assert_eq!(a.alloc_at(x).unwrap().prot, Prot::NONE);
        assert_eq!(
            a.alloc_at(x + GRAIN).unwrap().prot,
            Prot::READ | Prot::WRITE
        );
        // Restoring the prot coalesces back to one range.
        a.mprotect(x, GRAIN, Prot::READ | Prot::WRITE).unwrap();
        assert_eq!(a.range_count(), 1);
    }

    #[test]
    fn mprotect_on_brk_space_ok() {
        let mut a = t();
        a.brk(LO + 10 * GRAIN).unwrap();
        assert!(a.mprotect(LO + GRAIN, GRAIN, Prot::NONE).is_ok());
    }

    #[test]
    fn mprotect_unallocated_rejected() {
        let mut a = t();
        assert_eq!(
            a.mprotect(LO + GRAIN, GRAIN, Prot::NONE),
            Err(TrackerError::NotAllocated)
        );
    }

    #[test]
    fn exhaustion() {
        let mut a = ArenaTracker::new(LO, LO + 4 * GRAIN);
        a.mmap(3 * GRAIN, Prot::READ).unwrap();
        assert_eq!(a.mmap(2 * GRAIN, Prot::READ), Err(TrackerError::NoSpace));
        assert!(a.mmap(GRAIN, Prot::READ).is_ok());
    }

    #[test]
    fn zero_len_rejected() {
        let mut a = t();
        assert_eq!(a.mmap(0, Prot::READ), Err(TrackerError::ZeroLength));
        assert_eq!(a.munmap(LO, 0), Err(TrackerError::ZeroLength));
    }
}
