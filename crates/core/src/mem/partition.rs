//! The static memory partitioning algorithm (§IV.C).
//!
//! "When an application is loaded, the ELF section information ...
//! indicates the location and size of the text and data segments. The
//! number of processes per node and size of the shared memory region are
//! specified by the user. This information is passed into a partitioning
//! algorithm, which tiles the virtual and physical memory and generates a
//! static mapping that makes effective use of the different hardware page
//! sizes (1MB, 16MB, 256MB, 1GB) and that respects hardware alignment
//! constraints."
//!
//! The algorithm here:
//!
//! 1. Physical memory is divided evenly among the processes of a node
//!    (§VII.B: "CNK divides memory on a node evenly among the tasks"),
//!    after reserving a kernel arena at the bottom and the persistent-
//!    memory arena at the top.
//! 2. Each process gets four contiguous regions — text(+rodata),
//!    data(+bss), heap+stack, shared memory — laid out in a fixed virtual
//!    order, each contiguous in physical memory (§IV.C's four ranges).
//! 3. Each region is tiled greedily with the largest naturally aligned
//!    hardware page that fits, producing pinned TLB entries.
//! 4. If the per-core TLB entry budget is exceeded, the minimum page size
//!    is raised (1 MB → 16 MB → ...) and the layout re-run: fewer, larger
//!    pages at the cost of wasted physical memory — exactly the §VII.B
//!    trade-off ("the memory subsystem may waste physical memory as large
//!    pages are tiled together").

use bgsim::tlb::LARGE_PAGE_SIZES;

/// What a region is for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegionKind {
    /// .text and .rodata.
    Text,
    /// .data and .bss.
    Data,
    /// Heap and stacks (one arena; stacks carved from the top).
    HeapStack,
    /// The node-shared memory window (same physical range in every
    /// process of the node).
    Shared,
    /// A persistent-memory attachment (§IV.D).
    Persist,
    /// The fixed ld.so + dynamic library window (§IV.B.2).
    Dynamic,
}

/// One virtually and physically contiguous mapped region.
#[derive(Clone, Debug)]
pub struct Region {
    pub kind: RegionKind,
    pub vaddr: u64,
    pub paddr: u64,
    /// Mapped bytes (multiple of the smallest used page).
    pub bytes: u64,
    /// The page tiling: (page_size, vaddr) pairs in address order.
    pub pages: Vec<(u64, u64)>,
}

impl Region {
    pub fn vend(&self) -> u64 {
        self.vaddr + self.bytes
    }

    pub fn contains(&self, va: u64) -> bool {
        va >= self.vaddr && va < self.vend()
    }

    pub fn translate(&self, va: u64) -> Option<u64> {
        self.contains(va).then(|| self.paddr + (va - self.vaddr))
    }
}

/// Requirements for one process.
#[derive(Clone, Copy, Debug)]
pub struct ProcRequirements {
    pub text_bytes: u64,
    pub data_bytes: u64,
    pub heap_stack_bytes: u64,
    pub shared_bytes: u64,
    /// Reserved window for ld.so and dynamic libraries (0 if static).
    pub dynamic_bytes: u64,
}

/// The generated static map for one process.
#[derive(Clone, Debug)]
pub struct StaticMap {
    pub regions: Vec<Region>,
    /// TLB entries consumed (== total page count).
    pub tlb_entries: usize,
    /// Physical bytes mapped beyond what was asked for (rounding waste).
    pub wasted_bytes: u64,
    /// The smallest page size the final layout used.
    pub min_page: u64,
}

impl StaticMap {
    pub fn translate(&self, va: u64) -> Option<u64> {
        self.regions.iter().find_map(|r| r.translate(va))
    }

    pub fn region(&self, kind: RegionKind) -> Option<&Region> {
        self.regions.iter().find(|r| r.kind == kind)
    }

    /// Total mapped physical bytes.
    pub fn mapped_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.bytes).sum()
    }

    /// The (vaddr, paddr, bytes) triples for QueryStaticMap.
    pub fn as_triples(&self) -> Vec<(u64, u64, u64)> {
        let mut v: Vec<(u64, u64, u64)> = self
            .regions
            .iter()
            .map(|r| (r.vaddr, r.paddr, r.bytes))
            .collect();
        v.sort_unstable();
        v
    }
}

/// Partitioning failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PartitionError {
    /// Even the coarsest layout exceeds the TLB entry budget.
    TlbBudget { needed: usize, budget: usize },
    /// The per-process physical slice cannot hold the regions.
    PhysOverflow { need: u64, have: u64 },
    /// The 32-bit virtual space cannot hold the regions.
    VirtOverflow,
}

/// Virtual-layout constants (32-bit space, §VII.A: "nearly the full 4GB
/// 32-bit address space of a task can be mapped").
pub const VA_TEXT_BASE: u64 = 0x0010_0000; // leave page 0 unmapped (null guard)
pub const VA_DYNAMIC_BASE: u64 = 0x8000_0000; // fixed ld.so window (§IV.B.2)
pub const VA_SHARED_TOP: u64 = 0xF000_0000;
pub const VA_PERSIST_BASE: u64 = 0xF000_0000; // persistent window, fixed across jobs
pub const VA_LIMIT: u64 = 0x1_0000_0000;

/// Round `v` up to a multiple of `a` (power of two).
#[inline]
pub fn align_up(v: u64, a: u64) -> u64 {
    debug_assert!(a.is_power_of_two());
    (v + a - 1) & !(a - 1)
}

/// Greedily tile `[vaddr, vaddr+len)` ↔ `[paddr, ...)` with hardware
/// pages no smaller than `min_page`. `vaddr` and `paddr` must be
/// `min_page`-aligned. Returns (pages, mapped_bytes).
fn tile(vaddr: u64, paddr: u64, len: u64, min_page: u64) -> (Vec<(u64, u64)>, u64) {
    let len = align_up(len.max(1), min_page);
    let mut pages = Vec::new();
    let mut off = 0u64;
    while off < len {
        let here_v = vaddr + off;
        let here_p = paddr + off;
        let remaining = len - off;
        // Largest page that (a) is ≥ min_page, (b) naturally aligns at
        // both addresses, (c) does not overshoot the remaining length by
        // more than the rounding the caller accepted... pages must not
        // overshoot at all: remaining is already min_page-rounded, so a
        // page ≤ remaining always exists (min_page itself).
        let ps = LARGE_PAGE_SIZES
            .iter()
            .rev()
            .copied()
            .find(|&ps| {
                ps >= min_page
                    && ps <= remaining
                    && here_v.is_multiple_of(ps)
                    && here_p.is_multiple_of(ps)
            })
            .expect("min_page always fits");
        pages.push((ps, here_v));
        off += ps;
    }
    (pages, len)
}

/// Compute the static maps for all `procs_per_node` processes of a node.
///
/// Returns one map per process plus the shared region (identical physical
/// range in each map). `tlb_budget` is per core, and each process's map
/// must fit it (every core of a process pins the full process map).
pub fn partition_node(
    req: &ProcRequirements,
    procs_per_node: u32,
    dram_bytes: u64,
    kernel_reserve: u64,
    persist_reserve: u64,
    tlb_budget: usize,
) -> Result<Vec<StaticMap>, PartitionError> {
    let mut budget_err: Option<PartitionError> = None;
    let mut first_err: Option<PartitionError> = None;
    for &min_page in LARGE_PAGE_SIZES.iter() {
        match try_layout(
            req,
            procs_per_node,
            dram_bytes,
            kernel_reserve,
            persist_reserve,
            tlb_budget,
            min_page,
        ) {
            Ok(maps) => return Ok(maps),
            Err(PartitionError::TlbBudget { needed, budget }) => {
                // Coarsen and retry with larger pages; remember the
                // attempt that came closest to fitting.
                let better = match budget_err {
                    Some(PartitionError::TlbBudget { needed: n, .. }) => needed < n,
                    _ => true,
                };
                if better {
                    budget_err = Some(PartitionError::TlbBudget { needed, budget });
                }
            }
            Err(e) => {
                first_err.get_or_insert(e);
            }
        }
    }
    // No layout worked. A TLB-budget failure is the most actionable
    // diagnosis (coarsening was the cure that ran out); otherwise report
    // the finest-grained attempt's failure.
    Err(budget_err
        .or(first_err)
        .unwrap_or(PartitionError::VirtOverflow))
}

/// Pick the physical base for a region starting at virtual `va`: the
/// smallest `pa >= cursor` congruent to `va` modulo the largest page
/// size worth using, subject to the alignment gap fitting in `pa_end`.
/// Congruence is what lets the greedy tiler escalate to large pages —
/// a page needs *both* addresses naturally aligned.
fn place_pa(cursor: u64, va: u64, len: u64, min_page: u64, pa_end: u64) -> u64 {
    let len_rounded = align_up(len.max(1), min_page);
    for &modulus in LARGE_PAGE_SIZES.iter().rev() {
        if modulus < min_page || modulus > len_rounded.next_power_of_two().max(min_page) {
            continue;
        }
        let pa = cursor + (va.wrapping_sub(cursor) % modulus + modulus) % modulus;
        let gap = pa - cursor;
        // Never spend more physical memory on alignment than half the
        // region itself — large pages are not worth arbitrary waste
        // (the §VII.B trade-off, bounded).
        if gap <= len_rounded / 2 && pa + len_rounded <= pa_end {
            return pa;
        }
    }
    align_up(cursor, min_page)
}

fn try_layout(
    req: &ProcRequirements,
    procs_per_node: u32,
    dram_bytes: u64,
    kernel_reserve: u64,
    persist_reserve: u64,
    tlb_budget: usize,
    min_page: u64,
) -> Result<Vec<StaticMap>, PartitionError> {
    let p = procs_per_node.max(1) as u64;
    let phys_top = dram_bytes.saturating_sub(persist_reserve);
    // Shared memory is one physical range for the node; it is carved
    // before the even split, placed congruent with its fixed virtual
    // window so it can use large pages too.
    let shared_len = align_up(req.shared_bytes.max(1), min_page);
    let shared_va = VA_SHARED_TOP - shared_len;
    let shared_paddr = place_pa(
        align_up(kernel_reserve, min_page),
        shared_va,
        shared_len,
        min_page,
        phys_top,
    );
    let slice_base = shared_paddr + shared_len;
    let usable = phys_top.saturating_sub(slice_base);
    let slice = (usable / p) & !(min_page - 1);
    if slice == 0 {
        return Err(PartitionError::PhysOverflow {
            need: min_page,
            have: 0,
        });
    }

    let mut maps = Vec::new();
    for proc_idx in 0..p {
        let mut regions = Vec::new();
        let mut asked = 0u64;
        let slice_lo = slice_base + proc_idx * slice;
        let pa_end = (slice_base + (proc_idx + 1) * slice).min(phys_top);
        let mut pa_cursor = slice_lo;
        let mut va = align_up(VA_TEXT_BASE, min_page);

        let place = |kind: RegionKind,
                     va: &mut u64,
                     pa_cursor: &mut u64,
                     len: u64|
         -> Result<Region, PartitionError> {
            let pa = place_pa(*pa_cursor, *va, len, min_page, pa_end);
            let (pages, mapped) = tile(*va, pa, len, min_page);
            if pa + mapped > pa_end {
                return Err(PartitionError::PhysOverflow {
                    need: pa + mapped - slice_lo,
                    have: pa_end - slice_lo,
                });
            }
            let r = Region {
                kind,
                vaddr: *va,
                paddr: pa,
                bytes: mapped,
                pages,
            };
            *va += mapped;
            *pa_cursor = pa + mapped;
            Ok(r)
        };

        asked += req.text_bytes;
        regions.push(place(
            RegionKind::Text,
            &mut va,
            &mut pa_cursor,
            req.text_bytes,
        )?);
        asked += req.data_bytes;
        regions.push(place(
            RegionKind::Data,
            &mut va,
            &mut pa_cursor,
            req.data_bytes,
        )?);
        asked += req.heap_stack_bytes;
        regions.push(place(
            RegionKind::HeapStack,
            &mut va,
            &mut pa_cursor,
            req.heap_stack_bytes,
        )?);

        if req.dynamic_bytes > 0 {
            // The dynamic window sits at its fixed virtual base, which
            // must not collide with what we already placed (§IV.B.2:
            // "ld.so needed to statically load at a fixed virtual address
            // that was not equal to the initial virtual addresses of the
            // application").
            if va > VA_DYNAMIC_BASE {
                return Err(PartitionError::VirtOverflow);
            }
            let mut dva = VA_DYNAMIC_BASE;
            asked += req.dynamic_bytes;
            regions.push(place(
                RegionKind::Dynamic,
                &mut dva,
                &mut pa_cursor,
                req.dynamic_bytes,
            )?);
        }

        // Shared region: fixed virtual window below VA_SHARED_TOP, same
        // physical range for every process.
        if va > shared_va {
            return Err(PartitionError::VirtOverflow);
        }
        let (pages, mapped) = tile(shared_va, shared_paddr, shared_len, min_page);
        asked += req.shared_bytes;
        regions.push(Region {
            kind: RegionKind::Shared,
            vaddr: shared_va,
            paddr: shared_paddr,
            bytes: mapped,
            pages,
        });

        let tlb_entries: usize = regions.iter().map(|r| r.pages.len()).sum();
        if tlb_entries > tlb_budget {
            return Err(PartitionError::TlbBudget {
                needed: tlb_entries,
                budget: tlb_budget,
            });
        }
        let mapped: u64 = regions.iter().map(|r| r.bytes).sum();
        maps.push(StaticMap {
            regions,
            tlb_entries,
            wasted_bytes: mapped.saturating_sub(asked),
            min_page,
        });
    }
    Ok(maps)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(text: u64, data: u64, heap: u64, shared: u64) -> ProcRequirements {
        ProcRequirements {
            text_bytes: text,
            data_bytes: data,
            heap_stack_bytes: heap,
            shared_bytes: shared,
            dynamic_bytes: 0,
        }
    }

    const DRAM: u64 = 2 << 30;
    const KRES: u64 = 16 << 20;

    #[test]
    fn smp_mode_basic_layout() {
        let maps = partition_node(
            &req(2 << 20, 1 << 20, 512 << 20, 16 << 20),
            1,
            DRAM,
            KRES,
            0,
            60,
        )
        .unwrap();
        assert_eq!(maps.len(), 1);
        let m = &maps[0];
        assert!(m.tlb_entries <= 60);
        // All four regions present.
        for k in [
            RegionKind::Text,
            RegionKind::Data,
            RegionKind::HeapStack,
            RegionKind::Shared,
        ] {
            assert!(m.region(k).is_some(), "{k:?} missing");
        }
        // Text begins above the null guard.
        assert!(m.region(RegionKind::Text).unwrap().vaddr >= VA_TEXT_BASE);
    }

    #[test]
    fn translation_is_contiguous_within_regions() {
        let maps = partition_node(
            &req(2 << 20, 1 << 20, 256 << 20, 4 << 20),
            1,
            DRAM,
            KRES,
            0,
            60,
        )
        .unwrap();
        let m = &maps[0];
        let h = m.region(RegionKind::HeapStack).unwrap();
        let p0 = m.translate(h.vaddr).unwrap();
        let p1 = m.translate(h.vaddr + 12345).unwrap();
        assert_eq!(p1 - p0, 12345, "physically contiguous (§V.C requirement)");
        assert_eq!(m.translate(h.vend()), None.or(m.translate(h.vend())));
    }

    #[test]
    fn no_region_overlap_virtual_or_physical() {
        for ppn in [1u32, 2, 4] {
            let maps = partition_node(
                &req(24 << 20, 8 << 20, 128 << 20, 16 << 20),
                ppn,
                DRAM,
                KRES,
                64 << 20,
                60,
            )
            .unwrap();
            // Virtual: regions within a process must not overlap.
            for m in &maps {
                let mut vr: Vec<(u64, u64)> =
                    m.regions.iter().map(|r| (r.vaddr, r.vend())).collect();
                vr.sort_unstable();
                for w in vr.windows(2) {
                    assert!(w[0].1 <= w[1].0, "virtual overlap {w:?}");
                }
            }
            // Physical: private regions across processes must not overlap
            // (shared regions are deliberately identical).
            let mut pr: Vec<(u64, u64)> = maps
                .iter()
                .flat_map(|m| {
                    m.regions
                        .iter()
                        .filter(|r| r.kind != RegionKind::Shared)
                        .map(|r| (r.paddr, r.paddr + r.bytes))
                })
                .collect();
            pr.sort_unstable();
            for w in pr.windows(2) {
                assert!(w[0].1 <= w[1].0, "physical overlap {w:?} (ppn={ppn})");
            }
        }
    }

    #[test]
    fn shared_region_is_shared() {
        let maps = partition_node(
            &req(2 << 20, 1 << 20, 64 << 20, 32 << 20),
            4,
            DRAM,
            KRES,
            0,
            60,
        )
        .unwrap();
        let first = maps[0].region(RegionKind::Shared).unwrap().clone();
        for m in &maps[1..] {
            let s = m.region(RegionKind::Shared).unwrap();
            assert_eq!(s.paddr, first.paddr);
            assert_eq!(s.vaddr, first.vaddr);
            assert_eq!(s.bytes, first.bytes);
        }
    }

    #[test]
    fn pages_are_aligned_and_sized() {
        let maps = partition_node(
            &req(5 << 20, 3 << 20, 700 << 20, 16 << 20),
            1,
            DRAM,
            KRES,
            0,
            60,
        )
        .unwrap();
        for r in &maps[0].regions {
            for &(ps, va) in &r.pages {
                assert!(LARGE_PAGE_SIZES.contains(&ps), "bad page size {ps}");
                assert_eq!(va % ps, 0, "unaligned page at {va:#x} size {ps:#x}");
                // Physical alignment too.
                let pa = r.paddr + (va - r.vaddr);
                assert_eq!(pa % ps, 0, "phys misaligned {pa:#x} size {ps:#x}");
            }
            // Pages exactly tile the region.
            let total: u64 = r.pages.iter().map(|(ps, _)| ps).sum();
            assert_eq!(total, r.bytes);
        }
    }

    #[test]
    fn tight_budget_coarsens_and_wastes() {
        let r = req(2 << 20, 1 << 20, 900 << 20, 16 << 20);
        let generous = partition_node(&r, 1, DRAM, KRES, 0, 64).unwrap();
        let tight = partition_node(&r, 1, DRAM, KRES, 0, 12).unwrap();
        assert!(tight[0].tlb_entries <= 12);
        assert!(tight[0].min_page > generous[0].min_page);
        assert!(
            tight[0].wasted_bytes >= generous[0].wasted_bytes,
            "coarser pages should waste at least as much"
        );
    }

    #[test]
    fn impossible_budget_reports_error() {
        // Budget of 3 entries cannot map text+data+heap+shared even with
        // 1 GB pages... actually 4 regions at 1 page each needs 4.
        let e = partition_node(
            &req(1 << 20, 1 << 20, 1 << 20, 1 << 20),
            1,
            8 << 30,
            0,
            0,
            3,
        );
        assert!(matches!(e, Err(PartitionError::TlbBudget { .. })), "{e:?}");
    }

    #[test]
    fn phys_overflow_detected() {
        // 4 processes × 700 MB of heap in 2 GB cannot fit.
        let e = partition_node(
            &req(1 << 20, 1 << 20, 700 << 20, 1 << 20),
            4,
            DRAM,
            KRES,
            0,
            64,
        );
        assert!(
            matches!(e, Err(PartitionError::PhysOverflow { .. })),
            "{e:?}"
        );
    }

    #[test]
    fn nearly_full_4gb_map_possible() {
        // §VII.A: "nearly the full 4GB 32-bit address space of a task can
        // be mapped" — try 3.5 GB of heap on a 4 GB node (Linux would cap
        // the task at 3 GB).
        let maps = partition_node(
            &req(16 << 20, 16 << 20, 3 << 30, 16 << 20),
            1,
            4 << 30,
            KRES,
            0,
            64,
        )
        .unwrap();
        assert!(maps[0].mapped_bytes() > 3u64 << 30);
    }

    #[test]
    fn dynamic_window_at_fixed_base() {
        let mut r = req(8 << 20, 4 << 20, 256 << 20, 16 << 20);
        r.dynamic_bytes = 64 << 20;
        let maps = partition_node(&r, 1, DRAM, KRES, 0, 64).unwrap();
        let d = maps[0].region(RegionKind::Dynamic).unwrap();
        assert_eq!(d.vaddr, VA_DYNAMIC_BASE);
    }

    #[test]
    fn even_split_across_processes() {
        let maps = partition_node(
            &req(2 << 20, 2 << 20, 64 << 20, 8 << 20),
            4,
            DRAM,
            KRES,
            0,
            60,
        )
        .unwrap();
        // Each process's heap region has the same size: the even split of
        // §VII.B.
        let sizes: Vec<u64> = maps
            .iter()
            .map(|m| m.region(RegionKind::HeapStack).unwrap().bytes)
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] == w[1]), "{sizes:?}");
    }

    #[test]
    fn as_triples_sorted() {
        let maps = partition_node(
            &req(2 << 20, 1 << 20, 64 << 20, 8 << 20),
            1,
            DRAM,
            KRES,
            0,
            60,
        )
        .unwrap();
        let t = maps[0].as_triples();
        assert!(t.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(t.len(), maps[0].regions.len());
    }
}
