//! CNK memory management: the static map plus the mmap/brk bookkeeping.

pub mod partition;
pub mod tracker;

use sysabi::Errno;

pub use partition::{
    partition_node, PartitionError, ProcRequirements, Region, RegionKind, StaticMap,
    VA_DYNAMIC_BASE, VA_PERSIST_BASE, VA_TEXT_BASE,
};
pub use tracker::{ArenaTracker, TrackerError, GRAIN};

/// A process address space: the immutable static map plus the
/// heap/stack arena bookkeeping and any attached persistent regions.
#[derive(Clone, Debug)]
pub struct AddressSpace {
    pub map: StaticMap,
    pub heap: ArenaTracker,
    /// Main-thread stack: the top `main_stack` bytes of the heap region.
    pub main_stack_lo: u64,
    pub main_stack_hi: u64,
    /// Attached persistent regions (§IV.D), translated like map regions.
    pub persist: Vec<Region>,
    /// Cursor for loading dynamic objects into the Dynamic window.
    pub dyn_cursor: u64,
}

impl AddressSpace {
    pub fn new(map: StaticMap, main_stack: u64) -> AddressSpace {
        let hs = map
            .region(RegionKind::HeapStack)
            .expect("map lacks heap/stack region");
        let main_stack = main_stack.max(GRAIN) & !(GRAIN - 1);
        let arena_hi = (hs.vend() - main_stack) & !(GRAIN - 1);
        let arena_lo = (hs.vaddr + GRAIN - 1) & !(GRAIN - 1);
        let dyn_cursor = map.region(RegionKind::Dynamic).map_or(0, |d| d.vaddr);
        AddressSpace {
            heap: ArenaTracker::new(arena_lo, arena_hi),
            main_stack_lo: arena_hi,
            main_stack_hi: hs.vend(),
            persist: Vec::new(),
            dyn_cursor,
            map,
        }
    }

    /// Static translation: the process "can query the static map during
    /// initialization and reference it during runtime without having to
    /// coordinate with CNK" (§IV.C).
    pub fn translate(&self, va: u64) -> Option<u64> {
        self.map
            .translate(va)
            .or_else(|| self.persist.iter().find_map(|r| r.translate(va)))
    }

    /// Is `va` inside the mapped address space at all? (No demand paging:
    /// outside means SIGSEGV immediately.)
    pub fn mapped(&self, va: u64) -> bool {
        self.translate(va).is_some()
    }

    /// Attach a persistent region (already translated by the registry).
    pub fn attach_persist(&mut self, r: Region) {
        debug_assert_eq!(r.kind, RegionKind::Persist);
        self.persist.push(r);
    }

    /// Carve space in the Dynamic window for a library of `bytes`.
    /// Returns the load vaddr (fixed, grows monotonically — full-library
    /// load at dlopen time, §IV.B.2).
    pub fn alloc_dynamic(&mut self, bytes: u64) -> Result<u64, Errno> {
        let d = self.map.region(RegionKind::Dynamic).ok_or(Errno::ENOMEM)?;
        let at = self.dyn_cursor;
        let end = at
            .checked_add((bytes + GRAIN - 1) & !(GRAIN - 1))
            .ok_or(Errno::ENOMEM)?;
        if end > d.vend() {
            return Err(Errno::ENOMEM);
        }
        self.dyn_cursor = end;
        Ok(at)
    }
}

/// Map a tracker error onto the Linux errno the syscall would return.
pub fn tracker_errno(e: TrackerError) -> Errno {
    match e {
        TrackerError::NoSpace => Errno::ENOMEM,
        TrackerError::NotAllocated => Errno::EINVAL,
        TrackerError::BrkCollision => Errno::ENOMEM,
        TrackerError::ZeroLength => Errno::EINVAL,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aspace() -> AddressSpace {
        let maps = partition_node(
            &ProcRequirements {
                text_bytes: 2 << 20,
                data_bytes: 1 << 20,
                heap_stack_bytes: 256 << 20,
                shared_bytes: 8 << 20,
                dynamic_bytes: 64 << 20,
            },
            1,
            2 << 30,
            16 << 20,
            0,
            64,
        )
        .unwrap();
        AddressSpace::new(maps.into_iter().next().unwrap(), 8 << 20)
    }

    #[test]
    fn stack_is_carved_from_heap_top() {
        let a = aspace();
        let hs = a.map.region(RegionKind::HeapStack).unwrap();
        assert_eq!(a.main_stack_hi, hs.vend());
        assert!(a.main_stack_hi - a.main_stack_lo >= (8 << 20) as u64);
        let (lo, hi) = a.heap.bounds();
        assert!(lo >= hs.vaddr && hi <= a.main_stack_lo);
    }

    #[test]
    fn translate_covers_stack_and_text() {
        let a = aspace();
        assert!(a.mapped(a.main_stack_hi - 8));
        let t = a.map.region(RegionKind::Text).unwrap();
        assert!(a.mapped(t.vaddr));
        assert!(!a.mapped(0)); // null guard page unmapped
    }

    #[test]
    fn dynamic_allocation_is_monotonic_and_bounded() {
        let mut a = aspace();
        let x = a.alloc_dynamic(6 << 20).unwrap();
        let y = a.alloc_dynamic(6 << 20).unwrap();
        assert_eq!(x, VA_DYNAMIC_BASE);
        assert!(y > x);
        // Exhaust the window.
        assert_eq!(a.alloc_dynamic(1 << 30), Err(Errno::ENOMEM));
    }

    #[test]
    fn persist_regions_translate() {
        let mut a = aspace();
        a.attach_persist(Region {
            kind: RegionKind::Persist,
            vaddr: VA_PERSIST_BASE,
            paddr: (2 << 30) - (16 << 20),
            bytes: 1 << 20,
            pages: vec![(1 << 20, VA_PERSIST_BASE)],
        });
        assert_eq!(
            a.translate(VA_PERSIST_BASE + 5),
            Some((2 << 30) - (16 << 20) + 5)
        );
    }
}
