//! `cnk` — a faithful functional model of Blue Gene/P's Compute Node
//! Kernel, the lightweight kernel the paper describes.
//!
//! The crate implements every CNK mechanism the paper discusses:
//!
//! * **Static memory partitioning** (§IV.C): [`mem::partition`] tiles
//!   the 32-bit virtual space with {1 MB, 16 MB, 256 MB, 1 GB} pages into
//!   four contiguous regions under a per-core TLB budget.
//! * **mmap/brk bookkeeping** (§IV.C): [`mem::tracker`] "merely provides
//!   free addresses" with coalescing, no page faults.
//! * **NPTL support** (§IV.B.1): the clone-flag validation, uname gate,
//!   `set_tid_address`, full [`futex`] table, and `sigaction`.
//! * **Guard pages via DAC registers** (§IV.C): [`process::Guard`],
//!   including IPI-based repositioning when another thread extends the
//!   heap.
//! * **Non-preemptive affinity scheduling** (§IV.B.1, §VI.C):
//!   [`sched::Scheduler`], with the §VIII extended-affinity partner
//!   model.
//! * **Function-shipped I/O** (§IV.A): marshaling through `ciod::wire`
//!   over the simulated collective network to per-process ioproxies.
//! * **Persistent memory** (§IV.D): [`persist::PersistRegistry`] with
//!   virtual-address preservation across jobs.
//! * **Bringup behaviours** (§III): flag-driven boot on partial
//!   hardware ([`boot`]), cheap reproducible restart, and L1-parity
//!   recovery signals (§V.B).
//!
//! The entry point is [`Cnk`], a `bgsim::Kernel` implementation.

// The kernel model must be panic-free on untrusted input (syscall
// arguments and job specs come from generated programs); tests may
// still unwrap. Invariants that genuinely cannot fail use documented
// `expect`/`assert` messages. CI enforces this with a clippy run.
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod boot;
pub mod features;
pub mod futex;
pub mod kernel;
pub mod mem;
pub mod persist;
pub mod process;
pub mod sched;

pub use kernel::{Cnk, CnkConfig};
