//! Property tests for CNK's kernel-internal structures: the persistent-
//! memory registry and the scheduler's admission accounting.

use proptest::prelude::*;

use cnk::persist::PersistRegistry;
use cnk::sched::{SchedError, Scheduler};
use sysabi::{CoreId, ProcId, Tid};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Registry invariants: distinct names never overlap physically or
    /// virtually; re-opens are stable; capacity is respected.
    #[test]
    fn persist_registry_no_overlap(
        opens in prop::collection::vec(("[a-f]{1,3}", 1u64..8), 1..40)
    ) {
        let lo = (2u64 << 30) - (64 << 20);
        let hi = 2u64 << 30;
        let mut reg = PersistRegistry::new(lo, hi);
        let mut seen: Vec<(String, u64, u64, u64)> = Vec::new();
        for (name, mb) in opens {
            match reg.open(&name, mb << 20, 0, true) {
                Ok(r) => {
                    prop_assert!(r.paddr >= lo && r.paddr + r.bytes <= hi);
                    prop_assert!(r.bytes >= mb << 20);
                    if let Some(prev) = seen.iter().find(|(n, ..)| *n == name) {
                        // Re-open: identical placement (the §IV.D
                        // pointer-preservation guarantee).
                        prop_assert_eq!(prev.1, r.vaddr);
                        prop_assert_eq!(prev.2, r.paddr);
                    } else {
                        // New region: no overlap with any existing one.
                        for (_, v, p, b) in &seen {
                            prop_assert!(
                                r.vaddr + r.bytes <= *v || *v + *b <= r.vaddr,
                                "virtual overlap"
                            );
                            prop_assert!(
                                r.paddr + r.bytes <= *p || *p + *b <= r.paddr,
                                "physical overlap"
                            );
                        }
                        seen.push((name.clone(), r.vaddr, r.paddr, r.bytes));
                    }
                }
                Err(sysabi::Errno::ENOMEM) => {
                    // Arena genuinely full: total allocated must be near
                    // capacity.
                    let total: u64 = seen.iter().map(|(.., b)| b).sum();
                    prop_assert!(total + (mb << 20) > hi - lo, "premature ENOMEM");
                }
                Err(sysabi::Errno::EINVAL) => {
                    // Re-open with a larger length than the original.
                    prop_assert!(seen.iter().any(|(n, .., b)| *n == name && mb << 20 > *b));
                }
                Err(e) => prop_assert!(false, "unexpected errno {e}"),
            }
        }
    }

    /// Scheduler admission is conserved: bound counts never exceed the
    /// per-core limit and releases restore capacity exactly.
    #[test]
    fn scheduler_admission_conserved(
        ops in prop::collection::vec((0u32..4, any::<bool>()), 1..100),
        tpc in 1u32..4,
    ) {
        let mut s = Scheduler::new(4, tpc);
        for c in 0..4 {
            s.assign_core(CoreId(c), ProcId(0));
        }
        let mut bound = [0u32; 4];
        for (core, admit) in ops {
            if admit {
                match s.admit(CoreId(core), ProcId(0)) {
                    Ok(()) => {
                        bound[core as usize] += 1;
                        prop_assert!(bound[core as usize] <= tpc, "limit exceeded");
                    }
                    Err(SchedError::CoreFull) => {
                        prop_assert_eq!(bound[core as usize], tpc, "spurious CoreFull");
                    }
                    Err(e) => prop_assert!(false, "unexpected {e:?}"),
                }
            } else if bound[core as usize] > 0 {
                s.release(CoreId(core));
                bound[core as usize] -= 1;
            }
        }
        // After releasing everything, every core admits again.
        for c in 0..4 {
            for _ in 0..bound[c as usize] {
                s.release(CoreId(c));
            }
            prop_assert!(s.admit(CoreId(c), ProcId(0)).is_ok());
        }
    }

    /// Queue/pick round-trips preserve the thread set per core.
    #[test]
    fn scheduler_queue_conservation(
        tids in prop::collection::vec(0u32..64, 1..40)
    ) {
        let mut s = Scheduler::new(1, 3);
        s.assign_core(CoreId(0), ProcId(0));
        let mut expected: Vec<Tid> = Vec::new();
        for t in tids {
            let tid = Tid(t);
            if !expected.contains(&tid) {
                s.enqueue(CoreId(0), ProcId(0), tid);
                expected.push(tid);
            }
        }
        let mut picked = Vec::new();
        while let Some(t) = s.pick(CoreId(0)) {
            picked.push(t);
        }
        prop_assert_eq!(picked, expected, "FIFO order broken");
        prop_assert_eq!(s.queued(CoreId(0)), 0);
    }
}
