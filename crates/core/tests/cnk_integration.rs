//! End-to-end CNK tests: kernel + simulated machine + scripted apps.

use bgsim::ade::FixedLatencyComm;
use bgsim::machine::{Machine, RunOutcome};
use bgsim::op::Op;
use bgsim::script::{script, wl};
use bgsim::MachineConfig;
use cnk::mem::RegionKind;
use cnk::{Cnk, CnkConfig};
use sysabi::{
    AppImage, CloneFlags, Errno, Fd, FutexOp, JobSpec, NodeMode, OpenFlags, ProcId, Rank, Sig,
    SigDisposition, SysReq, SysRet, Tid,
};

fn machine_with(cfg: CnkConfig, nodes: u32, seed: u64) -> Machine {
    Machine::new(
        MachineConfig::nodes(nodes).with_seed(seed),
        Box::new(Cnk::new(cfg)),
        Box::new(FixedLatencyComm::new()),
    )
}

fn machine(nodes: u32, seed: u64) -> Machine {
    machine_with(CnkConfig::default(), nodes, seed)
}

fn smp_spec() -> JobSpec {
    JobSpec::new(AppImage::static_test("app"), 1, NodeMode::Smp)
}

fn cnk_of(m: &Machine) -> &Cnk {
    // Safe: this machine was constructed with a Cnk kernel.
    unsafe { &*(m.kernel() as *const dyn bgsim::Kernel as *const Cnk) }
}

#[test]
fn boot_and_simple_app() {
    let mut m = machine(1, 1);
    let boot = m.boot().clone();
    assert_eq!(boot.kernel, "cnk");
    m.launch(&smp_spec(), &mut |_r: Rank| {
        script(vec![
            Op::Compute { cycles: 5000 },
            Op::Daxpy { n: 256, reps: 4 },
        ])
    })
    .unwrap();
    assert!(m.run().completed());
}

#[test]
fn uname_gate_reports_2_6_19_2() {
    // §IV.B.1: glibc's NPTL refuses kernels that look too old; CNK lies
    // helpfully.
    let mut m = machine(1, 2);
    m.boot();
    m.launch(&smp_spec(), &mut |_r: Rank| {
        wl(move |env| {
            if let Some(SysRet::Uname(u)) = env.take_ret() {
                assert_eq!(u.release, sysabi::uname::KernelVersion::new(2, 6, 19, 2));
                assert_eq!(u.sysname, "CNK");
                return Op::End;
            }
            Op::Syscall(SysReq::Uname)
        })
    })
    .unwrap();
    assert!(m.run().completed());
}

#[test]
fn function_shipped_write_lands_in_ion_filesystem() {
    let mut m = machine(1, 3);
    m.boot();
    m.launch(&smp_spec(), &mut |_r: Rank| {
        let mut step = 0;
        let mut fd = Fd(-1);
        wl(move |env| {
            step += 1;
            match step {
                1 => Op::Syscall(SysReq::Open {
                    path: "/out.dat".into(),
                    flags: OpenFlags::WRONLY | OpenFlags::CREAT,
                    mode: 0o644,
                }),
                2 => {
                    fd = Fd(env.take_ret().unwrap().val() as i32);
                    Op::Syscall(SysReq::Write {
                        fd,
                        data: b"hello from CNK".to_vec(),
                    })
                }
                3 => {
                    assert_eq!(env.take_ret().unwrap().val(), 14);
                    Op::Syscall(SysReq::Close { fd })
                }
                _ => Op::End,
            }
        })
    })
    .unwrap();
    assert!(m.run().completed());
    // The file exists on the I/O-node filesystem with the right content.
    let k = cnk_of(&m);
    let vfs = k.vfs();
    let ino = vfs.resolve(vfs.root(), "/out.dat").unwrap();
    assert_eq!(vfs.read_at(ino, 0, 64).unwrap(), b"hello from CNK".to_vec());
}

#[test]
fn stdout_reaches_the_ioproxy_console() {
    let mut m = machine(1, 4);
    m.boot();
    m.launch(&smp_spec(), &mut |_r: Rank| {
        script(vec![Op::Syscall(SysReq::Write {
            fd: Fd::STDOUT,
            data: b"rank 0: step 1 done\n".to_vec(),
        })])
    })
    .unwrap();
    assert!(m.run().completed());
    let out = cnk_of(&m).console_of(&m.sc, ProcId(0)).unwrap();
    assert_eq!(out, b"rank 0: step 1 done\n");
}

#[test]
fn io_syscall_round_trip_takes_network_time() {
    // Function shipping is not free: a write must take at least two
    // collective-network traversals plus service time.
    let mut m = machine(1, 5);
    m.boot();
    m.launch(&smp_spec(), &mut |_r: Rank| {
        script(vec![Op::Syscall(SysReq::Write {
            fd: Fd::STDOUT,
            data: vec![b'x'; 64],
        })])
    })
    .unwrap();
    let out = m.run();
    assert!(out.completed());
    assert!(
        out.at() > 5_000,
        "write completed suspiciously fast: {}",
        out.at()
    );
    assert_eq!(m.sc.stats.coll_msgs, 2, "request + reply");
}

#[test]
fn fork_and_exec_are_enosys() {
    // §VII.B: "CNK does not allow fork/exec operations."
    let mut m = machine(1, 6);
    m.boot();
    m.launch(&smp_spec(), &mut |_r: Rank| {
        let mut step = 0;
        wl(move |env| {
            step += 1;
            match step {
                1 => Op::Syscall(SysReq::Fork),
                2 => {
                    assert_eq!(env.take_ret().unwrap().err(), Errno::ENOSYS);
                    Op::Syscall(SysReq::Exec {
                        path: "/bin/sh".into(),
                    })
                }
                3 => {
                    assert_eq!(env.take_ret().unwrap().err(), Errno::ENOSYS);
                    Op::End
                }
                _ => Op::End,
            }
        })
    })
    .unwrap();
    assert!(m.run().completed());
}

#[test]
fn pthread_create_join_via_clone_and_futex() {
    // The NPTL protocol: mprotect (stack guard), clone with the exact
    // flag set, join by futex-waiting on the child tid word, which the
    // kernel clears and wakes at child exit (CLONE_CHILD_CLEARTID).
    let mut m = machine(1, 7);
    m.boot();
    m.launch(&smp_spec(), &mut |_r: Rank| {
        let mut step = 0;
        let mut stack = 0u64;
        wl(move |env| {
            step += 1;
            match step {
                1 => Op::Syscall(SysReq::Mmap {
                    addr: 0,
                    len: 2 << 20,
                    prot: sysabi::Prot::READ | sysabi::Prot::WRITE,
                    flags: sysabi::MapFlags::PRIVATE | sysabi::MapFlags::ANONYMOUS,
                    fd: None,
                    offset: 0,
                }),
                2 => {
                    stack = env.take_ret().unwrap().val() as u64;
                    // Guard page at the low end of the stack (NPTL
                    // convention, §IV.C).
                    Op::Syscall(SysReq::Mprotect {
                        addr: stack,
                        len: 64 << 10,
                        prot: sysabi::Prot::NONE,
                    })
                }
                3 => {
                    let tid_word = stack + (1 << 20);
                    env.mem_write_u32(tid_word, u32::MAX);
                    Op::Spawn {
                        args: bgsim::CloneArgs::nptl(stack + (2 << 20), 0, tid_word),
                        child: script(vec![Op::Compute { cycles: 50_000 }]),
                        core_hint: Some(1),
                    }
                }
                4 => {
                    let child_tid = env.take_ret().unwrap().val() as u32;
                    let tid_word = stack + (1 << 20);
                    // The kernel wrote the child's tid there
                    // (CLONE_PARENT_SETTID).
                    assert_eq!(env.mem_read_u32(tid_word), Some(child_tid));
                    // pthread_join: futex-wait while the word is nonzero.
                    Op::Syscall(SysReq::Futex {
                        uaddr: tid_word,
                        op: FutexOp::Wait {
                            expected: child_tid,
                        },
                    })
                }
                5 => {
                    // Woken by the child's exit; word must be zero now.
                    let tid_word = stack + (1 << 20);
                    assert_eq!(env.mem_read_u32(tid_word), Some(0));
                    Op::End
                }
                _ => Op::End,
            }
        })
    })
    .unwrap();
    let out = m.run();
    assert!(out.completed(), "{out:?}");
    // The child actually ran its 50k compute on core 1.
    assert!(m.sc.thread(Tid(1)).stats.busy_cycles >= 50_000);
}

#[test]
fn clone_flags_validated() {
    // §IV.B.1: "The flags to clone are validated against the expected
    // flags."
    let mut m = machine(1, 8);
    m.boot();
    m.launch(&smp_spec(), &mut |_r: Rank| {
        let mut step = 0;
        wl(move |env| {
            step += 1;
            match step {
                1 => Op::Spawn {
                    args: bgsim::CloneArgs {
                        flags: CloneFlags::VM, // missing the NPTL set
                        child_stack: 0x7000_0000,
                        tls: 0,
                        parent_tid_addr: 0,
                        child_tid_addr: 0,
                    },
                    child: script(vec![]),
                    core_hint: None,
                },
                2 => {
                    assert_eq!(env.take_ret().unwrap().err(), Errno::EINVAL);
                    Op::End
                }
                _ => Op::End,
            }
        })
    })
    .unwrap();
    assert!(m.run().completed());
    // The invalid clone created no thread.
    assert_eq!(m.sc.threads.len(), 1);
}

#[test]
fn thread_limit_is_fixed_per_core() {
    // One software thread per core on classic BG/P CNK: a process on a
    // 4-core node can hold 4 threads; the 5th clone gets EAGAIN
    // (§VII.B "overcommit ... not allow that").
    let mut m = machine(1, 9);
    m.boot();
    m.launch(&smp_spec(), &mut |_r: Rank| {
        let mut step = 0;
        wl(move |env| {
            step += 1;
            if step > 1 {
                let ret = env.take_ret().unwrap();
                if step <= 4 {
                    assert!(
                        !ret.is_err(),
                        "spawn on free core {} failed: {ret:?}",
                        step - 1
                    );
                } else {
                    assert_eq!(ret.err(), Errno::EAGAIN, "overcommit must fail");
                    return Op::End;
                }
            }
            if step > 4 {
                return Op::End;
            }
            // Spawns 1..3 land on the free cores 1..3; spawn 4 targets
            // core 0 (occupied by this main thread) and must fail.
            Op::Spawn {
                args: bgsim::CloneArgs::nptl(0x7800_0000, 0, 0),
                child: script(vec![Op::Compute { cycles: 10_000_000 }]),
                core_hint: Some((step as u32) % 4),
            }
        })
    })
    .unwrap();
    assert!(m.run().completed());
}

#[test]
fn futex_wake_crosses_cores() {
    // Producer on core 0 wakes a consumer pthread on core 1.
    let mut m = machine(1, 10);
    m.boot();
    m.launch(&smp_spec(), &mut |_r: Rank| {
        let mut step = 0;
        let futex_addr = 0x3000_0000u64; // inside the heap region? use brk area below
        let mut addr = 0u64;
        let _ = futex_addr;
        wl(move |env| {
            step += 1;
            match step {
                1 => Op::Syscall(SysReq::Mmap {
                    addr: 0,
                    len: 64 << 10,
                    prot: sysabi::Prot::READ | sysabi::Prot::WRITE,
                    flags: sysabi::MapFlags::PRIVATE | sysabi::MapFlags::ANONYMOUS,
                    fd: None,
                    offset: 0,
                }),
                2 => {
                    addr = env.take_ret().unwrap().val() as u64;
                    env.mem_write_u32(addr, 0);
                    let waddr = addr;
                    Op::Spawn {
                        args: bgsim::CloneArgs::nptl(0x7900_0000, 0, 0),
                        child: wl(move |cenv| {
                            // Child: wait while *addr == 0.
                            match cenv.take_ret() {
                                None => Op::Syscall(SysReq::Futex {
                                    uaddr: waddr,
                                    op: FutexOp::Wait { expected: 0 },
                                }),
                                Some(r) => {
                                    assert!(!r.is_err(), "futex wait: {r:?}");
                                    assert_eq!(cenv.mem_read_u32(waddr), Some(1));
                                    Op::End
                                }
                            }
                        }),
                        core_hint: Some(1),
                    }
                }
                3 => {
                    let _ = env.take_ret();
                    // Give the child time to park.
                    Op::Compute { cycles: 100_000 }
                }
                4 => {
                    env.mem_write_u32(addr, 1);
                    Op::Syscall(SysReq::Futex {
                        uaddr: addr,
                        op: FutexOp::Wake { count: 1 },
                    })
                }
                5 => {
                    assert_eq!(env.take_ret().unwrap().val(), 1, "one waiter woken");
                    Op::End
                }
                _ => Op::End,
            }
        })
    })
    .unwrap();
    let out = m.run();
    assert!(out.completed(), "{out:?}");
}

#[test]
fn guard_page_kills_stack_smasher() {
    // A thread touching its DAC-armed guard range dies with SIGSEGV
    // semantics (process killed).
    let mut m = machine(1, 11);
    m.boot();
    m.launch(&smp_spec(), &mut |_r: Rank| {
        let mut step = 0;
        let mut stack = 0u64;
        wl(move |env| {
            step += 1;
            match step {
                1 => Op::Syscall(SysReq::Mmap {
                    addr: 0,
                    len: 1 << 20,
                    prot: sysabi::Prot::READ | sysabi::Prot::WRITE,
                    flags: sysabi::MapFlags::PRIVATE | sysabi::MapFlags::ANONYMOUS,
                    fd: None,
                    offset: 0,
                }),
                2 => {
                    stack = env.take_ret().unwrap().val() as u64;
                    Op::Syscall(SysReq::Mprotect {
                        addr: stack,
                        len: 64 << 10,
                        prot: sysabi::Prot::NONE,
                    })
                }
                3 => Op::Spawn {
                    args: bgsim::CloneArgs::nptl(stack + (1 << 20), 0, 0),
                    child: {
                        let guard = stack;
                        wl(move |_e| {
                            // Overflow the stack straight into the guard.
                            Op::MemTouch {
                                vaddr: guard + 16,
                                bytes: 8,
                                write: true,
                            }
                        })
                    },
                    core_hint: Some(2),
                },
                _ => Op::Compute { cycles: 1_000_000 }, // parent spins; killed with process
            }
        })
    })
    .unwrap();
    let out = m.run();
    assert!(out.completed(), "{out:?}");
    // Both threads ended via the kill with SIGSEGV-ish code.
    assert_eq!(m.sc.thread(Tid(1)).exit_code, Some(128 + Sig::Segv as i32));
    assert_eq!(m.sc.thread(Tid(0)).exit_code, Some(128 + Sig::Segv as i32));
}

#[test]
fn heap_extension_repositions_main_guard_via_ipi() {
    // §IV.C's subtle case: another thread brk-extends the heap; the main
    // thread must then be able to touch the new storage (the old guard
    // range) without faulting, because CNK repositions the guard by IPI.
    let mut m = machine(1, 12);
    m.boot();
    m.launch(&smp_spec(), &mut |_r: Rank| {
        let mut step = 0;
        let mut brk0 = 0u64;
        wl(move |env| {
            step += 1;
            match step {
                1 => Op::Syscall(SysReq::Brk { addr: 0 }),
                2 => {
                    brk0 = env.take_ret().unwrap().val() as u64;
                    let target = brk0 + (1 << 20);
                    Op::Spawn {
                        args: bgsim::CloneArgs::nptl(0x7a00_0000, 0, 0),
                        child: script(vec![Op::Syscall(SysReq::Brk { addr: target })]),
                        core_hint: Some(3),
                    }
                }
                3 => {
                    let _ = env.take_ret();
                    // Let the child's brk and the IPI land.
                    Op::Compute { cycles: 200_000 }
                }
                4 => {
                    // Touch what used to be the guard range — now
                    // legitimate heap.
                    Op::MemTouch {
                        vaddr: brk0 + 64,
                        bytes: 64,
                        write: true,
                    }
                }
                _ => Op::End,
            }
        })
    })
    .unwrap();
    let out = m.run();
    assert!(out.completed(), "{out:?}");
    // Nobody was killed.
    assert_eq!(m.sc.thread(Tid(0)).exit_code, Some(0));
    assert!(m.sc.stats.ipis >= 1, "guard reposition must use an IPI");
}

#[test]
fn persistent_memory_survives_job_boundary_with_same_vaddr() {
    // §IV.D: run job 1, store a linked-list-ish structure in persistent
    // memory; job 2 re-attaches by name at the same virtual address and
    // chases the pointer.
    let mut m = machine(1, 13);
    m.boot();
    let mut spec = smp_spec();
    spec.persist_grants = vec!["table".to_string()];

    // Job 1: create and fill.
    m.launch(&spec, &mut |_r: Rank| {
        let mut step = 0;
        wl(move |env| {
            step += 1;
            match step {
                1 => Op::Syscall(SysReq::PersistOpen {
                    name: "table".into(),
                    len: 1 << 20,
                }),
                2 => {
                    let base = env.take_ret().unwrap().val() as u64;
                    // A "pointer" at base to base+0x100, and a value there.
                    env.mem_write_u64(base, base + 0x100);
                    env.mem_write_u64(base + 0x100, 0xfeed_beef);
                    Op::End
                }
                _ => Op::End,
            }
        })
    })
    .unwrap();
    assert!(m.run().completed());

    // Job 2 (fresh launch on the same kernel): re-attach and chase.
    m.launch(&spec, &mut |_r: Rank| {
        let mut step = 0;
        wl(move |env| {
            step += 1;
            match step {
                1 => Op::Syscall(SysReq::PersistOpen {
                    name: "table".into(),
                    len: 1 << 20,
                }),
                2 => {
                    let base = env.take_ret().unwrap().val() as u64;
                    // Same virtual address as job 1 saw.
                    let ptr = env.mem_read_u64(base).unwrap();
                    assert_eq!(ptr, base + 0x100, "pointer structure broken");
                    assert_eq!(env.mem_read_u64(ptr), Some(0xfeed_beef));
                    Op::End
                }
                _ => Op::End,
            }
        })
    })
    .unwrap();
    assert!(m.run().completed());
}

#[test]
fn persist_without_grant_refused() {
    let mut m = machine(1, 14);
    m.boot();
    m.launch(&smp_spec(), &mut |_r: Rank| {
        let mut step = 0;
        wl(move |env| {
            step += 1;
            match step {
                1 => Op::Syscall(SysReq::PersistOpen {
                    name: "stolen".into(),
                    len: 1 << 20,
                }),
                2 => {
                    assert_eq!(env.take_ret().unwrap().err(), Errno::EACCES);
                    Op::End
                }
                _ => Op::End,
            }
        })
    })
    .unwrap();
    assert!(m.run().completed());
}

#[test]
fn non_persistent_memory_cleared_between_jobs() {
    let mut m = machine(1, 15);
    m.boot();
    // Job 1 scribbles on its heap.
    m.launch(&smp_spec(), &mut |_r: Rank| {
        let mut step = 0;
        wl(move |env| {
            step += 1;
            match step {
                1 => Op::Syscall(SysReq::Brk { addr: 0 }),
                2 => {
                    let brk = env.take_ret().unwrap().val() as u64;
                    env.mem_write_u64(brk - 64, 0xdead_dead_dead_dead);
                    Op::End
                }
                _ => Op::End,
            }
        })
    })
    .unwrap();
    assert!(m.run().completed());
    // Job 2 reads the same place: clean slate.
    m.launch(&smp_spec(), &mut |_r: Rank| {
        let mut step = 0;
        wl(move |env| {
            step += 1;
            match step {
                1 => Op::Syscall(SysReq::Brk { addr: 0 }),
                2 => {
                    let brk = env.take_ret().unwrap().val() as u64;
                    assert_eq!(env.mem_read_u64(brk - 64), Some(0));
                    Op::End
                }
                _ => Op::End,
            }
        })
    })
    .unwrap();
    assert!(m.run().completed());
}

#[test]
fn query_static_map_covers_four_regions() {
    let mut m = machine(1, 16);
    m.boot();
    m.launch(&smp_spec(), &mut |_r: Rank| {
        let mut step = 0;
        wl(move |env| {
            step += 1;
            match step {
                1 => Op::Syscall(SysReq::QueryStaticMap),
                2 => {
                    let ret = env.take_ret().unwrap();
                    let SysRet::StaticMap(triples) = ret else {
                        panic!("{ret:?}")
                    };
                    // text, data, heap+stack, shared (§IV.C's four ranges).
                    assert_eq!(triples.len(), 4);
                    // Sorted by virtual address, non-overlapping.
                    for w in triples.windows(2) {
                        assert!(w[0].0 + w[0].2 <= w[1].0);
                    }
                    Op::End
                }
                _ => Op::End,
            }
        })
    })
    .unwrap();
    assert!(m.run().completed());
}

#[test]
fn parity_fault_recovered_by_handler_without_restart() {
    // §V.B: the Gordon Bell recovery path. The app installs a handler;
    // an injected L1 parity fault is delivered as a signal; the app
    // redoes the affected work and completes.
    let mut m = machine(1, 17);
    m.boot();
    m.launch(&smp_spec(), &mut |_r: Rank| {
        let mut step = 0;
        let mut recovered = false;
        wl(move |env| {
            if env.take_signal() == Some(Sig::Parity) {
                recovered = true;
                // Recompute the corrupted block.
                return Op::Daxpy { n: 256, reps: 16 };
            }
            step += 1;
            match step {
                1 => Op::Syscall(SysReq::Sigaction {
                    sig: Sig::Parity,
                    disposition: SigDisposition::Handler(1),
                }),
                2..=10 => Op::Daxpy { n: 256, reps: 256 },
                _ => {
                    assert!(recovered, "the injected fault never arrived");
                    Op::End
                }
            }
        })
    })
    .unwrap();
    // Inject an L1 parity error mid-run on core 0.
    m.inject_fault(2_000_000, sysabi::CoreId(0), bgsim::machine::FAULT_PARITY);
    let out = m.run();
    assert!(out.completed(), "{out:?}");
    assert_eq!(m.sc.thread(Tid(0)).exit_code, Some(0), "no restart needed");
}

#[test]
fn parity_fault_without_handler_is_fatal() {
    let mut m = machine(1, 18);
    m.boot();
    m.launch(&smp_spec(), &mut |_r: Rank| {
        script(vec![Op::Compute { cycles: 10_000_000 }])
    })
    .unwrap();
    m.inject_fault(1_000_000, sysabi::CoreId(0), bgsim::machine::FAULT_PARITY);
    let out = m.run();
    assert!(out.completed());
    assert_eq!(
        m.sc.thread(Tid(0)).exit_code,
        Some(128 + Sig::Parity as i32),
        "unhandled machine check kills the job (the checkpoint/restart world)"
    );
}

#[test]
fn affinity_extension_lets_remote_proc_use_idle_cores() {
    // §VIII: n MPI tasks (VN mode), then an OpenMP phase where rank 0
    // wants all four cores. Without the extension the spawn fails; with
    // it, rank 0's pthreads run on partner cores.
    for ext in [false, true] {
        let cfg = CnkConfig {
            affinity_extension: ext,
            ..CnkConfig::default()
        };
        let mut m = machine_with(cfg, 1, 19);
        m.boot();
        let spec = JobSpec::new(AppImage::static_test("app"), 1, NodeMode::Vn);
        m.launch(&spec, &mut move |r: Rank| {
            if r.0 != 0 {
                // Other ranks finish their MPI phase and idle out.
                return script(vec![Op::Compute { cycles: 1000 }]);
            }
            let mut step = 0;
            wl(move |env| {
                step += 1;
                match step {
                    1 => Op::Compute { cycles: 2000 },
                    // Designate core 1 (home: rank 1) as partner.
                    2 => Op::Syscall(SysReq::AffinityPartner { local_core: 1 }),
                    3 => {
                        let ret = env.take_ret().unwrap();
                        if !ext {
                            assert_eq!(ret.err(), Errno::ENOSYS);
                            return Op::End;
                        }
                        assert!(!ret.is_err());
                        // OpenMP phase: a worker pthread on core 1.
                        Op::Spawn {
                            args: bgsim::CloneArgs::nptl(0x7b00_0000, 0, 0),
                            child: script(vec![Op::Compute { cycles: 77_000 }]),
                            core_hint: Some(1),
                        }
                    }
                    4 => {
                        let ret = env.take_ret().unwrap();
                        assert!(!ret.is_err(), "partnered spawn failed: {ret:?}");
                        Op::Compute { cycles: 100_000 }
                    }
                    _ => Op::End,
                }
            })
        })
        .unwrap();
        let out = m.run();
        assert!(out.completed(), "ext={ext}: {out:?}");
        if ext {
            // The worker thread exists and ran on core 1.
            let worker = m.sc.threads.last().unwrap();
            assert_eq!(worker.core, sysabi::CoreId(1));
            assert!(worker.stats.busy_cycles >= 77_000);
        }
    }
}

#[test]
fn spawn_onto_foreign_core_without_extension_fails() {
    let mut m = machine(1, 20);
    m.boot();
    let spec = JobSpec::new(AppImage::static_test("app"), 1, NodeMode::Vn);
    m.launch(&spec, &mut |r: Rank| {
        if r.0 != 0 {
            return script(vec![]);
        }
        let mut step = 0;
        wl(move |env| {
            step += 1;
            match step {
                1 => Op::Spawn {
                    args: bgsim::CloneArgs::nptl(0x7c00_0000, 0, 0),
                    child: script(vec![]),
                    core_hint: Some(2), // rank 2's core
                },
                2 => {
                    assert_eq!(env.take_ret().unwrap().err(), Errno::EPERM);
                    Op::End
                }
                _ => Op::End,
            }
        })
    })
    .unwrap();
    assert!(m.run().completed());
}

#[test]
fn mmap_of_file_copies_in_readonly() {
    // §VI.A: "to mmap a file, CNK copies in the data and only allows
    // read-only access."
    let mut m = machine(1, 21);
    // Pre-populate an input file on the ION filesystem.
    {
        let k = unsafe { &mut *(m.kernel_mut() as *mut dyn bgsim::Kernel as *mut Cnk) };
        let vfs = k.vfs_mut();
        let root = vfs.root();
        let ino = vfs.create_at(root, "input.bin", 0o644, 1000, 100).unwrap();
        vfs.write_at(ino, 0, b"MAGICDATA").unwrap();
    }
    m.boot();
    m.launch(&smp_spec(), &mut |_r: Rank| {
        let mut step = 0;
        wl(move |env| {
            step += 1;
            match step {
                1 => Op::Syscall(SysReq::Open {
                    path: "/input.bin".into(),
                    flags: OpenFlags::RDONLY,
                    mode: 0,
                }),
                2 => {
                    let fd = Fd(env.take_ret().unwrap().val() as i32);
                    Op::Syscall(SysReq::Mmap {
                        addr: 0,
                        len: 9,
                        prot: sysabi::Prot::READ,
                        flags: sysabi::MapFlags::COPY,
                        fd: Some(fd),
                        offset: 0,
                    })
                }
                3 => {
                    let addr = env.take_ret().unwrap().val() as u64;
                    // The file content was copied in at map time.
                    assert_eq!(env.mem_read(addr, 9), Some(b"MAGICDATA".to_vec()));
                    Op::End
                }
                _ => Op::End,
            }
        })
    })
    .unwrap();
    let out = m.run();
    assert!(out.completed(), "{out:?}");
}

#[test]
fn vn_mode_places_four_ranks_per_node() {
    let mut m = machine(2, 22);
    m.boot();
    let spec = JobSpec::new(AppImage::static_test("app"), 2, NodeMode::Vn);
    let job = m
        .launch(&spec, &mut |_r: Rank| {
            script(vec![Op::Compute { cycles: 10 }])
        })
        .unwrap();
    assert_eq!(job.nranks(), 8);
    // Ranks 0..3 on node 0, each on its own core.
    for r in 0..4u32 {
        let ri = job.rank(Rank(r));
        assert_eq!(ri.node, sysabi::NodeId(0));
        assert_eq!(m.sc.thread(ri.main_tid).core, sysabi::CoreId(r));
    }
    assert!(m.run().completed());
}

#[test]
fn deadlocked_futex_is_diagnosed() {
    let mut m = machine(1, 23);
    m.boot();
    m.launch(&smp_spec(), &mut |_r: Rank| {
        let mut step = 0;
        wl(move |env| {
            step += 1;
            match step {
                1 => Op::Syscall(SysReq::Brk { addr: 0 }),
                2 => {
                    let brk = env.take_ret().unwrap().val() as u64;
                    let addr = brk - 4096;
                    env.mem_write_u32(addr, 7);
                    // Wait forever: nobody will wake us.
                    Op::Syscall(SysReq::Futex {
                        uaddr: addr,
                        op: FutexOp::Wait { expected: 7 },
                    })
                }
                _ => Op::End,
            }
        })
    })
    .unwrap();
    match m.run() {
        RunOutcome::Deadlock { blocked, .. } => assert_eq!(blocked, vec![Tid(0)]),
        other => panic!("{other:?}"),
    }
}

#[test]
fn static_map_region_kinds_match_partitioner() {
    let mut m = machine(1, 24);
    m.boot();
    m.launch(&smp_spec(), &mut |_r: Rank| script(vec![]))
        .unwrap();
    m.run();
    let k = cnk_of(&m);
    let p = k.process(ProcId(0)).unwrap();
    for kind in [
        RegionKind::Text,
        RegionKind::Data,
        RegionKind::HeapStack,
        RegionKind::Shared,
    ] {
        assert!(p.aspace.map.region(kind).is_some());
    }
    // Every core of the process pinned the full map in its TLB and the
    // TLB never misses afterwards.
    for core in 0..4usize {
        assert!(m.sc.tlbs[core].pinned_count() > 0);
        assert_eq!(m.sc.tlbs[core].misses, 0);
    }
}
