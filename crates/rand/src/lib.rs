//! Offline stand-in for the `rand` crate (0.8 line).
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors the minimal surface it actually uses instead of the real
//! dependency. [`rngs::SmallRng`] is a faithful implementation of
//! xoshiro256++ seeded by SplitMix64 — the exact algorithm behind rand
//! 0.8's `SmallRng` on 64-bit targets — and [`Rng::gen_range`] uses the
//! same widening-multiply rejection sampling, so every stream in the
//! simulator produces sequences bit-identical to a build against the real
//! crate. That matters because the repo's trace digests and figure tables
//! are seed-addressed; swapping the PRNG would silently re-roll them all.
//!
//! Only what the workspace calls is provided: `SmallRng`,
//! `SeedableRng::{from_seed, seed_from_u64}`, `Rng::gen` for unsigned
//! integers, and `Rng::gen_range` over `Range`/`RangeInclusive` of
//! `u32`/`u64`/`usize`.

/// Core entropy source: everything is derived from 64-bit draws.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds, mirroring `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        T: distributions::Standard,
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from a range; panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    use crate::{RngCore, SeedableRng};

    /// xoshiro256++, the algorithm rand 0.8 uses for `SmallRng` on 64-bit
    /// platforms. Sequences match the real crate bit-for-bit.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            // The low bits of xoshiro256++ have weak linear artifacts, so
            // (like upstream) 32-bit draws take the high half.
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> SmallRng {
            // The all-zero state is a fixed point of xoshiro; upstream
            // remaps it through seed_from_u64(0).
            if seed.iter().all(|&b| b == 0) {
                return SmallRng::seed_from_u64(0);
            }
            let mut s = [0u64; 4];
            for (w, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *w = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            SmallRng { s }
        }

        /// SplitMix64 expansion of a 64-bit seed into full state, exactly
        /// as upstream's `Xoshiro256PlusPlus::seed_from_u64`.
        fn seed_from_u64(mut state: u64) -> SmallRng {
            const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_mut(8) {
                state = state.wrapping_add(PHI);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                chunk.copy_from_slice(&z.to_le_bytes());
            }
            SmallRng::from_seed(seed)
        }
    }
}

pub mod distributions {
    use crate::RngCore;

    /// Types `Rng::gen` can draw uniformly from their whole domain.
    /// (Upstream models this as `Distribution<T> for Standard`; the flat
    /// trait keeps call sites source-compatible.)
    pub trait Standard: Sized {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for u64 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Standard for u32 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Standard for usize {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Standard for bool {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
            // Upstream: one high bit of a 32-bit draw.
            (rng.next_u32() >> 31) != 0
        }
    }

    pub mod uniform {
        use crate::RngCore;

        /// Range argument forms accepted by `Rng::gen_range`.
        pub trait SampleRange<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        /// Widening-multiply rejection sampling (Lemire), as upstream's
        /// `UniformInt<u64>`: draw `v`, keep `hi(v * range)` unless the low
        /// half lands in the biased zone. `range == 0` means the full
        /// 2^64-value domain.
        #[inline]
        fn u64_from(low: u64, range: u64, rng: &mut (impl RngCore + ?Sized)) -> u64 {
            if range == 0 {
                return rng.next_u64();
            }
            let zone = (range << range.leading_zeros()).wrapping_sub(1);
            loop {
                let v = rng.next_u64();
                let m = (v as u128) * (range as u128);
                if (m as u64) <= zone {
                    return low.wrapping_add((m >> 64) as u64);
                }
            }
        }

        #[inline]
        fn u32_from(low: u32, range: u32, rng: &mut (impl RngCore + ?Sized)) -> u32 {
            if range == 0 {
                return rng.next_u32();
            }
            let zone = (range << range.leading_zeros()).wrapping_sub(1);
            loop {
                let v = rng.next_u32();
                let m = (v as u64) * (range as u64);
                if (m as u32) <= zone {
                    return low.wrapping_add((m >> 32) as u32);
                }
            }
        }

        impl SampleRange<u64> for core::ops::Range<u64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
                assert!(self.start < self.end, "cannot sample empty range");
                u64_from(self.start, self.end - self.start, rng)
            }
        }

        impl SampleRange<u64> for core::ops::RangeInclusive<u64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                u64_from(lo, hi.wrapping_sub(lo).wrapping_add(1), rng)
            }
        }

        impl SampleRange<u32> for core::ops::Range<u32> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u32 {
                assert!(self.start < self.end, "cannot sample empty range");
                u32_from(self.start, self.end - self.start, rng)
            }
        }

        impl SampleRange<u32> for core::ops::RangeInclusive<u32> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u32 {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                u32_from(lo, hi.wrapping_sub(lo).wrapping_add(1), rng)
            }
        }

        impl SampleRange<usize> for core::ops::Range<usize> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
                assert!(self.start < self.end, "cannot sample empty range");
                u64_from(self.start as u64, (self.end - self.start) as u64, rng) as usize
            }
        }

        impl SampleRange<usize> for core::ops::RangeInclusive<usize> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                u64_from(lo as u64, (hi - lo) as u64 + 1, rng) as usize
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn known_answer_matches_upstream_rand_08() {
        // First three outputs of rand 0.8's SmallRng::seed_from_u64(0) on a
        // 64-bit target (xoshiro256++ + SplitMix64). Pinning these guards
        // the whole repo's seed-addressed reproducibility claims.
        let mut r = SmallRng::seed_from_u64(0);
        assert_eq!(r.gen::<u64>(), 0x5317_5d61_490b_23df);
        assert_eq!(r.gen::<u64>(), 0x61da_6f3d_c380_d507);
        assert_eq!(r.gen::<u64>(), 0x5c0f_df91_ec9a_7bfc);
        let mut r = SmallRng::seed_from_u64(42);
        assert_eq!(r.gen::<u64>(), 0xd076_4d4f_4476_689f);
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SmallRng::seed_from_u64(0xdead_beef);
        let mut b = SmallRng::seed_from_u64(0xdead_beef);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..=20);
            assert!((10..=20).contains(&v));
            let w = r.gen_range(0u64..9_000);
            assert!(w < 9_000);
        }
    }

    #[test]
    fn degenerate_inclusive_range() {
        let mut r = SmallRng::seed_from_u64(7);
        assert_eq!(r.gen_range(5u64..=5), 5);
    }

    #[test]
    fn zero_seed_not_fixed_point() {
        let mut r = SmallRng::seed_from_u64(0);
        let draws: Vec<u64> = (0..4).map(|_| r.gen()).collect();
        assert!(draws.iter().any(|&v| v != 0));
    }
}
