//! Property tests of the simulator substrate: event ordering, physical
//! memory, and the torus metric.

use proptest::prelude::*;

use bgsim::engine::{Engine, EvKind};
use bgsim::mem::PhysMem;
use bgsim::torus::Torus;
use bgsim::MachineConfig;
use sysabi::NodeId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Pop order is total: sorted by time, FIFO within a time.
    #[test]
    fn engine_total_order(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut e = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            e.schedule(t, EvKind::Kernel { node: 0, tag: i as u64 });
        }
        let mut popped: Vec<(u64, u64)> = Vec::new();
        while let Some(ev) = e.pop() {
            let EvKind::Kernel { tag, .. } = ev.kind else { unreachable!() };
            popped.push((ev.at, tag));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// run-to-bound (clock stop) pops exactly the events at or before
    /// the bound and parks the clock there.
    #[test]
    fn engine_clock_stop(times in prop::collection::vec(1u64..1000, 1..100), bound in 0u64..1000) {
        let mut e = Engine::new();
        for &t in &times {
            e.schedule(t, EvKind::Kernel { node: 0, tag: 0 });
        }
        let mut popped = 0usize;
        while e.pop_until(bound).is_some() {
            popped += 1;
        }
        let expected = times.iter().filter(|&&t| t <= bound).count();
        prop_assert_eq!(popped, expected);
        prop_assert_eq!(e.now(), bound.max(times.iter().filter(|&&t| t <= bound).max().copied().unwrap_or(0)));
    }

    /// Physical memory behaves like a byte array with zero fill.
    #[test]
    fn physmem_model(
        writes in prop::collection::vec((0u64..60_000, prop::collection::vec(any::<u8>(), 1..300)), 1..30)
    ) {
        let mut m = PhysMem::new(1 << 20);
        let mut model = vec![0u8; 64 << 10];
        for (addr, data) in &writes {
            m.write(*addr, data).unwrap();
            model[*addr as usize..*addr as usize + data.len()].copy_from_slice(data);
        }
        // Random-window readback equivalence.
        let got = m.read(0, model.len() as u64).unwrap();
        prop_assert_eq!(got, model);
    }

    /// clear_range is equivalent to writing zeros.
    #[test]
    fn physmem_clear_is_zero_write(
        fill in prop::collection::vec(any::<u8>(), 64..512),
        lo in 0u64..256,
        len in 1u64..512,
    ) {
        let mut a = PhysMem::new(1 << 16);
        let mut b = PhysMem::new(1 << 16);
        a.write(0, &fill).unwrap();
        b.write(0, &fill).unwrap();
        a.clear_range(lo, len).unwrap();
        b.write(lo, &vec![0u8; len as usize]).unwrap();
        prop_assert_eq!(a.read(0, 1024).unwrap(), b.read(0, 1024).unwrap());
    }

    /// Torus hop count is a metric: symmetric, zero iff equal, triangle
    /// inequality.
    #[test]
    fn torus_metric(n in prop_oneof![Just(8u32), Just(12), Just(27), Just(64)], a in 0u32..64, b in 0u32..64, c in 0u32..64) {
        let t = Torus::new(&MachineConfig::nodes(n));
        let (a, b, c) = (NodeId(a % n), NodeId(b % n), NodeId(c % n));
        prop_assert_eq!(t.hops(a, b), t.hops(b, a));
        prop_assert_eq!(t.hops(a, a), 0);
        if a != b {
            prop_assert!(t.hops(a, b) > 0);
        }
        prop_assert!(t.hops(a, c) <= t.hops(a, b) + t.hops(b, c), "triangle inequality");
    }
}
