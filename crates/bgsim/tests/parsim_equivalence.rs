//! Property tests for the parallel-simulation contract: for random
//! configurations and workloads, the sharded conservative engine and the
//! windowed machine driver must be bit-identical to the sequential
//! reference — same trace digest, same final cycle, same event count —
//! and telemetry must remain a pure observer in windowed mode.

use proptest::prelude::*;

use bgsim::ade::{AdeKernel, FixedLatencyComm};
use bgsim::cycles::Cycle;
use bgsim::engine::EvKind;
use bgsim::machine::{Machine, WlEnv, Workload};
use bgsim::op::{ApiLayer, CommOp, Op, Protocol};
use bgsim::parsim::{DomainLogic, Outbox, ParSim};
use bgsim::MachineConfig;
use sysabi::{AppImage, JobSpec, NodeMode, Rank};

/// Ring logic over random parameters: forward a TTL'd token to the next
/// domain, spawning a local echo each hop.
struct Ring {
    me: u32,
    n: u32,
    delay: Cycle,
}

impl DomainLogic for Ring {
    fn handle(&mut self, _now: Cycle, kind: &EvKind, out: &mut Outbox<'_>) {
        if let EvKind::Kernel { tag, .. } = *kind {
            if tag == 0 {
                return;
            }
            out.local_in(
                3,
                EvKind::Kernel {
                    node: self.me,
                    tag: 0,
                },
            );
            let nxt = (self.me + 1) % self.n;
            out.send(
                nxt,
                self.delay,
                EvKind::Kernel {
                    node: nxt,
                    tag: tag - 1,
                },
            );
        }
    }
}

fn ring_sim(
    n: u32,
    lookahead: Cycle,
    extra: Cycle,
    seeds: &[(u32, Cycle, u64)],
    threads: usize,
) -> ParSim {
    let delay = lookahead + extra;
    let logics: Vec<Box<dyn DomainLogic>> = (0..n)
        .map(|me| Box::new(Ring { me, n, delay }) as Box<dyn DomainLogic>)
        .collect();
    let mut sim = ParSim::new(logics, lookahead, threads);
    for &(dom, at, ttl) in seeds {
        let dom = dom % n;
        sim.schedule(
            dom,
            at,
            EvKind::Kernel {
                node: dom,
                tag: ttl,
            },
        );
    }
    sim
}

/// A fixed op script (same shape as the executor tests).
struct Script {
    ops: Vec<Op>,
    i: usize,
}

impl Workload for Script {
    fn next(&mut self, _env: &mut WlEnv<'_>) -> Op {
        if self.i >= self.ops.len() {
            return Op::End;
        }
        let op = std::mem::replace(&mut self.ops[self.i], Op::End);
        self.i += 1;
        op
    }
}

/// Build a machine running a random compute/ring-exchange workload.
fn exchange_machine(
    nodes: u32,
    seed: u64,
    lookahead: Option<u64>,
    telemetry: bool,
    cycles: &[u64],
    bytes: u64,
) -> Machine {
    exchange_machine_fast(nodes, seed, lookahead, telemetry, cycles, bytes, true)
}

/// [`exchange_machine`] with the event-reduction fast path selectable.
#[allow(clippy::too_many_arguments)]
fn exchange_machine_fast(
    nodes: u32,
    seed: u64,
    lookahead: Option<u64>,
    telemetry: bool,
    cycles: &[u64],
    bytes: u64,
    fast_path: bool,
) -> Machine {
    let mut cfg = MachineConfig::nodes(nodes)
        .with_seed(seed)
        .with_trace()
        .with_fast_path(fast_path);
    if let Some(la) = lookahead {
        cfg = cfg.with_lookahead(la);
    }
    if telemetry {
        cfg = cfg.with_telemetry();
    }
    let mut m = Machine::new(
        cfg,
        Box::new(AdeKernel::new()),
        Box::new(FixedLatencyComm::new()),
    );
    m.boot();
    let cycles = cycles.to_vec();
    m.launch(
        &JobSpec::new(AppImage::static_test("prop"), nodes, NodeMode::Smp),
        &mut move |r: Rank| {
            let peer = Rank((r.0 + 1) % nodes);
            let mut ops = Vec::new();
            for (i, &c) in cycles.iter().enumerate() {
                ops.push(Op::Compute { cycles: c });
                ops.push(Op::Comm(CommOp::Send {
                    to: peer,
                    bytes,
                    tag: i as u32,
                    proto: Protocol::Eager,
                    layer: ApiLayer::Dcmf,
                }));
                ops.push(Op::Comm(CommOp::Recv {
                    from: None,
                    tag: i as u32,
                    layer: ApiLayer::Dcmf,
                }));
            }
            Box::new(Script { ops, i: 0 }) as Box<dyn Workload>
        },
    )
    .unwrap();
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The sharded substrate produces identical outcomes (global digest,
    /// per-domain digests, final cycle, event and epoch counts) for any
    /// worker count, across random topologies, lookaheads, and seeds.
    #[test]
    fn parsim_thread_count_invariant(
        n in 2u32..10,
        lookahead in 20u64..200,
        extra in 0u64..100,
        threads in 2usize..8,
        seeds in prop::collection::vec((0u32..16, 1u64..500, 1u64..40), 1..6),
    ) {
        let seq = ring_sim(n, lookahead, extra, &seeds, 1).run();
        let mut par_sim = ring_sim(n, lookahead, extra, &seeds, threads);
        let par = par_sim.run();
        prop_assert_eq!(par, seq, "threads={} diverged", threads);
        let mut ref_sim = ring_sim(n, lookahead, extra, &seeds, 1);
        ref_sim.run();
        prop_assert_eq!(par_sim.cell_digests(), ref_sim.cell_digests());
    }

    /// The windowed machine driver (the `--threads N` execution mode) is
    /// digest- and cycle-identical to `Machine::run`, for random node
    /// counts, workloads, and lookahead overrides — including lookaheads
    /// far larger or smaller than the derived link latency.
    #[test]
    fn machine_windowed_matches_sequential(
        nodes in 2u32..5,
        seed in 0u64..1_000_000,
        lookahead in prop_oneof![Just(None), (1u64..5_000).prop_map(Some)],
        cycles in prop::collection::vec(1u64..20_000, 1..5),
        bytes in 1u64..65_536,
    ) {
        let mut a = exchange_machine(nodes, seed, lookahead, false, &cycles, bytes);
        let out_a = a.run();
        let mut b = exchange_machine(nodes, seed, lookahead, false, &cycles, bytes);
        let out_b = b.run_windowed();
        prop_assert!(out_a.completed(), "{:?}", out_a);
        prop_assert_eq!(out_b.at(), out_a.at(), "final cycle diverged");
        prop_assert_eq!(b.trace_digest(), a.trace_digest(), "digest diverged");
        prop_assert!(b.epochs() >= 1);
    }

    /// The event-reduction fast path is digest- and cycle-identical to
    /// the heap path, under both the sequential and the windowed
    /// drivers, for random topologies, workloads, and lookaheads —
    /// every combination must agree on one digest.
    #[test]
    fn fast_path_digest_invariant(
        nodes in 2u32..5,
        seed in 0u64..1_000_000,
        lookahead in prop_oneof![Just(None), (1u64..5_000).prop_map(Some)],
        cycles in prop::collection::vec(1u64..20_000, 1..5),
        bytes in 1u64..65_536,
    ) {
        let mut on = exchange_machine_fast(nodes, seed, lookahead, false, &cycles, bytes, true);
        let out_on = on.run();
        let mut off = exchange_machine_fast(nodes, seed, lookahead, false, &cycles, bytes, false);
        let out_off = off.run();
        prop_assert!(out_on.completed(), "{:?}", out_on);
        prop_assert_eq!(out_on.at(), out_off.at(), "final cycle diverged (run)");
        prop_assert_eq!(on.trace_digest(), off.trace_digest(), "digest diverged (run)");
        let mut won = exchange_machine_fast(nodes, seed, lookahead, false, &cycles, bytes, true);
        let wout_on = won.run_windowed();
        let mut woff = exchange_machine_fast(nodes, seed, lookahead, false, &cycles, bytes, false);
        let wout_off = woff.run_windowed();
        prop_assert_eq!(wout_on.at(), out_on.at(), "windowed fast-on final cycle diverged");
        prop_assert_eq!(wout_off.at(), out_on.at(), "windowed fast-off final cycle diverged");
        prop_assert_eq!(won.trace_digest(), on.trace_digest(), "windowed fast-on digest diverged");
        prop_assert_eq!(woff.trace_digest(), on.trace_digest(), "windowed fast-off digest diverged");
    }

    /// Telemetry stays a pure observer under the windowed driver:
    /// enabling metrics/tracepoints changes neither digest nor final
    /// cycle of a windowed run.
    #[test]
    fn telemetry_observer_neutral_windowed(
        seed in 0u64..1_000_000,
        cycles in prop::collection::vec(1u64..20_000, 1..4),
    ) {
        let mut off = exchange_machine(2, seed, None, false, &cycles, 4096);
        let out_off = off.run_windowed();
        let mut on = exchange_machine(2, seed, None, true, &cycles, 4096);
        let out_on = on.run_windowed();
        prop_assert_eq!(out_on.at(), out_off.at());
        prop_assert_eq!(on.trace_digest(), off.trace_digest());
    }
}
