//! Executor integration tests: the machine loop exercised through the
//! diagnostic (ADE) kernel and the fixed-latency comm model.

use bgsim::ade::{AdeKernel, FixedLatencyComm};
use bgsim::machine::{Machine, Recorder, RunOutcome, WlEnv, Workload};
use bgsim::op::{ApiLayer, CommOp, Op, Protocol};
use bgsim::scan::ScanTarget;
use bgsim::MachineConfig;
use sysabi::{AppImage, JobSpec, NodeMode, Rank, SysReq};

fn machine(nodes: u32, seed: u64) -> Machine {
    Machine::new(
        MachineConfig::nodes(nodes).with_seed(seed),
        Box::new(AdeKernel::new()),
        Box::new(FixedLatencyComm::new()),
    )
}

fn spec(nodes: u32) -> JobSpec {
    JobSpec::new(AppImage::static_test("t"), nodes, NodeMode::Smp)
}

/// A workload from a vector of ops.
struct Script {
    ops: Vec<Op>,
    i: usize,
    rec: Option<(Recorder, String)>,
}

impl Script {
    fn new(ops: Vec<Op>) -> Script {
        Script {
            ops,
            i: 0,
            rec: None,
        }
    }

    fn recording(ops: Vec<Op>, rec: Recorder, series: String) -> Script {
        Script {
            ops,
            i: 0,
            rec: Some((rec, series)),
        }
    }
}

impl Workload for Script {
    fn next(&mut self, env: &mut WlEnv<'_>) -> Op {
        if let Some((rec, series)) = &self.rec {
            rec.record(series, env.now() as f64);
        }
        if self.i >= self.ops.len() {
            return Op::End;
        }
        let op = std::mem::replace(&mut self.ops[self.i], Op::End);
        self.i += 1;
        op
    }
}

#[test]
fn compute_run_completes_with_exact_time() {
    let mut m = machine(1, 1);
    m.boot();
    m.launch(&spec(1), &mut |_r: Rank| {
        Box::new(Script::new(vec![
            Op::Compute { cycles: 1000 },
            Op::Compute { cycles: 500 },
        ])) as Box<dyn Workload>
    })
    .unwrap();
    let out = m.run();
    assert!(out.completed(), "{out:?}");
    assert_eq!(out.at(), 1500);
}

#[test]
fn daxpy_cost_includes_bounded_jitter() {
    let mut m = machine(1, 2);
    m.boot();
    m.launch(&spec(1), &mut |_r: Rank| {
        Box::new(Script::new(vec![Op::Daxpy { n: 256, reps: 256 }])) as Box<dyn Workload>
    })
    .unwrap();
    let out = m.run();
    let base = 658_958;
    assert!(out.at() >= base && out.at() <= base + 39, "at={}", out.at());
}

#[test]
fn deterministic_same_seed_same_digest() {
    let run = |seed| {
        let mut m = Machine::new(
            MachineConfig::nodes(2).with_seed(seed).with_trace(),
            Box::new(AdeKernel::new()),
            Box::new(FixedLatencyComm::new()),
        );
        m.boot();
        m.launch(&spec(2), &mut |r: Rank| {
            let peer = Rank(1 - r.0);
            Box::new(Script::new(vec![
                Op::Compute { cycles: 777 },
                Op::Comm(CommOp::Send {
                    to: peer,
                    bytes: 4096,
                    tag: 1,
                    proto: Protocol::Eager,
                    layer: ApiLayer::Dcmf,
                }),
                Op::Comm(CommOp::Recv {
                    from: Some(peer),
                    tag: 1,
                    layer: ApiLayer::Dcmf,
                }),
                Op::Daxpy { n: 128, reps: 3 },
            ])) as Box<dyn Workload>
        })
        .unwrap();
        let out = m.run();
        assert!(out.completed());
        (out.at(), m.trace_digest())
    };
    let (t1, d1) = run(42);
    let (t2, d2) = run(42);
    assert_eq!(t1, t2);
    assert_eq!(d1, d2, "same seed must give bit-identical traces");
    let (_, d3) = run(43);
    assert_ne!(d1, d3, "different seed should differ (jitter stream)");
}

#[test]
fn send_recv_pairs_complete() {
    let mut m = machine(2, 3);
    m.boot();
    m.launch(&spec(2), &mut |r: Rank| {
        let peer = Rank(1 - r.0);
        let mut ops = vec![];
        if r.0 == 0 {
            ops.push(Op::Comm(CommOp::Send {
                to: peer,
                bytes: 1 << 16,
                tag: 9,
                proto: Protocol::Auto,
                layer: ApiLayer::Mpi,
            }));
        } else {
            ops.push(Op::Comm(CommOp::Recv {
                from: Some(peer),
                tag: 9,
                layer: ApiLayer::Mpi,
            }));
        }
        Box::new(Script::new(ops)) as Box<dyn Workload>
    })
    .unwrap();
    assert!(m.run().completed());
}

#[test]
fn recv_before_send_blocks_then_wakes() {
    let mut m = machine(2, 4);
    m.boot();
    m.launch(&spec(2), &mut |r: Rank| {
        let peer = Rank(1 - r.0);
        let ops = if r.0 == 1 {
            vec![Op::Comm(CommOp::Recv {
                from: Some(peer),
                tag: 5,
                layer: ApiLayer::Dcmf,
            })]
        } else {
            vec![
                // Rank 0 computes a long time before sending, so rank 1
                // definitely blocks first.
                Op::Compute { cycles: 1_000_000 },
                Op::Comm(CommOp::Send {
                    to: peer,
                    bytes: 8,
                    tag: 5,
                    proto: Protocol::Eager,
                    layer: ApiLayer::Dcmf,
                }),
            ]
        };
        Box::new(Script::new(ops)) as Box<dyn Workload>
    })
    .unwrap();
    let out = m.run();
    assert!(out.completed());
    assert!(out.at() >= 1_000_000);
}

#[test]
fn unmatched_recv_deadlocks_with_diagnosis() {
    let mut m = machine(2, 5);
    m.boot();
    m.launch(&spec(2), &mut |r: Rank| {
        let ops = if r.0 == 1 {
            vec![Op::Comm(CommOp::Recv {
                from: Some(Rank(0)),
                tag: 1,
                layer: ApiLayer::Dcmf,
            })]
        } else {
            vec![]
        };
        Box::new(Script::new(ops)) as Box<dyn Workload>
    })
    .unwrap();
    match m.run() {
        RunOutcome::Deadlock { blocked, .. } => {
            assert_eq!(blocked.len(), 1);
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn barrier_synchronizes_all_ranks() {
    let rec = Recorder::new();
    let mut m = machine(4, 6);
    m.boot();
    let rec2 = rec.clone();
    m.launch(&spec(4), &mut move |r: Rank| {
        // Different pre-barrier compute per rank; all should leave the
        // barrier at the same cycle.
        Box::new(Script::recording(
            vec![
                Op::Compute {
                    cycles: 1000 * (r.0 as u64 + 1),
                },
                Op::Comm(CommOp::Barrier),
                Op::Compute { cycles: 1 },
            ],
            rec2.clone(),
            format!("rank{}", r.0),
        )) as Box<dyn Workload>
    })
    .unwrap();
    assert!(m.run().completed());
    // Each rank records cycles at its op boundaries; boundary index 2 is
    // "just left the barrier" and must coincide across ranks.
    let after_barrier: Vec<f64> = (0..4).map(|t| rec.series(&format!("rank{t}"))[2]).collect();
    assert!(
        after_barrier.windows(2).all(|w| w[0] == w[1]),
        "barrier exit skewed: {after_barrier:?}"
    );
    // And it is no earlier than the slowest rank's arrival.
    assert!(after_barrier[0] >= 4000.0);
}

#[test]
fn syscalls_route_through_kernel() {
    let mut m = machine(1, 7);
    m.boot();
    m.launch(&spec(1), &mut |_r: Rank| {
        Box::new(Script::new(vec![
            Op::Syscall(SysReq::Gettid),
            Op::Syscall(SysReq::Write {
                fd: sysabi::Fd(1),
                data: vec![b'h'; 10],
            }),
            Op::Syscall(SysReq::Fork), // ENOSYS on ADE
        ])) as Box<dyn Workload>
    })
    .unwrap();
    assert!(m.run().completed());
    let t = m.sc.thread(sysabi::Tid(0));
    assert_eq!(t.stats.syscalls, 3);
}

#[test]
fn spawn_runs_child_on_other_core() {
    let mut m = machine(1, 8);
    m.boot();
    m.launch(&spec(1), &mut |_r: Rank| {
        let child = Box::new(Script::new(vec![Op::Compute { cycles: 5000 }]));
        Box::new(Script::new(vec![
            Op::Spawn {
                args: bgsim::CloneArgs::nptl(0x7000_0000, 0, 0x6000_0000),
                child,
                core_hint: Some(1),
            },
            Op::Compute { cycles: 100 },
        ])) as Box<dyn Workload>
    })
    .unwrap();
    assert!(m.run().completed());
    assert_eq!(m.sc.threads.len(), 2);
    let child = m.sc.thread(sysabi::Tid(1));
    assert_eq!(child.core, sysabi::CoreId(1));
    assert!(child.stats.busy_cycles >= 5000);
}

#[test]
fn run_until_parks_at_cycle_and_scans() {
    let mut m = machine(1, 9);
    m.boot();
    m.launch(&spec(1), &mut |_r: Rank| {
        Box::new(Script::new(vec![Op::Compute { cycles: 100_000 }])) as Box<dyn Workload>
    })
    .unwrap();
    let out = m.run_until(50_000);
    assert_eq!(out, RunOutcome::ReachedCycle { at: 50_000 });
    let scan = m.scan_ref(ScanTarget::Cores);
    assert_eq!(scan.cycle, 50_000);
    // The thread is mid-op: core 0 runs tid 0.
    let running = scan
        .probes
        .iter()
        .find(|(n, _)| n == "core0.running_tid")
        .unwrap()
        .1;
    assert_eq!(running, 0);
}

#[test]
fn scans_reproducible_across_rebuilt_machines() {
    // The §III workflow: rebuild the machine with the same seed, run to
    // cycle N, scan. Two rebuilds at the same N must agree exactly.
    let scan_at = |cycle: u64| {
        let mut m = machine(1, 10);
        m.boot();
        m.launch(&spec(1), &mut |_r: Rank| {
            Box::new(Script::new(vec![
                Op::Daxpy { n: 256, reps: 16 },
                Op::Compute { cycles: 40_000 },
                Op::Daxpy { n: 256, reps: 16 },
            ])) as Box<dyn Workload>
        })
        .unwrap();
        m.run_until(cycle);
        m.scan_destructive(ScanTarget::Full)
    };
    for c in [1000u64, 30_000, 77_777] {
        let a = scan_at(c);
        let b = scan_at(c);
        assert_eq!(a, b, "scan at {c} not reproducible");
    }
}

#[test]
fn stats_track_network_traffic() {
    let mut m = machine(2, 11);
    m.boot();
    m.launch(&spec(2), &mut |r: Rank| {
        let peer = Rank(1 - r.0);
        let ops = if r.0 == 0 {
            vec![Op::Comm(CommOp::Send {
                to: peer,
                bytes: 12345,
                tag: 0,
                proto: Protocol::Eager,
                layer: ApiLayer::Dcmf,
            })]
        } else {
            vec![Op::Comm(CommOp::Recv {
                from: Some(peer),
                tag: 0,
                layer: ApiLayer::Dcmf,
            })]
        };
        Box::new(Script::new(ops)) as Box<dyn Workload>
    })
    .unwrap();
    assert!(m.run().completed());
    assert_eq!(m.sc.stats.torus_msgs, 1);
    assert_eq!(m.sc.stats.torus_bytes, 12345);
}

#[test]
fn exit_group_kills_sibling_threads() {
    let mut m = machine(1, 12);
    m.boot();
    m.launch(&spec(1), &mut |_r: Rank| {
        // Child spins forever; parent exits the whole process.
        let child = Box::new(Script::new(vec![Op::Compute {
            cycles: u32::MAX as u64,
        }]));
        Box::new(Script::new(vec![
            Op::Spawn {
                args: bgsim::CloneArgs::nptl(0x7000_0000, 0, 0),
                child,
                core_hint: Some(1),
            },
            Op::Compute { cycles: 1000 },
            Op::Syscall(SysReq::ExitGroup { code: 7 }),
        ])) as Box<dyn Workload>
    })
    .unwrap();
    let out = m.run();
    assert!(out.completed(), "{out:?}");
    assert!(
        out.at() < u32::MAX as u64,
        "exit_group did not cut the spinner short"
    );
    assert_eq!(m.sc.thread(sysabi::Tid(1)).exit_code, Some(7));
}

#[test]
fn boot_reports_phases() {
    let mut m = machine(1, 13);
    let r = m.boot().clone();
    assert_eq!(r.kernel, "ade");
    assert!(r.instructions > 0);
    let phase_sum: u64 = r.phases.iter().map(|(_, c)| c).sum();
    assert_eq!(phase_sum, r.instructions);
}

#[test]
fn reproducible_reset_preserves_dram_and_restarts_clock() {
    let mut m = machine(1, 14);
    m.boot();
    // Write a value into DRAM via the data plane (identity mapping on ADE).
    m.sc.dram[0]
        .write_u64(0x1000, 0xfeed_f00d_dead_beef)
        .unwrap();
    m.launch(&spec(1), &mut |_r: Rank| {
        Box::new(Script::new(vec![Op::Compute { cycles: 500 }])) as Box<dyn Workload>
    })
    .unwrap();
    m.run();
    assert!(m.now() > 0);
    m.reproducible_reset();
    assert_eq!(m.now(), 0, "clock restarts at reset");
    assert_eq!(
        m.sc.dram[0].read_u64(0x1000).unwrap(),
        0xfeed_f00d_dead_beef
    );
    assert!(m.sc.barrier.multichip_reproducible());
    // The machine is usable again.
    m.launch(&spec(1), &mut |_r: Rank| {
        Box::new(Script::new(vec![Op::Compute { cycles: 10 }])) as Box<dyn Workload>
    })
    .unwrap();
    assert!(m.run().completed());
}
