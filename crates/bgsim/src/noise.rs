//! Generic periodic noise-source descriptions.
//!
//! A noise source fires on a (period ± jitter) schedule and steals a
//! duration drawn from a [min, max] range from whatever is running on
//! its cores. The FWK uses these to model Linux's timer tick and
//! daemons (§V.A); CNK accepts them as *injected* noise for
//! kernel-policy studies — the paper's §I point that an LWK is "a more
//! easily modifiable base" for exploring the effect of kernel policies
//! on applications, and the methodology of the Ferreira et al. noise-
//! injection study the paper cites.

use rand::rngs::SmallRng;

use crate::rng::uniform_incl;

/// Which cores of a node a source interrupts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CoreSet {
    All,
    One(u32),
    /// Every core except the given one.
    AllBut(u32),
}

impl CoreSet {
    pub fn contains(&self, core: u32) -> bool {
        match *self {
            CoreSet::All => true,
            CoreSet::One(c) => c == core,
            CoreSet::AllBut(c) => c != core,
        }
    }
}

/// A periodic noise source.
#[derive(Clone, Debug)]
pub struct NoiseSource {
    pub name: &'static str,
    /// Mean period in cycles.
    pub period: u64,
    /// Uniform jitter on the period, ± cycles.
    pub period_jitter: u64,
    /// Stolen cycles per firing, uniform in [min, max].
    pub cost_min: u64,
    pub cost_max: u64,
    pub cores: CoreSet,
}

impl NoiseSource {
    /// A synthetic injection source in the style of kernel-level noise
    /// injection studies: fixed frequency (Hz) and duration (µs) on all
    /// cores, no randomness beyond a small phase jitter.
    pub fn injection(hz: f64, duration_us: f64) -> NoiseSource {
        let period = (850e6 / hz) as u64;
        let cost = (duration_us * 850.0) as u64;
        NoiseSource {
            name: "injected",
            period,
            period_jitter: period / 20,
            cost_min: cost,
            cost_max: cost,
            cores: CoreSet::All,
        }
    }

    /// Next firing delay from now.
    pub fn next_delay(&self, rng: &mut SmallRng) -> u64 {
        let lo = self.period.saturating_sub(self.period_jitter).max(1);
        let hi = self.period + self.period_jitter;
        uniform_incl(rng, lo, hi)
    }

    /// Cycles stolen by one firing.
    pub fn cost(&self, rng: &mut SmallRng) -> u64 {
        uniform_incl(rng, self.cost_min, self.cost_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngHub;

    #[test]
    fn injection_arithmetic() {
        // 10 Hz, 1000 us: period 85M cycles, cost 850k cycles.
        let s = NoiseSource::injection(10.0, 1000.0);
        assert_eq!(s.period, 85_000_000);
        assert_eq!(s.cost_min, 850_000);
        assert_eq!(s.cost_min, s.cost_max);
        assert!(s.cores.contains(0) && s.cores.contains(3));
    }

    #[test]
    fn draws_bounded() {
        let hub = RngHub::new(3);
        let mut rng = hub.stream("n");
        let s = NoiseSource {
            name: "x",
            period: 1000,
            period_jitter: 100,
            cost_min: 5,
            cost_max: 9,
            cores: CoreSet::One(2),
        };
        for _ in 0..500 {
            let d = s.next_delay(&mut rng);
            assert!((900..=1100).contains(&d));
            let c = s.cost(&mut rng);
            assert!((5..=9).contains(&c));
        }
        assert!(!s.cores.contains(0));
    }
}
