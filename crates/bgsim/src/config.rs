//! Chip and machine configuration.
//!
//! Section III of the paper: "The startup and runtime configuration of CNK
//! contains independent control flags and configuration parameters that
//! support it running even when many features of the BG/P hardware did not
//! exist (during design) or were broken (during chip bringup)." Those
//! flags are modeled here as [`UnitStatus`] per functional unit, and the
//! L2-bank mapping knob the paper uses as its example is
//! [`ChipConfig::l2_bank_map`].

/// Health of one functional unit of the chip.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum UnitStatus {
    /// Fully functional.
    #[default]
    Present,
    /// Not yet implemented in the current design drop (pre-silicon) —
    /// any use must be avoided entirely.
    Absent,
    /// Present but known broken: usable only with a software work-around
    /// that costs extra cycles per use.
    Broken,
}

impl UnitStatus {
    pub fn usable(self) -> bool {
        !matches!(self, UnitStatus::Absent)
    }

    /// Stable numeric code for digest folding.
    fn code(self) -> u64 {
        match self {
            UnitStatus::Present => 0,
            UnitStatus::Absent => 1,
            UnitStatus::Broken => 2,
        }
    }
}

/// FNV-1a folding over 64-bit words, for the semantic config digests
/// that key memoized results ([`MachineConfig::semantic_digest`],
/// [`crate::fault::FaultSchedule::digest`]). Same constants as
/// [`crate::rng::fnv1a`], widened to one multiply per word.
#[derive(Clone, Copy, Debug)]
pub struct DigestFold(u64);

impl DigestFold {
    pub fn new() -> DigestFold {
        DigestFold(0xcbf2_9ce4_8422_2325)
    }

    pub fn word(&mut self, v: u64) -> &mut DigestFold {
        self.0 = (self.0 ^ v).wrapping_mul(0x0000_0100_0000_01b3);
        self
    }

    /// Fold a float by its bit pattern (bit-exact, no rounding).
    pub fn f64(&mut self, v: f64) -> &mut DigestFold {
        self.word(v.to_bits())
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for DigestFold {
    fn default() -> DigestFold {
        DigestFold::new()
    }
}

/// How physical addresses map onto the L2 cache banks (§III: "L2 Cache
/// configuration parameters that control the mapping of physical memory to
/// cache controllers and to memory banks within the cache").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum L2BankMap {
    /// Consecutive lines round-robin across banks — the production
    /// setting; spreads traffic, minimal conflicts.
    Interleaved,
    /// Large consecutive blocks per bank — concentrates a streaming core
    /// on one bank and creates conflicts under sharing.
    Blocked,
    /// A deliberately conflicting XOR-fold mapping used during
    /// verification to create artificial bank conflicts.
    ConflictStress,
}

/// One simulated BG/P-like chip (compute node SoC).
#[derive(Clone, Debug)]
pub struct ChipConfig {
    /// Cores per node (BG/P: 4).
    pub cores: u32,
    /// Hardware threads per core the kernel may use. BG/P CNK started at
    /// 1, later 3 (§VIII footnote); next-gen is compile-time variable.
    pub threads_per_core: u32,
    /// DRAM per node in bytes (BG/P: 2 GB or 4 GB).
    pub dram_bytes: u64,
    /// L1 data cache bytes per core (BG/P: 32 KB).
    pub l1_bytes: u64,
    /// L2 prefetch-buffer-ish per-core cache bytes.
    pub l2_bytes: u64,
    /// Shared L3 (eDRAM) bytes.
    pub l3_bytes: u64,
    /// Number of L2 banks.
    pub l2_banks: u32,
    /// Bank mapping under test.
    pub l2_bank_map: L2BankMap,
    /// TLB entries per core (PPC440/450 family: 64-entry software TLB).
    pub tlb_entries: u32,
    /// DAC (Debug Address Compare) register pairs per core.
    pub dac_pairs: u32,
    /// Cycles between DRAM refresh windows; refresh collisions are the
    /// only residual jitter on CNK (sub-0.006%).
    pub dram_refresh_interval: u64,
    /// Worst-case cycles a load can stall on a refresh collision.
    pub dram_refresh_stall_max: u64,

    // Unit health flags, exercised during "bringup" tests.
    pub torus_unit: UnitStatus,
    pub collective_unit: UnitStatus,
    pub barrier_unit: UnitStatus,
    pub dma_unit: UnitStatus,
    pub l3_unit: UnitStatus,
    pub fpu_unit: UnitStatus,
}

impl Default for ChipConfig {
    fn default() -> Self {
        ChipConfig {
            cores: 4,
            threads_per_core: 1,
            dram_bytes: 2 << 30,
            l1_bytes: 32 << 10,
            l2_bytes: 2 << 10,
            l3_bytes: 8 << 20,
            l2_banks: 8,
            l2_bank_map: L2BankMap::Interleaved,
            tlb_entries: 64,
            dac_pairs: 4,
            // ~7.8 us refresh interval at 850 MHz.
            dram_refresh_interval: 6630,
            dram_refresh_stall_max: 39,
            torus_unit: UnitStatus::Present,
            collective_unit: UnitStatus::Present,
            barrier_unit: UnitStatus::Present,
            dma_unit: UnitStatus::Present,
            l3_unit: UnitStatus::Present,
            fpu_unit: UnitStatus::Present,
        }
    }
}

impl ChipConfig {
    /// The BG/P production configuration.
    pub fn bgp() -> ChipConfig {
        ChipConfig::default()
    }

    /// BG/P with the late-2009 firmware that allowed 3 threads per core
    /// (§VIII footnote 3).
    pub fn bgp_multithread() -> ChipConfig {
        ChipConfig {
            threads_per_core: 3,
            ..ChipConfig::default()
        }
    }

    /// A pre-silicon "partial hardware" configuration: no torus, no DMA,
    /// broken L3 — what early bringup looked like (§III).
    pub fn bringup_partial() -> ChipConfig {
        ChipConfig {
            torus_unit: UnitStatus::Absent,
            dma_unit: UnitStatus::Absent,
            l3_unit: UnitStatus::Broken,
            ..ChipConfig::default()
        }
    }

    /// Fold every behavior-determining chip parameter into `h` (part of
    /// [`MachineConfig::semantic_digest`]).
    fn fold(&self, h: &mut DigestFold) {
        h.word(self.cores as u64)
            .word(self.threads_per_core as u64)
            .word(self.dram_bytes)
            .word(self.l1_bytes)
            .word(self.l2_bytes)
            .word(self.l3_bytes)
            .word(self.l2_banks as u64)
            .word(match self.l2_bank_map {
                L2BankMap::Interleaved => 0,
                L2BankMap::Blocked => 1,
                L2BankMap::ConflictStress => 2,
            })
            .word(self.tlb_entries as u64)
            .word(self.dac_pairs as u64)
            .word(self.dram_refresh_interval)
            .word(self.dram_refresh_stall_max)
            .word(self.torus_unit.code())
            .word(self.collective_unit.code())
            .word(self.barrier_unit.code())
            .word(self.dma_unit.code())
            .word(self.l3_unit.code())
            .word(self.fpu_unit.code());
    }
}

/// Which priority-queue structure backs each event domain in
/// [`crate::engine::Engine`]. Both back the same two-level merge and pop
/// the same global `(cycle, seq)` order bit-for-bit; the choice is pure
/// host-performance tuning.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum EngineBackend {
    /// A calendar queue: a bucketed ring over the dense near-horizon
    /// window with a `BinaryHeap` overflow for sparse/far-future events.
    /// O(1) amortized insert/pop at steady event density — the default.
    #[default]
    Calendar,
    /// The plain per-domain `BinaryHeap` of the original engine; the
    /// reference structure the calendar is digest-pinned against.
    Heap,
}

impl EngineBackend {
    /// Stable label used in CLI parsing and report keys.
    pub fn label(self) -> &'static str {
        match self {
            EngineBackend::Calendar => "calendar",
            EngineBackend::Heap => "heap",
        }
    }
}

/// The whole simulated machine.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    pub chip: ChipConfig,
    /// Number of compute nodes.
    pub nodes: u32,
    /// Torus dimensions (x, y, z); product must equal `nodes`.
    pub torus_dims: (u32, u32, u32),
    /// Compute nodes per I/O node (BG/P pset ratios: 16..128).
    pub io_ratio: u32,
    /// Torus link bandwidth, MB/s per direction (BG/P: 425).
    pub torus_link_mbs: f64,
    /// Torus per-hop latency in ns (BG/P hardware ~ 64 ns/hop incl. wire).
    pub torus_hop_ns: f64,
    /// Collective (tree) network bandwidth, MB/s (BG/P: 850 ≈ 0.85 GB/s).
    pub collective_mbs: f64,
    /// Collective network one-way latency per tree stage, ns.
    pub collective_stage_ns: f64,
    /// Global barrier network round-trip latency, ns (BG/P: ~1.3 us
    /// full-machine; small partitions far less).
    pub barrier_ns: f64,
    /// Master seed for all stochastic streams.
    pub seed: u64,
    /// Record a full event trace (needed by reproducibility tests and
    /// scan-based debugging; small runs only).
    pub trace_events: bool,
    /// Bound trace-entry retention to a ring of this many entries
    /// (long-running benches). Implies entry keeping; the digest still
    /// covers the whole stream.
    pub trace_capacity: Option<usize>,
    /// Enable the telemetry subsystem (metrics registry + tracepoints).
    /// Determinism-neutral: enabling it cannot change trace digests or
    /// cycle counts.
    pub telemetry: bool,
    /// Tracepoint buffer size when telemetry is enabled (preallocated;
    /// overflow drops rather than reallocating).
    pub telemetry_capacity: usize,
    /// Conservative-parallel lookahead override, in cycles. `None`
    /// derives it from the minimum cross-node link latency
    /// ([`MachineConfig::min_link_cycles`]); an explicit value is
    /// clamped to at least 1. Smaller windows mean more epoch barriers;
    /// windowing never changes results, only batching.
    pub lookahead: Option<u64>,
    /// Steady-state pending events per domain. Queues grow lazily from
    /// empty, so this is only used when `eager_layout` re-creates the
    /// legacy pre-sized allocation.
    pub event_capacity: usize,
    /// Enable the event-reduction fast path (op coalescing + quiescence
    /// fast-forward). Digest-identical to the plain engine by
    /// construction; disable (`--no-fast-path` on the bench bins) to
    /// fall back to one heap event per completion when debugging.
    pub fast_path: bool,
    /// Enable the cycle-accounting profiler + crash flight recorder
    /// (`telemetry::Profiler`). On by default: like telemetry it is
    /// determinism-neutral by construction, so keeping it on cannot
    /// change trace digests or cycle counts.
    pub profiler: bool,
    /// Flight-recorder ring capacity per domain (spans retained for the
    /// crash dump).
    pub profiler_ring: usize,
    /// RAS fault-injection schedule ([`crate::fault`]). Empty by
    /// default, and an empty schedule schedules no events at all — such
    /// runs are bit-identical to a build without fault injection.
    pub faults: crate::fault::FaultSchedule,
    /// Event-queue structure backing each domain ([`EngineBackend`]).
    /// Calendar by default; both settings pop bit-identically.
    pub engine_backend: EngineBackend,
    /// Sample kernel noise/daemon timers analytically from a virtual
    /// timer wheel instead of scheduling one heap event per tick. Same
    /// RNG stream, same firing order, bit-identical digests; `false`
    /// falls back to the per-tick reference walker.
    pub closed_form_noise: bool,
    /// Let the windowed driver jump whole quiescent epochs to the next
    /// pending event (the parsim-style `min_at + lookahead` anchor) even
    /// when the per-op fast path is disabled. Digest-identical either
    /// way; `false` reverts to fixed `now + lookahead` windows.
    pub epoch_fast_forward: bool,
    /// Dead-entry floor before the engine considers a wholesale
    /// compaction sweep of a domain queue (it still also requires dead >
    /// live). Tunable per backend; must be at least 1.
    pub compact_min_dead: usize,
    /// Re-create the legacy eager memory layout: pre-sized per-domain
    /// event queues, the one-shot `domains * capacity` slot reservation,
    /// and fully materialized per-node/per-core columns (RNG streams,
    /// futex tables, DAC files...). Reservation-only and therefore
    /// digest-neutral; exists so the scale benchmarks can measure the
    /// pre-refactor bytes/node against the lazy default. Off by default.
    pub eager_layout: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            chip: ChipConfig::default(),
            nodes: 1,
            torus_dims: (1, 1, 1),
            io_ratio: 16,
            torus_link_mbs: 425.0,
            torus_hop_ns: 64.0,
            collective_mbs: 850.0,
            collective_stage_ns: 120.0,
            barrier_ns: 700.0,
            seed: 0x5eed_cafe,
            trace_events: false,
            trace_capacity: None,
            telemetry: false,
            telemetry_capacity: 1 << 16,
            lookahead: None,
            event_capacity: 32,
            fast_path: true,
            profiler: true,
            profiler_ring: 64,
            faults: crate::fault::FaultSchedule::default(),
            engine_backend: EngineBackend::default(),
            closed_form_noise: true,
            epoch_fast_forward: true,
            compact_min_dead: 64,
            eager_layout: false,
        }
    }
}

impl MachineConfig {
    /// A single-node machine (the FWQ configuration).
    pub fn single_node() -> MachineConfig {
        MachineConfig::default()
    }

    /// An `n`-node machine arranged in the most cubic torus possible.
    pub fn nodes(n: u32) -> MachineConfig {
        let dims = cubish(n);
        MachineConfig {
            nodes: n,
            torus_dims: dims,
            ..MachineConfig::default()
        }
    }

    pub fn with_seed(mut self, seed: u64) -> MachineConfig {
        self.seed = seed;
        self
    }

    pub fn with_trace(mut self) -> MachineConfig {
        self.trace_events = true;
        self
    }

    /// Keep only the most recent `n` trace entries (bounded memory for
    /// long-running benches).
    pub fn with_trace_capacity(mut self, n: usize) -> MachineConfig {
        self.trace_events = true;
        self.trace_capacity = Some(n);
        self
    }

    /// Enable the telemetry subsystem (metrics + tracepoints).
    pub fn with_telemetry(mut self) -> MachineConfig {
        self.telemetry = true;
        self
    }

    /// Fix the epoch window of the windowed/parallel runners to
    /// `cycles` instead of deriving it from link latencies.
    pub fn with_lookahead(mut self, cycles: u64) -> MachineConfig {
        self.lookahead = Some(cycles);
        self
    }

    /// Toggle the event-reduction fast path (on by default). Either
    /// setting produces bit-identical trace digests; `false` is the
    /// reference mode for conformance checks and debugging.
    pub fn with_fast_path(mut self, on: bool) -> MachineConfig {
        self.fast_path = on;
        self
    }

    /// Toggle the cycle-accounting profiler (on by default). Either
    /// setting produces bit-identical trace digests; turning it off
    /// only loses the `profile.*` report section and the crash
    /// flight-recorder dump.
    pub fn with_profiler(mut self, on: bool) -> MachineConfig {
        self.profiler = on;
        self
    }

    /// Install a RAS fault-injection schedule ([`crate::fault`]).
    pub fn with_faults(mut self, faults: crate::fault::FaultSchedule) -> MachineConfig {
        self.faults = faults;
        self
    }

    /// Select the event-queue structure ([`EngineBackend`]). Either
    /// backend pops the same `(cycle, seq)` order bit-for-bit.
    pub fn with_engine_backend(mut self, backend: EngineBackend) -> MachineConfig {
        self.engine_backend = backend;
        self
    }

    /// Toggle closed-form noise sampling (on by default). `false` is
    /// the per-tick reference walker the closed form is pinned against.
    pub fn with_closed_form_noise(mut self, on: bool) -> MachineConfig {
        self.closed_form_noise = on;
        self
    }

    /// Toggle epoch-grained quiescence fast-forward in the windowed
    /// driver (on by default; digest-identical either way).
    pub fn with_epoch_fast_forward(mut self, on: bool) -> MachineConfig {
        self.epoch_fast_forward = on;
        self
    }

    /// Toggle the legacy eager memory layout (off by default; see the
    /// `eager_layout` field). Digest-neutral — only the memory
    /// footprint changes.
    pub fn with_eager_layout(mut self, on: bool) -> MachineConfig {
        self.eager_layout = on;
        self
    }

    /// Tune the engine's dead-entry compaction floor (default 64).
    /// Validation rejects 0 — a zero floor would compact on every
    /// cancel and defeat lazy stale discard.
    pub fn with_compact_min_dead(mut self, floor: usize) -> MachineConfig {
        self.compact_min_dead = floor;
        self
    }

    pub fn total_cores(&self) -> u32 {
        self.nodes * self.chip.cores
    }

    /// Minimum latency of any cross-node event in this configuration:
    /// the smaller of the torus floor (DMA injection + one hop) and the
    /// collective-network floor (one tree stage). Cross-node traffic —
    /// `NetDeliver`, `CollDone`, CIOD function-ship replies — always
    /// rides one of those networks, so this is a safe conservative
    /// lookahead for parallel epochs.
    pub fn min_link_cycles(&self) -> u64 {
        let torus = crate::torus::Torus::new(self).min_latency_cycles();
        let coll = crate::collective::CollectiveNet::new(self).min_latency_cycles();
        torus.min(coll).max(1)
    }

    /// The epoch window actually used by windowed execution: the
    /// explicit override if set, else the derived link floor.
    pub fn effective_lookahead(&self) -> u64 {
        self.lookahead
            .unwrap_or_else(|| self.min_link_cycles())
            .max(1)
    }

    /// Number of I/O nodes serving this partition (at least one).
    pub fn io_nodes(&self) -> u32 {
        self.nodes.div_ceil(self.io_ratio)
    }

    /// Digest of the machine *shape*: every parameter that can change
    /// simulated behavior (chip geometry and unit health, node count,
    /// torus dimensions, pset ratio, link timings). This is the
    /// `config` component of a memoization key — two configs with equal
    /// digests produce bit-identical runs for the same (seed, program,
    /// faults).
    ///
    /// Deliberately **excluded**, because each is proven digest-neutral
    /// by the differential checker (or is pure host-side
    /// observability): `seed` and `faults` (separate key components),
    /// `fast_path`, `engine_backend`, `closed_form_noise`,
    /// `epoch_fast_forward`, `lookahead`, `compact_min_dead`,
    /// `event_capacity`, `eager_layout`, and the trace/telemetry/
    /// profiler toggles. Folding those in would fragment a result cache
    /// across equivalent modes for no behavioral difference.
    pub fn semantic_digest(&self) -> u64 {
        let mut h = DigestFold::new();
        self.chip.fold(&mut h);
        let (x, y, z) = self.torus_dims;
        h.word(self.nodes as u64)
            .word(x as u64)
            .word(y as u64)
            .word(z as u64)
            .word(self.io_ratio as u64)
            .f64(self.torus_link_mbs)
            .f64(self.torus_hop_ns)
            .f64(self.collective_mbs)
            .f64(self.collective_stage_ns)
            .f64(self.barrier_ns);
        h.finish()
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        let (x, y, z) = self.torus_dims;
        if x * y * z != self.nodes {
            return Err(format!("torus {}x{}x{} != {} nodes", x, y, z, self.nodes));
        }
        if self.chip.cores == 0 || self.chip.threads_per_core == 0 {
            return Err("chip must have cores and threads".into());
        }
        if self.io_ratio == 0 {
            return Err("io_ratio must be positive".into());
        }
        if let Some(n) = self.faults.max_node() {
            if n >= self.nodes {
                return Err(format!(
                    "fault schedule targets node {n}, machine has {}",
                    self.nodes
                ));
            }
        }
        if self.compact_min_dead == 0 {
            return Err("compact_min_dead must be at least 1".into());
        }
        Ok(())
    }
}

/// Factor `n` into the most cubic (x, y, z) with x*y*z == n.
pub fn cubish(n: u32) -> (u32, u32, u32) {
    let mut best = (n, 1, 1);
    let mut best_score = n; // max dimension; smaller is more cubic
    for x in 1..=n {
        if !n.is_multiple_of(x) {
            continue;
        }
        let rest = n / x;
        for y in 1..=rest {
            if !rest.is_multiple_of(y) {
                continue;
            }
            let z = rest / y;
            let score = x.max(y).max(z);
            if score < best_score {
                best_score = score;
                best = (x, y, z);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        MachineConfig::default().validate().unwrap();
    }

    #[test]
    fn cubish_factors() {
        assert_eq!(cubish(1), (1, 1, 1));
        assert_eq!(cubish(8), (2, 2, 2));
        assert_eq!(cubish(64), (4, 4, 4));
        let (x, y, z) = cubish(16);
        assert_eq!(x * y * z, 16);
        assert!(x.max(y).max(z) <= 4);
        let (x, y, z) = cubish(12);
        assert_eq!(x * y * z, 12);
    }

    #[test]
    fn nodes_builder_is_valid() {
        for n in [1u32, 2, 4, 12, 16, 64, 100] {
            MachineConfig::nodes(n).validate().unwrap();
        }
    }

    #[test]
    fn bad_dims_rejected() {
        let mut c = MachineConfig::nodes(8);
        c.torus_dims = (3, 1, 1);
        assert!(c.validate().is_err());
    }

    #[test]
    fn io_node_count() {
        let mut c = MachineConfig::nodes(64);
        c.io_ratio = 16;
        assert_eq!(c.io_nodes(), 4);
        c.io_ratio = 128;
        assert_eq!(c.io_nodes(), 1);
    }

    #[test]
    fn lookahead_derivation() {
        let c = MachineConfig::nodes(8);
        // The CN stage floor (120 ns) undercuts the torus floor
        // (inject + one 64 ns hop) at default link timings.
        assert_eq!(c.min_link_cycles(), crate::cycles::ns_to_cycles(120.0));
        assert_eq!(c.effective_lookahead(), c.min_link_cycles());
        assert!(c.min_link_cycles() > 0);
        let c = c.with_lookahead(0);
        assert_eq!(c.effective_lookahead(), 1, "explicit 0 clamps to 1");
        let c = c.with_lookahead(5000);
        assert_eq!(c.effective_lookahead(), 5000);
    }

    #[test]
    fn engine_tuning_knobs() {
        let c = MachineConfig::default();
        assert_eq!(c.engine_backend, EngineBackend::Calendar);
        assert!(c.closed_form_noise);
        assert!(c.epoch_fast_forward);
        assert_eq!(c.compact_min_dead, 64);
        let c = c
            .with_engine_backend(EngineBackend::Heap)
            .with_closed_form_noise(false)
            .with_epoch_fast_forward(false)
            .with_compact_min_dead(8);
        c.validate().unwrap();
        assert_eq!(c.engine_backend.label(), "heap");
        assert_eq!(EngineBackend::Calendar.label(), "calendar");
        let bad = MachineConfig::default().with_compact_min_dead(0);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn semantic_digest_tracks_shape_not_tuning() {
        let base = MachineConfig::nodes(8);
        let d = base.semantic_digest();
        assert_eq!(d, MachineConfig::nodes(8).semantic_digest());
        // Digest-neutral knobs do not move the digest...
        assert_eq!(
            d,
            MachineConfig::nodes(8)
                .with_seed(999)
                .with_fast_path(false)
                .with_engine_backend(EngineBackend::Heap)
                .with_closed_form_noise(false)
                .with_telemetry()
                .with_trace()
                .with_eager_layout(true)
                .with_lookahead(17)
                .semantic_digest()
        );
        // ...but every shape change does.
        assert_ne!(d, MachineConfig::nodes(4).semantic_digest());
        let mut c = MachineConfig::nodes(8);
        c.io_ratio = 32;
        assert_ne!(d, c.semantic_digest());
        let mut c = MachineConfig::nodes(8);
        c.torus_link_mbs = 850.0;
        assert_ne!(d, c.semantic_digest());
        let mut c = MachineConfig::nodes(8);
        c.chip.threads_per_core = 3;
        assert_ne!(d, c.semantic_digest());
        let mut c = MachineConfig::nodes(8);
        c.chip.l3_unit = UnitStatus::Broken;
        assert_ne!(d, c.semantic_digest());
    }

    #[test]
    fn bringup_config_flags() {
        let c = ChipConfig::bringup_partial();
        assert!(!c.torus_unit.usable());
        assert!(!c.dma_unit.usable());
        assert!(c.l3_unit.usable()); // broken-but-usable with workaround
        assert_eq!(c.l3_unit, UnitStatus::Broken);
    }
}
