//! The deterministic telemetry subsystem: a boot-allocated metrics
//! registry, typed cycle-domain tracepoints, and exporters
//! (Chrome/Perfetto trace JSON, gem5-style flat stats, first-divergence
//! reporting).
//!
//! Determinism neutrality is by construction, not by luck:
//!
//! * every recorded value is a simulated-cycle count or a plain count —
//!   no wall clock anywhere;
//! * recording appends to telemetry-private buffers and never reads an
//!   RNG stream, never schedules an event, and never mutates thread or
//!   engine state;
//! * all metric storage is allocated at boot (registration), so the
//!   hot-path cost of a hook is an array index and an add — and when
//!   telemetry is disabled, a single branch.
//!
//! The same run with telemetry enabled and disabled therefore produces
//! bit-identical trace digests and final cycle counts; a test in
//! `tests/cross_kernel.rs` enforces this for both kernels.

mod divergence;
mod export;
mod metrics;
mod profiler;
mod tracepoint;

pub use divergence::{first_divergence, DivergenceReport};
pub use export::{chrome_trace_json, json_escape, stats_json, stats_txt};
pub use metrics::{Hist, MetricId, MetricKind, MetricView, MetricsRegistry, Scope, Slot};
pub use profiler::{
    Domain, DomainStats, FlightRing, NodeHeat, ProfileSnapshot, Profiler, SpanRec, DOMAIN_COUNT,
};
pub use tracepoint::{TpKind, Tracepoint, NO_CORE};

use crate::cycles::Cycle;

/// Coverage signal for fuzzers: an FNV-1a hash over the registry's
/// nonzero counter/histogram slots (name-sorted, so registration order
/// cannot leak in), seeded with the high half of the trace digest as a
/// coarse path prefix. Two runs that exercise different code paths —
/// different syscall mixes, fault kinds, network traffic — land on
/// different digests even when their final trace digests are unknown to
/// the caller; bgcheck uses this as novelty feedback.
pub fn coverage_digest(reg: &MetricsRegistry, trace_digest: u64) -> u64 {
    fn mix(d: &mut u64, v: u64) {
        for b in v.to_le_bytes() {
            *d ^= b as u64;
            *d = d.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    let mut views: Vec<MetricView<'_>> = reg.iter().collect();
    views.sort_by(|a, b| a.name.cmp(b.name));
    let mut d: u64 = 0xcbf2_9ce4_8422_2325;
    mix(&mut d, trace_digest >> 32);
    for m in views {
        let name_h = crate::rng::fnv1a(m.name.as_bytes());
        match m.kind {
            MetricKind::Histogram => {
                for (i, h) in m.hists.iter().enumerate() {
                    if h.count() == 0 {
                        continue;
                    }
                    mix(&mut d, name_h);
                    mix(&mut d, i as u64);
                    mix(&mut d, h.count());
                    mix(&mut d, h.sum());
                    mix(&mut d, h.min());
                    mix(&mut d, h.max());
                }
            }
            _ => {
                for (i, v) in m.vals.iter().enumerate() {
                    if *v == 0 {
                        continue;
                    }
                    mix(&mut d, name_h);
                    mix(&mut d, i as u64);
                    mix(&mut d, *v);
                }
            }
        }
    }
    d
}

/// Metric ids pre-registered at boot so simulator and kernel hooks pay
/// no name lookups. Names follow a gem5-ish dotted convention; the
/// catalog is documented in README.md ("Observability").
#[derive(Clone, Copy, Debug)]
pub struct WellKnownIds {
    pub noise_events: MetricId,
    pub noise_cycles: MetricId,
    pub preempts: MetricId,
    pub sched_picks: MetricId,
    pub syscalls: MetricId,
    pub syscall_cycles: MetricId,
    pub ipis: MetricId,
    pub hw_faults: MetricId,
    pub guard_faults: MetricId,
    pub segv_faults: MetricId,
    pub page_faults: MetricId,
    pub tlb_refills: MetricId,
    pub futex_waits: MetricId,
    pub futex_wakes: MetricId,
    pub fship_requests: MetricId,
    pub fship_latency: MetricId,
    pub daemon_wakes: MetricId,
    pub dcmf_eager: MetricId,
    pub dcmf_rndzv: MetricId,
    pub dcmf_put: MetricId,
    pub dcmf_get: MetricId,
    pub dcmf_coll: MetricId,
    pub torus_sends: MetricId,
    pub coll_sends: MetricId,
    pub evq_cancelled: MetricId,
    pub evq_stale_discards: MetricId,
    pub evq_compactions: MetricId,
    pub stale_opdone: MetricId,
    pub stale_timeslice: MetricId,
    pub coalesced_ops: MetricId,
    pub fastforward_cycles: MetricId,
    pub batched_packets: MetricId,
    pub ras_events: MetricId,
    pub ciod_retries: MetricId,
    pub ciod_backoff_cycles: MetricId,
    pub torus_dropped_pkts: MetricId,
    pub coll_dropped_pkts: MetricId,
}

impl WellKnownIds {
    fn register(reg: &mut MetricsRegistry) -> WellKnownIds {
        WellKnownIds {
            noise_events: reg.counter("noise.events", Scope::PerNode),
            noise_cycles: reg.histogram("noise.cycles", Scope::PerCore),
            preempts: reg.counter("sched.preempts", Scope::PerCore),
            sched_picks: reg.counter("sched.picks", Scope::PerCore),
            syscalls: reg.counter("syscall.count", Scope::PerCore),
            syscall_cycles: reg.histogram("syscall.cycles", Scope::PerCore),
            ipis: reg.counter("irq.ipis", Scope::PerCore),
            hw_faults: reg.counter("fault.hw", Scope::PerCore),
            guard_faults: reg.counter("fault.guard", Scope::PerCore),
            segv_faults: reg.counter("fault.segv", Scope::PerCore),
            page_faults: reg.counter("fault.page", Scope::PerCore),
            tlb_refills: reg.counter("mem.tlb_refills", Scope::PerCore),
            futex_waits: reg.counter("futex.waits", Scope::PerCore),
            futex_wakes: reg.counter("futex.wakes", Scope::PerCore),
            fship_requests: reg.counter("fship.requests", Scope::PerNode),
            fship_latency: reg.histogram("fship.latency_cycles", Scope::PerNode),
            daemon_wakes: reg.counter("noise.daemon_wakes", Scope::PerCore),
            dcmf_eager: reg.counter("dcmf.eager", Scope::PerNode),
            dcmf_rndzv: reg.counter("dcmf.rndzv", Scope::PerNode),
            dcmf_put: reg.counter("dcmf.put", Scope::PerNode),
            dcmf_get: reg.counter("dcmf.get", Scope::PerNode),
            dcmf_coll: reg.counter("dcmf.collectives", Scope::PerNode),
            torus_sends: reg.counter("net.torus_sends", Scope::PerNode),
            coll_sends: reg.counter("net.coll_sends", Scope::PerNode),
            evq_cancelled: reg.counter("engine.cancelled", Scope::PerNode),
            evq_stale_discards: reg.gauge("engine.stale_discards", Scope::Machine),
            evq_compactions: reg.gauge("engine.compactions", Scope::Machine),
            stale_opdone: reg.counter("sched.stale_opdone", Scope::PerCore),
            stale_timeslice: reg.counter("sched.stale_timeslice", Scope::PerNode),
            coalesced_ops: reg.gauge("engine.coalesced_ops", Scope::Machine),
            fastforward_cycles: reg.gauge("engine.fastforward_cycles", Scope::Machine),
            batched_packets: reg.gauge("engine.batched_packets", Scope::Machine),
            ras_events: reg.counter("ras.events", Scope::PerNode),
            ciod_retries: reg.counter("ciod.retries", Scope::PerNode),
            ciod_backoff_cycles: reg.counter("ciod.backoff_cycles", Scope::PerNode),
            torus_dropped_pkts: reg.counter("torus.dropped_pkts", Scope::PerNode),
            coll_dropped_pkts: reg.counter("coll.dropped_pkts", Scope::PerNode),
        }
    }
}

/// The per-machine telemetry facade carried by `SimCore`. All recording
/// methods are no-ops when disabled; hooks stay in place permanently
/// and cost one predictable branch.
pub struct Telemetry {
    enabled: bool,
    pub metrics: MetricsRegistry,
    pub ids: WellKnownIds,
    events: Vec<Tracepoint>,
    capacity: usize,
    dropped: u64,
}

impl Telemetry {
    /// The no-op telemetry every machine gets unless configured
    /// otherwise (`MachineConfig::with_telemetry`).
    pub fn disabled() -> Telemetry {
        let mut metrics = MetricsRegistry::new(1, 1);
        let ids = WellKnownIds::register(&mut metrics);
        Telemetry {
            enabled: false,
            metrics,
            ids,
            events: Vec::new(),
            capacity: 0,
            dropped: 0,
        }
    }

    /// Enabled telemetry for a machine shape, with the standard metric
    /// catalog registered and a bounded tracepoint buffer preallocated
    /// (recording past `capacity` counts drops instead of reallocating).
    pub fn standard(nodes: u32, cores_per_node: u32, capacity: usize) -> Telemetry {
        let mut metrics = MetricsRegistry::new(nodes, cores_per_node);
        let ids = WellKnownIds::register(&mut metrics);
        Telemetry {
            enabled: true,
            metrics,
            ids,
            events: Vec::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record a tracepoint. Alloc-free: the buffer was preallocated and
    /// overflow drops (counted) rather than growing.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn tp(
        &mut self,
        at: Cycle,
        node: u32,
        core: u32,
        kind: TpKind,
        name: &'static str,
        a: u64,
        b: u64,
    ) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.events.push(Tracepoint {
            at,
            node,
            core,
            kind,
            name,
            a,
            b,
        });
    }

    /// Increment a counter.
    #[inline]
    pub fn count(&mut self, id: MetricId, slot: Slot, v: u64) {
        if !self.enabled {
            return;
        }
        self.metrics.add(id, slot, v);
    }

    /// Record a histogram sample.
    #[inline]
    pub fn hist(&mut self, id: MetricId, slot: Slot, v: u64) {
        if !self.enabled {
            return;
        }
        self.metrics.record(id, slot, v);
    }

    /// Set a gauge.
    #[inline]
    pub fn gauge(&mut self, id: MetricId, slot: Slot, v: u64) {
        if !self.enabled {
            return;
        }
        self.metrics.set(id, slot, v);
    }

    /// Recorded tracepoints, in record order.
    pub fn events(&self) -> &[Tracepoint] {
        &self.events
    }

    /// Tracepoints dropped because the buffer was full.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Move the metrics registry out (bench post-processing), leaving an
    /// empty one behind.
    pub fn take_metrics(&mut self) -> MetricsRegistry {
        let nodes = self.metrics.nodes();
        let cpn = self.metrics.cores_per_node();
        let mut fresh = MetricsRegistry::new(nodes, cpn);
        self.ids = WellKnownIds::register(&mut fresh);
        std::mem::replace(&mut self.metrics, fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = Telemetry::disabled();
        t.count(t.ids.syscalls, Slot::Core(0), 1);
        t.hist(t.ids.noise_cycles, Slot::Core(0), 39);
        t.tp(5, 0, 0, TpKind::Noise, "x", 0, 0);
        assert!(!t.enabled());
        assert!(t.events().is_empty());
        assert_eq!(t.metrics.value("syscall.count", Slot::Core(0)), Some(0));
        assert_eq!(t.dropped_events(), 0);
    }

    #[test]
    fn standard_records_and_bounds() {
        let mut t = Telemetry::standard(1, 4, 2);
        t.count(t.ids.syscalls, Slot::Core(1), 3);
        t.hist(t.ids.noise_cycles, Slot::Core(1), 17);
        for i in 0..5 {
            t.tp(i, 0, 1, TpKind::Noise, "n", i, 0);
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped_events(), 3);
        assert_eq!(t.metrics.value("syscall.count", Slot::Core(1)), Some(3));
        assert_eq!(
            t.metrics.hist("noise.cycles", Slot::Core(1)).unwrap().max(),
            17
        );
    }

    #[test]
    fn coverage_digest_separates_counter_vectors() {
        let mut a = Telemetry::standard(1, 4, 8);
        let mut b = Telemetry::standard(1, 4, 8);
        let base_a = coverage_digest(&a.metrics, 0);
        assert_eq!(
            base_a,
            coverage_digest(&b.metrics, 0),
            "identical registries hash identically"
        );
        a.count(a.ids.syscalls, Slot::Core(0), 1);
        b.count(b.ids.preempts, Slot::Core(0), 1);
        let da = coverage_digest(&a.metrics, 0);
        let db = coverage_digest(&b.metrics, 0);
        assert_ne!(da, db, "different counters, different digests");
        assert_ne!(da, base_a);
        // The trace-digest prefix feeds in too.
        assert_ne!(
            coverage_digest(&a.metrics, 0xdead_beef_0000_0000),
            coverage_digest(&a.metrics, 0)
        );
    }

    #[test]
    fn take_metrics_leaves_working_registry() {
        let mut t = Telemetry::standard(1, 4, 8);
        t.count(t.ids.syscalls, Slot::Core(0), 2);
        let taken = t.take_metrics();
        assert_eq!(taken.value("syscall.count", Slot::Core(0)), Some(2));
        // The replacement registry is fresh but fully registered.
        t.count(t.ids.syscalls, Slot::Core(0), 1);
        assert_eq!(t.metrics.value("syscall.count", Slot::Core(0)), Some(1));
    }
}
