//! Deterministic cycle-accounting profiler and crash flight recorder.
//!
//! The profiler attributes simulated cycles and event counts to
//! coarse subsystems ([`Domain`]) and keeps per-node heat counters
//! (events, cycles, messages, live/peak in-flight messages — the
//! memory-accounting groundwork for rack-scale node layouts). It obeys
//! the same determinism-neutrality contract as the rest of
//! `bgsim::telemetry` — by construction, not by luck:
//!
//! * every recorded value is a simulated-cycle count or a plain count;
//! * recording appends to profiler-private storage and never reads an
//!   RNG stream, never schedules an event, and never mutates thread or
//!   engine state;
//! * all storage is allocated at construction, so the hot-path cost of
//!   a span is an array index and two adds — and when the profiler is
//!   disabled, a single branch.
//!
//! The same run with the profiler enabled and disabled therefore
//! produces bit-identical trace digests, and the sim-side counters are
//! identical across `--threads 1` vs. N (`ProfileSnapshot::merge` is a
//! commutative sum, so shard completion order cannot leak in).
//!
//! Each domain also feeds a bounded [`FlightRing`] of recent spans —
//! the crash flight recorder. On panic, invariant failure, or bgcheck
//! mismatch, [`Profiler::flight_dump`] renders the rings so the repro
//! artifact carries the last thing every subsystem did.

use crate::cycles::Cycle;

/// Cycle-accounting subsystems. `EngineHeap` and `FastPath` split op
/// retirement by which driver retired it (the heap pop vs. the
/// event-reduction fast path); the rest follow the tracepoint
/// categories.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Domain {
    EngineHeap,
    FastPath,
    Torus,
    Collective,
    Sched,
    Ciod,
    FaultRas,
}

/// Number of [`Domain`] variants (array sizing).
pub const DOMAIN_COUNT: usize = 7;

impl Domain {
    /// Every domain, in stable display/export order.
    pub const ALL: [Domain; DOMAIN_COUNT] = [
        Domain::EngineHeap,
        Domain::FastPath,
        Domain::Torus,
        Domain::Collective,
        Domain::Sched,
        Domain::Ciod,
        Domain::FaultRas,
    ];

    /// Stable snake_case label used in report keys and monitor JSON.
    pub fn label(self) -> &'static str {
        match self {
            Domain::EngineHeap => "engine_heap",
            Domain::FastPath => "fast_path",
            Domain::Torus => "torus",
            Domain::Collective => "collective",
            Domain::Sched => "sched",
            Domain::Ciod => "ciod",
            Domain::FaultRas => "fault_ras",
        }
    }

    #[inline]
    fn idx(self) -> usize {
        self as usize
    }
}

/// Per-domain accumulator: how many spans landed here and how many
/// simulated cycles they covered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DomainStats {
    pub events: u64,
    pub cycles: u64,
}

/// Per-node heat counters. `live_msgs`/`peak_live_msgs` track in-flight
/// messages addressed to the node — the peak is the node's high-water
/// message allocation, the number a rack-scale SoA layout must size for.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeHeat {
    pub events: u64,
    pub cycles: u64,
    pub messages: u64,
    pub live_msgs: u64,
    pub peak_live_msgs: u64,
}

/// One recorded span: a named slice of simulated cycles attributed to a
/// domain on a node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRec {
    pub at: Cycle,
    pub node: u32,
    pub name: &'static str,
    pub cycles: u64,
}

/// Bounded FIFO of recent spans for one domain. At capacity the oldest
/// entry is evicted (and counted) — record order is never reordered.
///
/// Stored as a flat overwrite ring (slot cursor instead of a deque):
/// the steady-state push on the hot retire path is one store and a
/// cursor bump, with no element shifting.
#[derive(Clone, Debug, Default)]
pub struct FlightRing {
    capacity: usize,
    dropped: u64,
    entries: Vec<SpanRec>,
    /// Index of the oldest retained entry once the ring has wrapped;
    /// equivalently the slot the next eviction overwrites.
    head: usize,
}

impl FlightRing {
    fn with_capacity(capacity: usize) -> FlightRing {
        FlightRing {
            capacity,
            dropped: 0,
            entries: Vec::with_capacity(capacity),
            head: 0,
        }
    }

    #[inline]
    fn push(&mut self, s: SpanRec) {
        if self.entries.len() < self.capacity {
            self.entries.push(s);
            return;
        }
        self.dropped += 1;
        if self.capacity == 0 {
            return;
        }
        self.entries[self.head] = s;
        self.head += 1;
        if self.head == self.capacity {
            self.head = 0;
        }
    }

    /// Retained spans, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &SpanRec> {
        let (older, newer) = self.entries.split_at(self.head);
        newer.iter().chain(older.iter())
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Spans evicted (or refused, at capacity 0) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// The per-machine profiler carried by `SimCore`. All recording methods
/// are no-ops when disabled; hooks stay in place permanently and cost
/// one predictable branch.
pub struct Profiler {
    enabled: bool,
    domains: [DomainStats; DOMAIN_COUNT],
    rings: [FlightRing; DOMAIN_COUNT],
    nodes: Vec<NodeHeat>,
}

impl Profiler {
    /// The no-op profiler (`MachineConfig::with_profiler(false)`).
    pub fn disabled() -> Profiler {
        Profiler {
            enabled: false,
            domains: [DomainStats::default(); DOMAIN_COUNT],
            rings: std::array::from_fn(|_| FlightRing::with_capacity(0)),
            nodes: Vec::new(),
        }
    }

    /// An enabled profiler for a machine shape, with `ring_capacity`
    /// flight-recorder slots per domain.
    pub fn standard(nodes: u32, ring_capacity: usize) -> Profiler {
        Profiler {
            enabled: true,
            domains: [DomainStats::default(); DOMAIN_COUNT],
            rings: std::array::from_fn(|_| FlightRing::with_capacity(ring_capacity)),
            nodes: vec![NodeHeat::default(); nodes as usize],
        }
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Heap bytes currently reserved: the per-node heat table plus the
    /// per-domain flight rings.
    pub fn resident_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<NodeHeat>()
            + self
                .rings
                .iter()
                .map(|r| r.entries.capacity() * std::mem::size_of::<SpanRec>())
                .sum::<usize>()
    }

    /// Attribute `cycles` simulated cycles at `at` on `node` to a
    /// domain, and append the span to the domain's flight ring.
    #[inline]
    pub fn span(&mut self, d: Domain, at: Cycle, node: u32, name: &'static str, cycles: u64) {
        if !self.enabled {
            return;
        }
        let ds = &mut self.domains[d.idx()];
        ds.events += 1;
        ds.cycles = ds.cycles.saturating_add(cycles);
        if let Some(h) = self.nodes.get_mut(node as usize) {
            h.events += 1;
            h.cycles = h.cycles.saturating_add(cycles);
        }
        self.rings[d.idx()].push(SpanRec {
            at,
            node,
            name,
            cycles,
        });
    }

    /// A message left `src` for `dst`: count it against the sender and
    /// raise the destination's live/peak in-flight gauges.
    #[inline]
    pub fn msg_enqueued(&mut self, src: u32, dst: u32) {
        if !self.enabled {
            return;
        }
        if let Some(h) = self.nodes.get_mut(src as usize) {
            h.messages += 1;
        }
        if let Some(h) = self.nodes.get_mut(dst as usize) {
            h.live_msgs += 1;
            h.peak_live_msgs = h.peak_live_msgs.max(h.live_msgs);
        }
    }

    /// A message addressed to `dst` was delivered or dropped.
    #[inline]
    pub fn msg_retired(&mut self, dst: u32) {
        if !self.enabled {
            return;
        }
        if let Some(h) = self.nodes.get_mut(dst as usize) {
            h.live_msgs = h.live_msgs.saturating_sub(1);
        }
    }

    /// Accumulated stats for one domain.
    pub fn domain(&self, d: Domain) -> DomainStats {
        self.domains[d.idx()]
    }

    /// Per-node heat counters (empty when disabled).
    pub fn node_heat(&self) -> &[NodeHeat] {
        &self.nodes
    }

    /// The flight ring for one domain.
    pub fn ring(&self, d: Domain) -> &FlightRing {
        &self.rings[d.idx()]
    }

    /// Copy the sim-side counters out for reporting/merging.
    pub fn snapshot(&self) -> ProfileSnapshot {
        ProfileSnapshot {
            enabled: self.enabled,
            domains: self.domains,
            nodes: self.nodes.clone(),
        }
    }

    /// Render the flight recorder for a crash/mismatch artifact: every
    /// domain's totals plus its most recent spans, oldest first.
    pub fn flight_dump(&self) -> String {
        if !self.enabled {
            return String::from("flight recorder: profiler disabled\n");
        }
        let mut out = String::from("=== flight recorder (most recent spans per domain) ===\n");
        for d in Domain::ALL {
            let ds = self.domain(d);
            let ring = self.ring(d);
            out.push_str(&format!(
                "[{}] events={} cycles={} retained={} evicted={}\n",
                d.label(),
                ds.events,
                ds.cycles,
                ring.len(),
                ring.dropped()
            ));
            for s in ring.entries() {
                out.push_str(&format!(
                    "  at={:<14} node={:<5} cycles={:<12} {}\n",
                    s.at, s.node, s.cycles, s.name
                ));
            }
        }
        out
    }
}

/// Sim-side profiler counters, detached from the machine. Merging is a
/// commutative sum (peak is a max), so folding shard snapshots in any
/// order produces identical totals — the `--threads 1` vs. N guarantee.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfileSnapshot {
    pub enabled: bool,
    pub domains: [DomainStats; DOMAIN_COUNT],
    pub nodes: Vec<NodeHeat>,
}

impl ProfileSnapshot {
    /// Fold another snapshot in: sums for flows, max for peaks.
    pub fn merge(&mut self, other: &ProfileSnapshot) {
        self.enabled |= other.enabled;
        for (a, b) in self.domains.iter_mut().zip(other.domains.iter()) {
            a.events += b.events;
            a.cycles = a.cycles.saturating_add(b.cycles);
        }
        if self.nodes.len() < other.nodes.len() {
            self.nodes.resize(other.nodes.len(), NodeHeat::default());
        }
        for (a, b) in self.nodes.iter_mut().zip(other.nodes.iter()) {
            a.events += b.events;
            a.cycles = a.cycles.saturating_add(b.cycles);
            a.messages += b.messages;
            a.live_msgs += b.live_msgs;
            a.peak_live_msgs = a.peak_live_msgs.max(b.peak_live_msgs);
        }
    }

    /// (label, stats) for every domain, in stable order.
    pub fn domains_labeled(&self) -> impl Iterator<Item = (&'static str, DomainStats)> + '_ {
        Domain::ALL
            .iter()
            .map(|d| (d.label(), self.domains[d.idx()]))
    }

    pub fn total_events(&self) -> u64 {
        self.domains.iter().map(|d| d.events).sum()
    }

    pub fn total_cycles(&self) -> u64 {
        self.domains
            .iter()
            .fold(0u64, |a, d| a.saturating_add(d.cycles))
    }

    /// Machine-wide message count (sum of per-node senders).
    pub fn total_messages(&self) -> u64 {
        self.nodes.iter().map(|n| n.messages).sum()
    }

    /// Highest in-flight message count any node saw.
    pub fn peak_live_msgs(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.peak_live_msgs)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = Profiler::disabled();
        p.span(Domain::Torus, 10, 0, "send", 100);
        p.msg_enqueued(0, 1);
        assert!(!p.enabled());
        assert_eq!(p.domain(Domain::Torus), DomainStats::default());
        assert!(p.node_heat().is_empty());
        assert!(p.ring(Domain::Torus).is_empty());
    }

    #[test]
    fn spans_accumulate_per_domain_and_node() {
        let mut p = Profiler::standard(2, 8);
        p.span(Domain::FastPath, 5, 0, "op_retire", 1000);
        p.span(Domain::FastPath, 9, 1, "op_retire", 500);
        p.span(Domain::Sched, 9, 1, "preempt", 0);
        let fp = p.domain(Domain::FastPath);
        assert_eq!((fp.events, fp.cycles), (2, 1500));
        assert_eq!(p.domain(Domain::Sched).events, 1);
        assert_eq!(p.node_heat()[0].cycles, 1000);
        assert_eq!(p.node_heat()[1].events, 2);
    }

    #[test]
    fn message_heat_tracks_live_and_peak() {
        let mut p = Profiler::standard(2, 4);
        p.msg_enqueued(0, 1);
        p.msg_enqueued(0, 1);
        p.msg_retired(1);
        p.msg_enqueued(1, 0);
        assert_eq!(p.node_heat()[0].messages, 2);
        assert_eq!(p.node_heat()[1].live_msgs, 1);
        assert_eq!(p.node_heat()[1].peak_live_msgs, 2);
        assert_eq!(p.node_heat()[0].live_msgs, 1);
        // Retire below zero saturates instead of wrapping.
        p.msg_retired(1);
        p.msg_retired(1);
        assert_eq!(p.node_heat()[1].live_msgs, 0);
    }

    /// The flight ring drops the *oldest* span at capacity and never
    /// reorders the survivors — the ISSUE's ring contract.
    #[test]
    fn flight_ring_drops_oldest_without_reordering() {
        let mut p = Profiler::standard(1, 3);
        for i in 0..5u64 {
            p.span(Domain::Ciod, i, 0, "fship", i * 10);
        }
        let ring = p.ring(Domain::Ciod);
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let ats: Vec<u64> = ring.entries().map(|s| s.at).collect();
        assert_eq!(ats, vec![2, 3, 4], "oldest evicted, order preserved");
        assert!(p.flight_dump().contains("[ciod] events=5"));
    }

    /// Merging shard snapshots is order-invariant: sums commute and
    /// peak-of-max equals max-of-peaks.
    #[test]
    fn snapshot_merge_is_commutative() {
        let mut a = Profiler::standard(2, 4);
        a.span(Domain::Torus, 1, 0, "send", 100);
        a.msg_enqueued(0, 1);
        let mut b = Profiler::standard(2, 4);
        b.span(Domain::Torus, 2, 1, "send", 300);
        b.span(Domain::Collective, 3, 0, "send", 50);
        b.msg_enqueued(1, 0);
        b.msg_enqueued(1, 0);

        let (sa, sb) = (a.snapshot(), b.snapshot());
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        assert_eq!(ab, ba);
        assert_eq!(ab.domains[Domain::Torus.idx()].cycles, 400);
        assert_eq!(ab.total_messages(), 3);
        assert_eq!(ab.peak_live_msgs(), 2);
    }
}
