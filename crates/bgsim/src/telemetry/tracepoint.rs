//! Tracepoints: typed, cycle-domain event records threaded through the
//! kernels, the function-ship path, and the messaging stack.
//!
//! A tracepoint is strictly observational — recording one never reads an
//! RNG stream and never mutates engine or thread state, so enabling
//! telemetry cannot change a run's trace digest or final cycle count.

use crate::cycles::Cycle;

/// The tracepoint taxonomy. `a`/`b` in [`Tracepoint`] are
/// kind-dependent operands (documented per variant).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TpKind {
    /// An op began executing; `a` = tid, `b` = cost in cycles.
    OpStart,
    /// Syscall entry; `a` = tid.
    SyscallEnter,
    /// Syscall completion; `a` = tid, `b` = cost in cycles.
    SyscallExit,
    /// Scheduler placed a thread on a free core; `a` = tid.
    SchedPick,
    /// Timeslice preemption; `a` = tid, `b` = remaining cycles saved.
    Preempt,
    /// Futex wait (block); `a` = tid, `b` = futex address.
    FutexWait,
    /// Futex wake; `a` = waker tid, `b` = number of threads woken.
    FutexWake,
    /// DAC guard-page hit; `a` = tid, `b` = faulting address.
    GuardFault,
    /// Demand-paging fault(s) serviced; `a` = tid, `b` = fault count.
    PageFault,
    /// Software TLB refill(s); `a` = tid, `b` = miss count.
    TlbRefill,
    /// Protection violation / unmapped access; `a` = tid, `b` = address.
    Segv,
    /// Injected hardware fault (e.g. L1 parity); `a` = fault kind.
    HwFault,
    /// A kernel daemon/noise source fired; `a` = cost in cycles.
    DaemonWake,
    /// Generic noise stretch on a running thread; `a` = tag, `b` = cycles.
    Noise,
    /// Inter-processor interrupt delivered; `a` = kind.
    Ipi,
    /// Function-ship request left the compute node; `a` = request id,
    /// `b` = marshaled bytes.
    FshipReq,
    /// Function-ship reply arrived back; `a` = request id,
    /// `b` = round-trip latency in cycles.
    FshipRep,
    /// Messaging protocol phase transition; `a` = peer rank or message
    /// id, `b` = bytes.
    MsgPhase,
    /// Thread exited; `a` = tid, `b` = exit code (as u64).
    ThreadExit,
}

impl TpKind {
    /// Category label for trace viewers.
    pub fn category(self) -> &'static str {
        match self {
            TpKind::OpStart => "op",
            TpKind::SyscallEnter | TpKind::SyscallExit => "syscall",
            TpKind::SchedPick | TpKind::Preempt => "sched",
            TpKind::FutexWait | TpKind::FutexWake => "futex",
            TpKind::GuardFault
            | TpKind::PageFault
            | TpKind::TlbRefill
            | TpKind::Segv
            | TpKind::HwFault => "fault",
            TpKind::DaemonWake | TpKind::Noise => "noise",
            TpKind::Ipi => "irq",
            TpKind::FshipReq | TpKind::FshipRep => "fship",
            TpKind::MsgPhase => "dcmf",
            TpKind::ThreadExit => "thread",
        }
    }
}

/// One recorded tracepoint, entirely in the cycle domain.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Tracepoint {
    pub at: Cycle,
    pub node: u32,
    /// Global core id; u32::MAX when the event has no core affinity
    /// (e.g. a node-level message phase).
    pub core: u32,
    pub kind: TpKind,
    /// Static name: syscall name, noise-source name, protocol phase.
    pub name: &'static str,
    pub a: u64,
    pub b: u64,
}

/// Core value for events without core affinity.
pub const NO_CORE: u32 = u32::MAX;
