//! First-divergence reporter: given two traces recorded with entries
//! kept, find the earliest differing [`TraceEntry`] and show it with
//! surrounding context.
//!
//! This turns an opaque "digests differ" into an actionable location —
//! the cycle, event type, and neighborhood where two supposedly
//! identical runs first part ways (the debugging workflow §III's
//! reproducible-reset methodology exists to enable).

use crate::trace::{Trace, TraceEntry};

/// The earliest difference between two traces.
#[derive(Clone, Debug)]
pub struct DivergenceReport {
    /// Absolute index of the first differing entry (counting every
    /// recorded event, including any that fell out of a bounded ring).
    pub index: u64,
    /// The entry on each side; `None` if that stream ended first.
    pub a: Option<TraceEntry>,
    pub b: Option<TraceEntry>,
    /// Up to `context` matching entries immediately preceding the
    /// divergence (taken from stream A; they are identical in B).
    pub context: Vec<TraceEntry>,
}

impl DivergenceReport {
    /// Human-readable rendering for bench/debug output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("first divergence at event index {}\n", self.index));
        for e in &self.context {
            out.push_str(&format!("    = {:>12}  {:?}\n", e.at, e.what));
        }
        match &self.a {
            Some(e) => out.push_str(&format!("  A > {:>12}  {:?}\n", e.at, e.what)),
            None => out.push_str("  A > <stream ended>\n"),
        }
        match &self.b {
            Some(e) => out.push_str(&format!("  B > {:>12}  {:?}\n", e.at, e.what)),
            None => out.push_str("  B > <stream ended>\n"),
        }
        out
    }
}

/// Compare two traces entry-by-entry and report the first difference,
/// with up to `context` preceding entries. Returns `None` if the
/// overlapping recorded ranges are identical and equally long.
///
/// Both traces should have been recorded with entries kept
/// (`trace_events` or a bounded ring). Bounded rings are aligned by
/// absolute index; only the overlap both sides still hold is compared,
/// so a divergence older than the ring capacity cannot be localized —
/// re-run with a larger capacity.
pub fn first_divergence(a: &Trace, b: &Trace, context: usize) -> Option<DivergenceReport> {
    // Align by absolute index: entry i of a trace's buffer is absolute
    // index dropped + i.
    let start = a.dropped().max(b.dropped());
    let a_off = (start - a.dropped()) as usize;
    let b_off = (start - b.dropped()) as usize;
    let a_len = a.entries().len().saturating_sub(a_off);
    let b_len = b.entries().len().saturating_sub(b_off);
    let common = a_len.min(b_len);
    for i in 0..common {
        let ea = &a.entries()[a_off + i];
        let eb = &b.entries()[b_off + i];
        if ea != eb {
            let ctx_from = i.saturating_sub(context);
            return Some(DivergenceReport {
                index: start + i as u64,
                a: Some(ea.clone()),
                b: Some(eb.clone()),
                context: (ctx_from..i)
                    .map(|j| a.entries()[a_off + j].clone())
                    .collect(),
            });
        }
    }
    if a_len == b_len {
        return None;
    }
    // One stream is a strict prefix of the other: the divergence is the
    // first entry past the shorter one.
    let i = common;
    let ctx_from = i.saturating_sub(context);
    Some(DivergenceReport {
        index: start + i as u64,
        a: a.entries().get(a_off + i).cloned(),
        b: b.entries().get(b_off + i).cloned(),
        context: (ctx_from..i)
            .map(|j| a.entries()[a_off + j].clone())
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    fn noise(node: u32, cycles: u64) -> TraceEvent {
        TraceEvent::Noise {
            node,
            tag: 0,
            cycles,
        }
    }

    #[test]
    fn identical_traces_no_divergence() {
        let mut a = Trace::new(true);
        let mut b = Trace::new(true);
        for i in 0..50 {
            a.record(i, noise(0, i));
            b.record(i, noise(0, i));
        }
        assert!(first_divergence(&a, &b, 3).is_none());
    }

    #[test]
    fn single_differing_event_is_located() {
        let mut a = Trace::new(true);
        let mut b = Trace::new(true);
        for i in 0..50 {
            a.record(i, noise(0, i));
            // Run B has one extra-long noise event at index 20.
            b.record(i, noise(0, if i == 20 { 9999 } else { i }));
        }
        let d = first_divergence(&a, &b, 3).expect("must diverge");
        assert_eq!(d.index, 20);
        assert_eq!(d.a.unwrap().what, noise(0, 20));
        assert_eq!(d.b.unwrap().what, noise(0, 9999));
        assert_eq!(d.context.len(), 3);
        assert_eq!(d.context[2].what, noise(0, 19));
    }

    #[test]
    fn prefix_stream_reports_end() {
        let mut a = Trace::new(true);
        let mut b = Trace::new(true);
        for i in 0..10 {
            a.record(i, noise(0, i));
            if i < 8 {
                b.record(i, noise(0, i));
            }
        }
        let d = first_divergence(&a, &b, 2).expect("must diverge");
        assert_eq!(d.index, 8);
        assert!(d.a.is_some() && d.b.is_none());
    }

    #[test]
    fn ring_buffers_align_by_absolute_index() {
        // A keeps everything; B is a ring that dropped its prefix. The
        // overlap matches except one event.
        let mut a = Trace::new(true);
        let mut b = Trace::with_capacity(16);
        for i in 0..64 {
            a.record(i, noise(0, i));
            b.record(i, noise(0, if i == 60 { 1234 } else { i }));
        }
        assert_eq!(b.dropped(), 48);
        let d = first_divergence(&a, &b, 2).expect("must diverge");
        assert_eq!(d.index, 60);
        assert_eq!(d.b.as_ref().unwrap().what, noise(0, 1234));
        let r = d.render();
        assert!(r.contains("index 60"));
        assert!(r.contains("A >"));
    }
}
