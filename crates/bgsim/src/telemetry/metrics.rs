//! The metrics registry: named counters, gauges, and log2-bucketed
//! cycle histograms keyed by (node, core) slots.
//!
//! All storage is allocated at registration time, so recording is
//! alloc-free: a hook inside the simulator hot path bumps a `u64` in a
//! preallocated vector and can never perturb simulated timing. Values
//! live in the cycle domain (or are plain counts) — never wall clock —
//! which is what keeps telemetry determinism-neutral by construction.

/// How a metric is replicated across the machine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scope {
    /// One value for the whole machine.
    Machine,
    /// One value per node.
    PerNode,
    /// One value per global core (node = core / cores_per_node).
    PerCore,
}

impl Scope {
    pub fn as_str(self) -> &'static str {
        match self {
            Scope::Machine => "machine",
            Scope::PerNode => "per_node",
            Scope::PerCore => "per_core",
        }
    }
}

/// Where a recording lands. A `Slot` finer than the metric's [`Scope`]
/// is folded (a `Core` slot recorded into a `PerNode` metric lands on
/// the core's node); a coarser slot lands on the scope's first index.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Slot {
    Machine,
    Node(u32),
    Core(u32),
}

/// Handle returned by registration; recording through an id is an
/// index operation, no name lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MetricId(pub(crate) usize);

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A log2-bucketed histogram of u64 samples (cycles, bytes, counts)
/// with exact count/sum/min/max so derived tables (e.g. the Fig. 5–7
/// max-delta column) need no bucket approximation.
#[derive(Clone, Debug)]
pub struct Hist {
    count: u64,
    sum: u64,
    lo: u64,
    hi: u64,
    buckets: [u64; 64],
}

impl Default for Hist {
    fn default() -> Hist {
        Hist {
            count: 0,
            sum: 0,
            lo: u64::MAX,
            hi: 0,
            buckets: [0; 64],
        }
    }
}

impl Hist {
    /// Bucket index for a value: 0 holds only zeros, bucket `i` holds
    /// values in `[2^(i-1), 2^i)`, saturating at 63.
    pub fn bucket_of(v: u64) -> usize {
        match v {
            0 => 0,
            _ => ((v.ilog2() as usize) + 1).min(63),
        }
    }

    pub fn record(&mut self, v: u64) {
        // Saturating throughout: a pathological run (or a fuzzer) must
        // clip telemetry at u64::MAX, never wrap or abort the run.
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
        if v < self.lo {
            self.lo = v;
        }
        if v > self.hi {
            self.hi = v;
        }
        let b = &mut self.buckets[Self::bucket_of(v)];
        *b = b.saturating_add(1);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.lo
        }
    }

    pub fn max(&self) -> u64 {
        self.hi
    }

    /// Exact spread (max − min): the FWQ "delta" statistic.
    pub fn delta(&self) -> u64 {
        self.max().saturating_sub(self.min())
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as (index, count) pairs.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
    }
}

struct Metric {
    name: String,
    kind: MetricKind,
    scope: Scope,
    vals: Vec<u64>,
    hists: Vec<Hist>,
}

/// A read-only view of one metric for exporters.
pub struct MetricView<'a> {
    pub name: &'a str,
    pub kind: MetricKind,
    pub scope: Scope,
    pub vals: &'a [u64],
    pub hists: &'a [Hist],
}

/// The boot-time-allocated registry. Slot counts come from the machine
/// shape; registering after boot is allowed (bench post-processing) but
/// hooks inside the simulation only ever touch preallocated storage.
pub struct MetricsRegistry {
    nodes: u32,
    cores_per_node: u32,
    metrics: Vec<Metric>,
}

impl MetricsRegistry {
    pub fn new(nodes: u32, cores_per_node: u32) -> MetricsRegistry {
        MetricsRegistry {
            nodes: nodes.max(1),
            cores_per_node: cores_per_node.max(1),
            metrics: Vec::new(),
        }
    }

    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    pub fn cores_per_node(&self) -> u32 {
        self.cores_per_node
    }

    fn slots(&self, scope: Scope) -> usize {
        match scope {
            Scope::Machine => 1,
            Scope::PerNode => self.nodes as usize,
            Scope::PerCore => (self.nodes * self.cores_per_node) as usize,
        }
    }

    fn register(&mut self, name: &str, kind: MetricKind, scope: Scope) -> MetricId {
        if let Some(i) = self.metrics.iter().position(|m| m.name == name) {
            let m = &self.metrics[i];
            assert!(
                m.kind == kind && m.scope == scope,
                "metric {name} re-registered with different kind/scope"
            );
            return MetricId(i);
        }
        let n = self.slots(scope);
        let (vals, hists) = match kind {
            MetricKind::Histogram => (Vec::new(), vec![Hist::default(); n]),
            _ => (vec![0u64; n], Vec::new()),
        };
        self.metrics.push(Metric {
            name: name.to_string(),
            kind,
            scope,
            vals,
            hists,
        });
        MetricId(self.metrics.len() - 1)
    }

    pub fn counter(&mut self, name: &str, scope: Scope) -> MetricId {
        self.register(name, MetricKind::Counter, scope)
    }

    pub fn gauge(&mut self, name: &str, scope: Scope) -> MetricId {
        self.register(name, MetricKind::Gauge, scope)
    }

    pub fn histogram(&mut self, name: &str, scope: Scope) -> MetricId {
        self.register(name, MetricKind::Histogram, scope)
    }

    fn slot_index(&self, scope: Scope, slot: Slot) -> usize {
        let i = match scope {
            Scope::Machine => 0,
            Scope::PerNode => match slot {
                Slot::Machine => 0,
                Slot::Node(n) => n as usize,
                Slot::Core(c) => (c / self.cores_per_node) as usize,
            },
            Scope::PerCore => match slot {
                Slot::Machine => 0,
                Slot::Node(n) => (n * self.cores_per_node) as usize,
                Slot::Core(c) => c as usize,
            },
        };
        debug_assert!(i < self.slots(scope), "slot {slot:?} out of range");
        i
    }

    /// Increment a counter.
    #[inline]
    pub fn add(&mut self, id: MetricId, slot: Slot, v: u64) {
        let m = &mut self.metrics[id.0];
        let i = match m.scope {
            Scope::Machine => 0,
            Scope::PerNode => match slot {
                Slot::Machine => 0,
                Slot::Node(n) => n as usize,
                Slot::Core(c) => (c / self.cores_per_node) as usize,
            },
            Scope::PerCore => match slot {
                Slot::Machine => 0,
                Slot::Node(n) => (n * self.cores_per_node) as usize,
                Slot::Core(c) => c as usize,
            },
        };
        // Counters saturate rather than wrap: a wrapped counter reads
        // as a tiny value and silently breaks downstream sanity checks.
        m.vals[i] = m.vals[i].saturating_add(v);
    }

    /// Set a gauge to an absolute value.
    #[inline]
    pub fn set(&mut self, id: MetricId, slot: Slot, v: u64) {
        let i = self.slot_index(self.metrics[id.0].scope, slot);
        self.metrics[id.0].vals[i] = v;
    }

    /// Record one histogram sample.
    #[inline]
    pub fn record(&mut self, id: MetricId, slot: Slot, v: u64) {
        let i = self.slot_index(self.metrics[id.0].scope, slot);
        self.metrics[id.0].hists[i].record(v);
    }

    /// Human-readable slot label for export (`machine`, `node3`,
    /// `core5`; a core's node is `core / cores_per_node`).
    pub fn slot_label(&self, scope: Scope, i: usize) -> String {
        match scope {
            Scope::Machine => "machine".to_string(),
            Scope::PerNode => format!("node{i}"),
            Scope::PerCore => format!("core{i}"),
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = MetricView<'_>> {
        self.metrics.iter().map(|m| MetricView {
            name: &m.name,
            kind: m.kind,
            scope: m.scope,
            vals: &m.vals,
            hists: &m.hists,
        })
    }

    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Current value of a counter or gauge by name.
    pub fn value(&self, name: &str, slot: Slot) -> Option<u64> {
        let m = self.metrics.iter().find(|m| m.name == name)?;
        if m.kind == MetricKind::Histogram {
            return None;
        }
        Some(m.vals[self.slot_index(m.scope, slot)])
    }

    /// A histogram by name.
    pub fn hist(&self, name: &str, slot: Slot) -> Option<&Hist> {
        let m = self.metrics.iter().find(|m| m.name == name)?;
        if m.kind != MetricKind::Histogram {
            return None;
        }
        Some(&m.hists[self.slot_index(m.scope, slot)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_fold_slots_by_scope() {
        let mut r = MetricsRegistry::new(2, 4);
        let c = r.counter("x", Scope::PerNode);
        r.add(c, Slot::Core(5), 1); // core 5 = node 1
        r.add(c, Slot::Node(1), 2);
        r.add(c, Slot::Node(0), 7);
        assert_eq!(r.value("x", Slot::Node(1)), Some(3));
        assert_eq!(r.value("x", Slot::Node(0)), Some(7));
    }

    #[test]
    fn hist_buckets_and_exact_extrema() {
        let mut h = Hist::default();
        for v in [0u64, 1, 2, 3, 700, 658_958] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 658_958);
        assert_eq!(h.delta(), 658_958);
        assert_eq!(Hist::bucket_of(0), 0);
        assert_eq!(Hist::bucket_of(1), 1);
        assert_eq!(Hist::bucket_of(2), 2);
        assert_eq!(Hist::bucket_of(3), 2);
        assert_eq!(Hist::bucket_of(4), 3);
        assert_eq!(Hist::bucket_of(u64::MAX), 63);
        // Empty hist reports min 0, not u64::MAX.
        assert_eq!(Hist::default().min(), 0);
    }

    #[test]
    fn counters_and_hists_saturate_instead_of_wrapping() {
        let mut r = MetricsRegistry::new(1, 1);
        let c = r.counter("sat", Scope::Machine);
        r.add(c, Slot::Machine, u64::MAX - 1);
        r.add(c, Slot::Machine, 5);
        assert_eq!(r.value("sat", Slot::Machine), Some(u64::MAX));
        let mut h = Hist::default();
        h.count = u64::MAX;
        h.buckets[0] = u64::MAX;
        h.record(0);
        assert_eq!(h.count(), u64::MAX);
        assert_eq!(h.nonzero_buckets().next(), Some((0, u64::MAX)));
    }

    #[test]
    fn reregistration_returns_same_id() {
        let mut r = MetricsRegistry::new(1, 4);
        let a = r.counter("dup", Scope::Machine);
        let b = r.counter("dup", Scope::Machine);
        assert_eq!(a, b);
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "different kind/scope")]
    fn reregistration_with_new_kind_panics() {
        let mut r = MetricsRegistry::new(1, 4);
        r.counter("dup", Scope::Machine);
        r.histogram("dup", Scope::Machine);
    }

    #[test]
    fn gauge_set_overwrites() {
        let mut r = MetricsRegistry::new(1, 4);
        let g = r.gauge("g", Scope::PerCore);
        r.set(g, Slot::Core(2), 10);
        r.set(g, Slot::Core(2), 4);
        assert_eq!(r.value("g", Slot::Core(2)), Some(4));
    }
}
