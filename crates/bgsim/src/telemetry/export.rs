//! Exporters: Chrome/Perfetto trace-event JSON for timeline inspection
//! and gem5-style flat `stats.txt` / JSON dumps of the metrics registry.
//!
//! All output is hand-rolled JSON (the workspace carries no serde); the
//! shapes are small and fixed, so escaping strings is the only subtlety.

use super::metrics::{MetricKind, MetricView, MetricsRegistry};
use super::tracepoint::{TpKind, Tracepoint, NO_CORE};

/// Registry views in deterministic (name-sorted) order. Registration
/// order depends on code paths (bench post-processing registers extra
/// metrics after boot), so exporters sort by name to keep CI diffs of
/// two dumps byte-stable.
fn sorted_views(reg: &MetricsRegistry) -> Vec<MetricView<'_>> {
    let mut views: Vec<MetricView<'_>> = reg.iter().collect();
    views.sort_by(|a, b| a.name.cmp(b.name));
    views
}

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render tracepoints as a Chrome trace-event JSON document, viewable in
/// `chrome://tracing` or [ui.perfetto.dev](https://ui.perfetto.dev).
///
/// Mapping: pid = node, tid = core, ts/dur = simulated cycles (the
/// viewer labels them as microseconds; at 850 MHz divide by 850 for real
/// microseconds). Ops render as complete ("X") slices so preemption and
/// kills cannot unbalance begin/end pairs; function-ship request/reply
/// pairs render as async ("b"/"e") spans keyed by request id; everything
/// else is an instant ("i").
pub fn chrome_trace_json(events: &[Tracepoint]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 128);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":\"cycles@850MHz\"},");
    out.push_str("\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let tid = if e.core == NO_CORE { 9999 } else { e.core };
        let common = format!(
            "\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{}",
            json_escape(e.name),
            e.kind.category(),
            e.node,
            tid,
            e.at
        );
        match e.kind {
            TpKind::OpStart => {
                out.push_str(&format!(
                    "{{{common},\"ph\":\"X\",\"dur\":{},\"args\":{{\"tid\":{}}}}}",
                    e.b, e.a
                ));
            }
            TpKind::FshipReq => {
                out.push_str(&format!(
                    "{{{common},\"ph\":\"b\",\"id\":{},\"args\":{{\"bytes\":{}}}}}",
                    e.a, e.b
                ));
            }
            TpKind::FshipRep => {
                out.push_str(&format!(
                    "{{{common},\"ph\":\"e\",\"id\":{},\"args\":{{\"latency_cycles\":{}}}}}",
                    e.a, e.b
                ));
            }
            _ => {
                out.push_str(&format!(
                    "{{{common},\"ph\":\"i\",\"s\":\"t\",\"args\":{{\"a\":{},\"b\":{}}}}}",
                    e.a, e.b
                ));
            }
        }
    }
    out.push_str("]}");
    out
}

/// Render the registry as a gem5-style flat stats text dump: one
/// `name.slot  value` line per scalar, histogram sub-statistics spelled
/// out (`.count`, `.sum`, `.min`, `.max`, `.mean`, non-empty log2
/// buckets as `.bucket<i>` covering `[2^(i-1), 2^i)`). Metrics are
/// emitted in name order so two dumps diff byte-stably.
pub fn stats_txt(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    out.push_str("---------- Begin Simulation Statistics ----------\n");
    for m in sorted_views(reg) {
        match m.kind {
            MetricKind::Histogram => {
                for (i, h) in m.hists.iter().enumerate() {
                    if h.count() == 0 {
                        continue;
                    }
                    let slot = reg.slot_label(m.scope, i);
                    let base = format!("{}.{}", m.name, slot);
                    out.push_str(&format!(
                        "{:<58} {:>16}\n",
                        format!("{base}.count"),
                        h.count()
                    ));
                    out.push_str(&format!("{:<58} {:>16}\n", format!("{base}.sum"), h.sum()));
                    out.push_str(&format!("{:<58} {:>16}\n", format!("{base}.min"), h.min()));
                    out.push_str(&format!("{:<58} {:>16}\n", format!("{base}.max"), h.max()));
                    out.push_str(&format!(
                        "{:<58} {:>16.2}\n",
                        format!("{base}.mean"),
                        h.mean()
                    ));
                    for (b, c) in h.nonzero_buckets() {
                        out.push_str(&format!("{:<58} {:>16}\n", format!("{base}.bucket{b}"), c));
                    }
                }
            }
            _ => {
                for (i, v) in m.vals.iter().enumerate() {
                    if *v == 0 {
                        continue;
                    }
                    let slot = reg.slot_label(m.scope, i);
                    out.push_str(&format!(
                        "{:<58} {:>16}\n",
                        format!("{}.{}", m.name, slot),
                        v
                    ));
                }
            }
        }
    }
    out.push_str("---------- End Simulation Statistics   ----------\n");
    out
}

/// Render the registry as a JSON object: metric name → `{kind, scope,
/// values}` where `values` maps slot labels to scalars or histogram
/// objects (`{count, sum, min, max, mean, buckets: {i: count}}`).
/// Zero-valued slots are elided to keep dumps proportional to activity.
/// Metrics are emitted in name order so two dumps diff byte-stably.
pub fn stats_json(reg: &MetricsRegistry) -> String {
    let mut out = String::from("{");
    let mut first_metric = true;
    for m in sorted_views(reg) {
        if !first_metric {
            out.push(',');
        }
        first_metric = false;
        out.push_str(&format!(
            "\"{}\":{{\"kind\":\"{}\",\"scope\":\"{}\",\"values\":{{",
            json_escape(m.name),
            m.kind.as_str(),
            m.scope.as_str()
        ));
        let mut first_slot = true;
        match m.kind {
            MetricKind::Histogram => {
                for (i, h) in m.hists.iter().enumerate() {
                    if h.count() == 0 {
                        continue;
                    }
                    if !first_slot {
                        out.push(',');
                    }
                    first_slot = false;
                    out.push_str(&format!(
                        "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.3},\"buckets\":{{",
                        reg.slot_label(m.scope, i),
                        h.count(),
                        h.sum(),
                        h.min(),
                        h.max(),
                        h.mean()
                    ));
                    let mut first_b = true;
                    for (b, c) in h.nonzero_buckets() {
                        if !first_b {
                            out.push(',');
                        }
                        first_b = false;
                        out.push_str(&format!("\"{b}\":{c}"));
                    }
                    out.push_str("}}");
                }
            }
            _ => {
                for (i, v) in m.vals.iter().enumerate() {
                    if *v == 0 {
                        continue;
                    }
                    if !first_slot {
                        out.push(',');
                    }
                    first_slot = false;
                    out.push_str(&format!("\"{}\":{}", reg.slot_label(m.scope, i), v));
                }
            }
        }
        out.push_str("}}");
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::super::metrics::{Scope, Slot};
    use super::*;

    #[test]
    fn escape_handles_quotes_and_control() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn chrome_trace_shapes() {
        let events = [
            Tracepoint {
                at: 100,
                node: 0,
                core: 1,
                kind: TpKind::OpStart,
                name: "compute",
                a: 3,
                b: 500,
            },
            Tracepoint {
                at: 200,
                node: 0,
                core: 0,
                kind: TpKind::FshipReq,
                name: "write",
                a: 42,
                b: 96,
            },
            Tracepoint {
                at: 900,
                node: 0,
                core: 0,
                kind: TpKind::FshipRep,
                name: "write",
                a: 42,
                b: 700,
            },
            Tracepoint {
                at: 950,
                node: 0,
                core: 2,
                kind: TpKind::Noise,
                name: "sshd",
                a: 1,
                b: 330,
            },
        ];
        let j = chrome_trace_json(&events);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"ph\":\"X\"") && j.contains("\"dur\":500"));
        assert!(j.contains("\"ph\":\"b\"") && j.contains("\"ph\":\"e\""));
        assert!(j.contains("\"ph\":\"i\""));
        assert!(j.contains("\"cat\":\"noise\""));
    }

    #[test]
    fn stats_dumps_elide_zero_slots() {
        let mut r = MetricsRegistry::new(1, 4);
        let c = r.counter("syscall.count", Scope::PerCore);
        let h = r.histogram("noise.cycles", Scope::PerCore);
        r.add(c, Slot::Core(2), 5);
        r.record(h, Slot::Core(2), 39);
        let txt = stats_txt(&r);
        assert!(txt.contains("syscall.count.core2"));
        assert!(!txt.contains("core0"));
        assert!(txt.contains("noise.cycles.core2.max"));
        let json = stats_json(&r);
        assert!(json.contains("\"core2\":5"));
        assert!(json.contains("\"max\":39"));
        assert!(!json.contains("core1"));
    }
}
