//! Reusable scripted workloads for tests and examples.

use crate::machine::{WlEnv, Workload};
use crate::op::Op;

/// A workload that yields a fixed vector of ops, then `End`.
pub struct ScriptWorkload {
    ops: Vec<Op>,
    i: usize,
    label: String,
}

impl ScriptWorkload {
    pub fn new(ops: Vec<Op>) -> ScriptWorkload {
        ScriptWorkload {
            ops,
            i: 0,
            label: "script".to_string(),
        }
    }

    pub fn labeled(ops: Vec<Op>, label: &str) -> ScriptWorkload {
        ScriptWorkload {
            ops,
            i: 0,
            label: label.to_string(),
        }
    }
}

impl Workload for ScriptWorkload {
    fn next(&mut self, _env: &mut WlEnv<'_>) -> Op {
        if self.i >= self.ops.len() {
            return Op::End;
        }
        let op = std::mem::replace(&mut self.ops[self.i], Op::End);
        self.i += 1;
        op
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// A workload driven by a closure — full access to the environment
/// (previous results, memory, signals) at each op boundary.
pub struct FnWorkload<F: FnMut(&mut WlEnv<'_>) -> Op> {
    f: F,
}

impl<F: FnMut(&mut WlEnv<'_>) -> Op> FnWorkload<F> {
    pub fn new(f: F) -> FnWorkload<F> {
        FnWorkload { f }
    }
}

impl<F: FnMut(&mut WlEnv<'_>) -> Op> Workload for FnWorkload<F> {
    fn next(&mut self, env: &mut WlEnv<'_>) -> Op {
        (self.f)(env)
    }

    fn label(&self) -> &str {
        "fn-workload"
    }
}

/// Convenience constructor: a boxed closure workload.
pub fn wl<F: FnMut(&mut WlEnv<'_>) -> Op + 'static>(f: F) -> Box<dyn Workload> {
    Box::new(FnWorkload::new(f))
}

/// Convenience constructor: a boxed script workload.
pub fn script(ops: Vec<Op>) -> Box<dyn Workload> {
    Box::new(ScriptWorkload::new(ops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ade::{AdeKernel, FixedLatencyComm};
    use crate::machine::Machine;
    use crate::MachineConfig;
    use sysabi::{AppImage, JobSpec, NodeMode, Rank};

    #[test]
    fn fn_workload_counts_down() {
        let mut m = Machine::new(
            MachineConfig::single_node(),
            Box::new(AdeKernel::new()),
            Box::new(FixedLatencyComm::new()),
        );
        m.boot();
        m.launch(
            &JobSpec::new(AppImage::static_test("t"), 1, NodeMode::Smp),
            &mut |_r: Rank| {
                let mut n = 3;
                wl(move |_env| {
                    if n == 0 {
                        return Op::End;
                    }
                    n -= 1;
                    Op::Compute { cycles: 100 }
                })
            },
        )
        .unwrap();
        let out = m.run();
        assert!(out.completed());
        assert_eq!(out.at(), 300);
    }
}
