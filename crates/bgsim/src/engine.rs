//! The discrete-event engine.
//!
//! A single binary-heap event queue ordered by `(cycle, sequence)`. The
//! sequence number makes the ordering total and therefore the simulation
//! deterministic — the foundation of the cycle-reproducibility property
//! the paper's bringup methodology (§III) relies on.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::cycles::Cycle;

/// An event payload. The machine layer interprets these; the engine only
/// orders them.
#[derive(Clone, PartialEq, Debug)]
pub enum EvKind {
    /// The running op of thread `tid` completes (if `gen` still matches).
    OpDone { tid: u32, gen: u32 },
    /// A kernel-scheduled event (noise tick, daemon wake, timeslice, CIOD
    /// service completion...). `tag` is kernel-private.
    Kernel { node: u32, tag: u64 },
    /// A network message delivery.
    NetDeliver { msg_id: u64 },
    /// An inter-processor interrupt arriving at a hardware core.
    Ipi { core: u32, kind: u32 },
    /// An injected hardware fault (e.g. L1 parity error) on a core.
    Fault { core: u32, kind: u32 },
    /// A collective operation completes for one participant.
    CollDone { tid: u32, coll: u64 },
}

/// An ordered event.
#[derive(Clone, PartialEq, Debug)]
pub struct Event {
    pub at: Cycle,
    pub seq: u64,
    pub kind: EvKind,
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The event queue.
#[derive(Debug, Default)]
pub struct Engine {
    heap: BinaryHeap<Reverse<Event>>,
    now: Cycle,
    seq: u64,
    processed: u64,
}

impl Engine {
    pub fn new() -> Engine {
        Engine::default()
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of events processed so far.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Schedule `kind` at absolute cycle `at`. Scheduling in the past is a
    /// logic error in the caller.
    pub fn schedule(&mut self, at: Cycle, kind: EvKind) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {} < {}",
            at,
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Event {
            at: at.max(self.now),
            seq,
            kind,
        }));
    }

    /// Schedule `kind` `delta` cycles from now.
    pub fn schedule_in(&mut self, delta: Cycle, kind: EvKind) {
        self.schedule(self.now + delta, kind);
    }

    /// Pop the next event, advancing the clock. Returns `None` when the
    /// queue is empty.
    pub fn pop(&mut self) -> Option<Event> {
        let Reverse(ev) = self.heap.pop()?;
        debug_assert!(ev.at >= self.now);
        self.now = ev.at;
        self.processed += 1;
        Some(ev)
    }

    /// Pop the next event only if it fires at or before `bound`
    /// (clock-stop support: run the machine to an exact cycle).
    pub fn pop_until(&mut self, bound: Cycle) -> Option<Event> {
        match self.heap.peek() {
            Some(Reverse(ev)) if ev.at <= bound => self.pop(),
            _ => {
                // Nothing left in range; park the clock at the boundary.
                if self.now < bound {
                    self.now = bound;
                }
                None
            }
        }
    }

    /// True if no events are pending.
    pub fn is_idle(&self) -> bool {
        self.heap.is_empty()
    }

    /// Pending event count.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut e = Engine::new();
        e.schedule(30, EvKind::Kernel { node: 0, tag: 3 });
        e.schedule(10, EvKind::Kernel { node: 0, tag: 1 });
        e.schedule(20, EvKind::Kernel { node: 0, tag: 2 });
        let tags: Vec<u64> = std::iter::from_fn(|| e.pop())
            .map(|ev| match ev.kind {
                EvKind::Kernel { tag, .. } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, vec![1, 2, 3]);
        assert_eq!(e.now(), 30);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut e = Engine::new();
        for tag in 0..10 {
            e.schedule(100, EvKind::Kernel { node: 0, tag });
        }
        let tags: Vec<u64> = std::iter::from_fn(|| e.pop())
            .map(|ev| match ev.kind {
                EvKind::Kernel { tag, .. } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pop_until_respects_bound() {
        let mut e = Engine::new();
        e.schedule(10, EvKind::Kernel { node: 0, tag: 1 });
        e.schedule(50, EvKind::Kernel { node: 0, tag: 2 });
        assert!(e.pop_until(20).is_some());
        assert!(e.pop_until(20).is_none());
        // Clock parks at the bound, not at the next event.
        assert_eq!(e.now(), 20);
        assert_eq!(e.pending(), 1);
        assert!(e.pop_until(50).is_some());
        assert_eq!(e.now(), 50);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut e = Engine::new();
        e.schedule(10, EvKind::Kernel { node: 0, tag: 1 });
        e.pop();
        e.schedule_in(5, EvKind::Kernel { node: 0, tag: 2 });
        let ev = e.pop().unwrap();
        assert_eq!(ev.at, 15);
    }

    #[test]
    fn processed_counter() {
        let mut e = Engine::new();
        e.schedule(1, EvKind::Kernel { node: 0, tag: 0 });
        e.schedule(2, EvKind::Kernel { node: 0, tag: 0 });
        assert_eq!(e.processed(), 0);
        e.pop();
        e.pop();
        assert_eq!(e.processed(), 2);
        assert!(e.is_idle());
    }
}
