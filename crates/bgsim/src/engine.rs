//! The discrete-event engine.
//!
//! Events live in **per-domain queues** (a domain is one node's share of
//! the machine; single-domain engines collapse to the classic global
//! heap). Ordering is still the total order `(cycle, sequence)` — the
//! sequence counter is global, so the pop order is bit-identical to a
//! single global heap and the simulation stays deterministic: the
//! foundation of the cycle-reproducibility property the paper's bringup
//! methodology (§III) relies on.
//!
//! Three hot-path properties distinguish this engine from a plain
//! `BinaryHeap<Event>`:
//!
//! * **Payloads never move.** Heap entries are 24-byte `Copy` keys; the
//!   `EvKind` payload sits in a slab and is written once at `schedule`
//!   and read once at `pop`. Sift-up/sift-down shuffle keys only.
//! * **Cancellation is O(1).** `schedule*` returns an [`EvHandle`];
//!   [`Engine::cancel`] marks the slab slot dead without touching the
//!   heap. Dead entries are discarded lazily at pop (counted) and the
//!   queues are compacted wholesale when the dead fraction crosses a
//!   threshold, so a reschedule-heavy workload (preempt/stretch storms)
//!   no longer drags a tail of stale events through every heap
//!   operation.
//! * **The cross-domain merge is lazy.** A small "heads" heap holds at
//!   most one candidate key per domain; popping validates the candidate
//!   against the owning queue's real head and repairs stale candidates
//!   on the fly. `pop_until(bound)` — the epoch-bound check of the
//!   conservative parallel protocol — peeks this heads heap only, never
//!   the per-domain queues.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::cycles::Cycle;

/// An event payload. The machine layer interprets these; the engine only
/// orders them.
#[derive(Clone, PartialEq, Debug)]
pub enum EvKind {
    /// The running op of thread `tid` completes (if `gen` still matches).
    OpDone { tid: u32, gen: u32 },
    /// A kernel-scheduled event (noise tick, daemon wake, timeslice, CIOD
    /// service completion...). `tag` is kernel-private.
    Kernel { node: u32, tag: u64 },
    /// A network message delivery.
    NetDeliver { msg_id: u64 },
    /// An inter-processor interrupt arriving at a hardware core.
    Ipi { core: u32, kind: u32 },
    /// An injected hardware fault (e.g. L1 parity error) on a core.
    Fault { core: u32, kind: u32 },
    /// A collective operation completes for one participant.
    CollDone { tid: u32, coll: u64 },
    /// A scheduled RAS fault fires; `idx` indexes the machine's sorted
    /// fault schedule ([`crate::fault::FaultSchedule`]).
    Ras { idx: u32 },
}

/// An ordered event.
#[derive(Clone, PartialEq, Debug)]
pub struct Event {
    pub at: Cycle,
    pub seq: u64,
    pub kind: EvKind,
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Handle to a scheduled event, for O(1) cancellation. The `seq` guards
/// against slot reuse: a handle kept past its event's pop (or past a
/// cancel) simply stops matching.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EvHandle {
    slot: u32,
    seq: u64,
}

impl EvHandle {
    /// The global sequence number of the scheduled event. The fast path
    /// carries this through virtualization so a migrated event keeps its
    /// exact position in the `(cycle, seq)` total order.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

/// Heap entry: the ordering key plus the slab slot of the payload.
/// `Copy`, so heap sifts move 24 bytes and never touch a payload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Key {
    at: Cycle,
    seq: u64,
    slot: u32,
}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

#[derive(Debug)]
struct SlabEntry {
    kind: EvKind,
    seq: u64,
    dead: bool,
}

/// Engine occupancy / churn counters, exported to benches and telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events handed to `schedule*` since construction.
    pub scheduled: u64,
    /// Live events processed (excludes cancelled ones).
    pub processed: u64,
    /// Events cancelled via [`Engine::cancel`].
    pub cancelled: u64,
    /// Cancelled events discarded lazily at pop (cheap path).
    pub stale_discarded: u64,
    /// Whole-queue compactions triggered by the stale-fraction threshold.
    pub compactions: u64,
    /// Completions retired inline by the fast path (no heap traffic).
    pub coalesced: u64,
    /// Cycles the clock advanced via [`Engine::advance_inline`] instead
    /// of through heap pops.
    pub fastforward_cycles: u64,
}

/// Don't bother compacting tiny queues; below this many dead entries the
/// lazy pop-time discard is cheaper than a rebuild.
const COMPACT_MIN_DEAD: usize = 64;

/// The event queue.
#[derive(Debug)]
pub struct Engine {
    /// One min-heap of keys per domain.
    queues: Vec<BinaryHeap<Reverse<Key>>>,
    /// Lazy merge front: at most one *candidate* head per domain, as
    /// `(at, seq, domain)`. Entries are validated against the owning
    /// queue's head at pop time; stale candidates are dropped then.
    heads: BinaryHeap<Reverse<(Cycle, u64, u32)>>,
    /// Payload slab + free list. Heap keys index into this.
    slots: Vec<Option<SlabEntry>>,
    free: Vec<u32>,
    now: Cycle,
    /// Cycle of the last *processed* event. Unlike `now`, this never
    /// parks at a `pop_until` bound, so windowed runners can report the
    /// same end-of-run cycle a non-windowed run would.
    last_event: Cycle,
    seq: u64,
    live: usize,
    dead: usize,
    stats: EngineStats,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// A single-domain engine (the classic sequential configuration).
    pub fn new() -> Engine {
        Engine::with_shape(1, 0)
    }

    /// An engine sharded into `domains` queues, each pre-sized for
    /// `capacity` pending events (so steady-state operation does not
    /// reallocate). `domains` is clamped to at least 1.
    pub fn with_shape(domains: u32, capacity: usize) -> Engine {
        let domains = domains.max(1) as usize;
        Engine {
            queues: (0..domains)
                .map(|_| BinaryHeap::with_capacity(capacity))
                .collect(),
            heads: BinaryHeap::with_capacity(domains),
            slots: Vec::with_capacity(domains * capacity),
            free: Vec::new(),
            now: 0,
            last_event: 0,
            seq: 0,
            live: 0,
            dead: 0,
            stats: EngineStats::default(),
        }
    }

    /// Number of event domains.
    pub fn domains(&self) -> u32 {
        self.queues.len() as u32
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Cycle of the last processed event (never parked at a
    /// `pop_until` bound, unlike [`Engine::now`]).
    #[inline]
    pub fn last_event_cycle(&self) -> Cycle {
        self.last_event
    }

    /// Number of events processed so far.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.stats.processed
    }

    /// Occupancy / churn counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Schedule `kind` at absolute cycle `at` in domain 0. Scheduling in
    /// the past is a logic error in the caller.
    pub fn schedule(&mut self, at: Cycle, kind: EvKind) -> EvHandle {
        self.schedule_dom(0, at, kind)
    }

    /// Schedule `kind` `delta` cycles from now, in domain 0.
    pub fn schedule_in(&mut self, delta: Cycle, kind: EvKind) -> EvHandle {
        self.schedule_dom(0, self.now + delta, kind)
    }

    /// Schedule `kind` at absolute cycle `at` in `domain` (clamped to the
    /// engine's shape). Returns a handle usable with [`Engine::cancel`].
    pub fn schedule_dom(&mut self, domain: u32, at: Cycle, kind: EvKind) -> EvHandle {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {} < {}",
            at,
            self.now
        );
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(None);
                (self.slots.len() - 1) as u32
            }
        };
        self.slots[slot as usize] = Some(SlabEntry {
            kind,
            seq,
            dead: false,
        });
        let d = (domain as usize).min(self.queues.len() - 1);
        let q = &mut self.queues[d];
        q.push(Reverse(Key { at, seq, slot }));
        // Only refresh the merge front when this event became the
        // domain's head; otherwise the existing candidate still wins.
        if let Some(&Reverse(top)) = q.peek() {
            if top.seq == seq {
                self.heads.push(Reverse((at, seq, d as u32)));
            }
        }
        self.live += 1;
        self.stats.scheduled += 1;
        EvHandle { slot, seq }
    }

    /// Cancel a scheduled event in O(1): the slab slot is marked dead and
    /// the heap entry is discarded lazily at pop (or swept by a
    /// compaction). Returns false if the handle no longer matches a live
    /// pending event (already popped, cancelled, or slot reused).
    pub fn cancel(&mut self, h: EvHandle) -> bool {
        match self.slots.get_mut(h.slot as usize) {
            Some(Some(e)) if e.seq == h.seq && !e.dead => {
                e.dead = true;
                self.live -= 1;
                self.dead += 1;
                self.stats.cancelled += 1;
                if self.dead >= COMPACT_MIN_DEAD && self.dead > self.live {
                    self.compact();
                }
                true
            }
            _ => false,
        }
    }

    // ---- fast-path (event virtualization) support -------------------------
    //
    // The machine's quiescence fast path lifts pending completions out of
    // the heap into a tiny run queue, retires them inline, and puts any
    // survivors back on exit. Three invariants make that digest-safe:
    // sequence numbers come from the same global counter (`alloc_seq`), a
    // migrated event keeps its original `(at, seq)` key when restored, and
    // the clock advance (`advance_inline`) mirrors exactly what popping
    // the event would have done.

    /// Allocate the next global sequence number without scheduling an
    /// event. The fast path uses this so virtualized completions occupy
    /// the same positions in the total order that `schedule_dom` would
    /// have given them.
    pub fn alloc_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// True if `h` still refers to a live pending event.
    pub fn is_live(&self, h: EvHandle) -> bool {
        matches!(self.slots.get(h.slot as usize),
                 Some(Some(e)) if e.seq == h.seq && !e.dead)
    }

    /// Migrate a pending event out of the engine: the slab entry is
    /// marked dead (so the heap key is discarded when reached) but the
    /// event is *not* counted as cancelled — the caller either retires it
    /// inline or puts it back with [`Engine::restore`]. Returns false if
    /// the handle no longer matches a live event.
    pub fn decommit(&mut self, h: EvHandle) -> bool {
        match self.slots.get_mut(h.slot as usize) {
            Some(Some(e)) if e.seq == h.seq && !e.dead => {
                e.dead = true;
                self.live -= 1;
                self.dead += 1;
                true
            }
            _ => false,
        }
    }

    /// Re-insert a previously decommitted event with its *original*
    /// sequence number, so it reclaims the exact slot in the `(at, seq)`
    /// total order it held before migration. The dead twin left behind by
    /// [`Engine::decommit`] compares equal and is skipped at pop.
    pub fn restore(&mut self, domain: u32, at: Cycle, seq: u64, kind: EvKind) -> EvHandle {
        debug_assert!(
            at >= self.now,
            "restoring into the past: {} < {}",
            at,
            self.now
        );
        let at = at.max(self.now);
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(None);
                (self.slots.len() - 1) as u32
            }
        };
        self.slots[slot as usize] = Some(SlabEntry {
            kind,
            seq,
            dead: false,
        });
        let d = (domain as usize).min(self.queues.len() - 1);
        self.queues[d].push(Reverse(Key { at, seq, slot }));
        // Restores are rare (fast-path exit); unconditionally offering a
        // merge-front candidate is cheaper than disambiguating the dead
        // twin, and peek_valid drops stale candidates anyway.
        self.heads.push(Reverse((at, seq, d as u32)));
        self.live += 1;
        EvHandle { slot, seq }
    }

    /// Fast-path clock advance: jump to `at` exactly as popping an event
    /// there would have, counting the retired completion and the cycles
    /// that never touched the heap.
    pub fn advance_inline(&mut self, at: Cycle) {
        debug_assert!(at >= self.now);
        self.stats.fastforward_cycles += at.saturating_sub(self.now);
        self.stats.coalesced += 1;
        self.now = at;
        self.last_event = at;
    }

    /// Repair the merge front until its top candidate matches the real
    /// head of its domain queue, and return that key (which may point at
    /// a dead slab entry). `seq` uniqueness makes the match exact.
    fn peek_valid(&mut self) -> Option<(Cycle, u64, u32)> {
        while let Some(&Reverse((at, seq, d))) = self.heads.peek() {
            match self.queues[d as usize].peek() {
                Some(&Reverse(k)) if k.at == at && k.seq == seq => return Some((at, seq, d)),
                _ => {
                    self.heads.pop();
                }
            }
        }
        None
    }

    /// Pop the validated head of `domain`. Returns `None` if it was a
    /// cancelled (dead) entry, which is discarded and counted.
    fn pop_head(&mut self, domain: u32) -> Option<Event> {
        self.heads.pop();
        let q = &mut self.queues[domain as usize];
        let Reverse(k) = q.pop().expect("validated head must exist");
        if let Some(&Reverse(next)) = q.peek() {
            self.heads.push(Reverse((next.at, next.seq, domain)));
        }
        let entry = self.slots[k.slot as usize]
            .take()
            .expect("heap key must have a slab entry");
        self.free.push(k.slot);
        if entry.dead {
            self.dead -= 1;
            self.stats.stale_discarded += 1;
            return None;
        }
        self.live -= 1;
        debug_assert!(k.at >= self.now);
        self.now = k.at;
        self.last_event = k.at;
        self.stats.processed += 1;
        Some(Event {
            at: k.at,
            seq: k.seq,
            kind: entry.kind,
        })
    }

    /// Pop the next event, advancing the clock. Returns `None` when no
    /// live events are pending. Cancelled events are skipped silently
    /// and do not advance the clock.
    pub fn pop(&mut self) -> Option<Event> {
        loop {
            let (_, _, d) = self.peek_valid()?;
            if let Some(ev) = self.pop_head(d) {
                return Some(ev);
            }
        }
    }

    /// Pop the next event only if it fires at or before `bound`
    /// (clock-stop support: run the machine to an exact cycle, and the
    /// epoch-bound check of the conservative parallel protocol). When
    /// nothing live remains in range, the clock parks at the boundary.
    pub fn pop_until(&mut self, bound: Cycle) -> Option<Event> {
        loop {
            match self.peek_valid() {
                Some((at, _, d)) if at <= bound => {
                    if let Some(ev) = self.pop_head(d) {
                        return Some(ev);
                    }
                }
                _ => {
                    if self.now < bound {
                        self.now = bound;
                    }
                    return None;
                }
            }
        }
    }

    /// Cycle of the next live pending event, without popping it.
    /// Cancelled entries encountered on the way are discarded.
    pub fn peek_at(&mut self) -> Option<Cycle> {
        loop {
            let (at, _, d) = self.peek_valid()?;
            let head_dead = {
                let q = &self.queues[d as usize];
                let Reverse(k) = q.peek().expect("validated head");
                self.slots[k.slot as usize]
                    .as_ref()
                    .map(|e| e.dead)
                    .unwrap_or(true)
            };
            if head_dead {
                self.pop_head(d);
                continue;
            }
            return Some(at);
        }
    }

    /// True if no live events are pending.
    pub fn is_idle(&self) -> bool {
        self.live == 0
    }

    /// Pending live event count (cancelled-but-unswept events excluded).
    pub fn pending(&self) -> usize {
        self.live
    }

    /// Drop every dead entry from every queue and rebuild the merge
    /// front. Triggered when the dead fraction crosses the threshold in
    /// [`Engine::cancel`]; also callable directly.
    pub fn compact(&mut self) {
        self.stats.compactions += 1;
        for q in self.queues.iter_mut() {
            if q.is_empty() {
                continue;
            }
            let keep: Vec<Reverse<Key>> = q
                .drain()
                .filter(|&Reverse(k)| {
                    let dead = self.slots[k.slot as usize]
                        .as_ref()
                        .map(|e| e.dead)
                        .unwrap_or(true);
                    if dead {
                        self.slots[k.slot as usize] = None;
                        self.free.push(k.slot);
                    }
                    !dead
                })
                .collect();
            *q = BinaryHeap::from(keep);
        }
        self.heads.clear();
        for (d, q) in self.queues.iter().enumerate() {
            if let Some(&Reverse(k)) = q.peek() {
                self.heads.push(Reverse((k.at, k.seq, d as u32)));
            }
        }
        self.dead = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut e = Engine::new();
        e.schedule(30, EvKind::Kernel { node: 0, tag: 3 });
        e.schedule(10, EvKind::Kernel { node: 0, tag: 1 });
        e.schedule(20, EvKind::Kernel { node: 0, tag: 2 });
        let tags: Vec<u64> = std::iter::from_fn(|| e.pop())
            .map(|ev| match ev.kind {
                EvKind::Kernel { tag, .. } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, vec![1, 2, 3]);
        assert_eq!(e.now(), 30);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut e = Engine::new();
        for tag in 0..10 {
            e.schedule(100, EvKind::Kernel { node: 0, tag });
        }
        let tags: Vec<u64> = std::iter::from_fn(|| e.pop())
            .map(|ev| match ev.kind {
                EvKind::Kernel { tag, .. } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pop_until_respects_bound() {
        let mut e = Engine::new();
        e.schedule(10, EvKind::Kernel { node: 0, tag: 1 });
        e.schedule(50, EvKind::Kernel { node: 0, tag: 2 });
        assert!(e.pop_until(20).is_some());
        assert!(e.pop_until(20).is_none());
        // Clock parks at the bound, not at the next event.
        assert_eq!(e.now(), 20);
        assert_eq!(e.pending(), 1);
        assert!(e.pop_until(50).is_some());
        assert_eq!(e.now(), 50);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut e = Engine::new();
        e.schedule(10, EvKind::Kernel { node: 0, tag: 1 });
        e.pop();
        e.schedule_in(5, EvKind::Kernel { node: 0, tag: 2 });
        let ev = e.pop().unwrap();
        assert_eq!(ev.at, 15);
    }

    #[test]
    fn processed_counter() {
        let mut e = Engine::new();
        e.schedule(1, EvKind::Kernel { node: 0, tag: 0 });
        e.schedule(2, EvKind::Kernel { node: 0, tag: 0 });
        assert_eq!(e.processed(), 0);
        e.pop();
        e.pop();
        assert_eq!(e.processed(), 2);
        assert!(e.is_idle());
    }

    #[test]
    fn sharded_pop_order_matches_global_order() {
        // The same schedule stream through a 1-domain and an 8-domain
        // engine must pop in the identical (at, seq) order.
        let mut seq1 = Engine::new();
        let mut seq8 = Engine::with_shape(8, 4);
        let ats = [40u64, 12, 12, 99, 5, 40, 77, 5, 63, 12, 100, 0];
        for (i, &at) in ats.iter().enumerate() {
            let kind = EvKind::Kernel {
                node: i as u32,
                tag: i as u64,
            };
            seq1.schedule(at, kind.clone());
            seq8.schedule_dom(i as u32 % 8, at, kind);
        }
        loop {
            let a = seq1.pop();
            let b = seq8.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(seq1.now(), seq8.now());
    }

    #[test]
    fn cancel_skips_event_and_counts() {
        let mut e = Engine::new();
        let h1 = e.schedule(10, EvKind::Kernel { node: 0, tag: 1 });
        e.schedule(20, EvKind::Kernel { node: 0, tag: 2 });
        assert_eq!(e.pending(), 2);
        assert!(e.cancel(h1));
        assert!(!e.cancel(h1), "double cancel must fail");
        assert_eq!(e.pending(), 1);
        let ev = e.pop().unwrap();
        assert!(matches!(ev.kind, EvKind::Kernel { tag: 2, .. }));
        // The cancelled event neither advanced the clock to 10 first nor
        // counted as processed.
        assert_eq!(e.now(), 20);
        assert_eq!(e.processed(), 1);
        assert_eq!(e.stats().cancelled, 1);
        assert_eq!(e.stats().stale_discarded, 1);
        assert!(e.pop().is_none());
    }

    #[test]
    fn cancelled_head_does_not_block_pop_until() {
        let mut e = Engine::new();
        let h = e.schedule(10, EvKind::Kernel { node: 0, tag: 1 });
        e.schedule(50, EvKind::Kernel { node: 0, tag: 2 });
        e.cancel(h);
        // Dead head at 10 is within bound; it must be discarded without
        // surfacing, and the live event at 50 stays for later.
        assert!(e.pop_until(20).is_none());
        assert_eq!(e.now(), 20);
        assert_eq!(e.pending(), 1);
        assert_eq!(e.peek_at(), Some(50));
    }

    #[test]
    fn handle_does_not_cancel_reused_slot() {
        let mut e = Engine::new();
        let h1 = e.schedule(10, EvKind::Kernel { node: 0, tag: 1 });
        e.pop();
        // Slot is recycled for a new event; the stale handle must not
        // touch it.
        let h2 = e.schedule(20, EvKind::Kernel { node: 0, tag: 2 });
        assert!(!e.cancel(h1));
        assert_eq!(e.pending(), 1);
        assert!(e.cancel(h2));
        assert!(e.pop().is_none());
    }

    #[test]
    fn threshold_compaction_sweeps_dead_entries() {
        let mut e = Engine::new();
        let handles: Vec<EvHandle> = (0..200)
            .map(|i| e.schedule(i, EvKind::Kernel { node: 0, tag: i }))
            .collect();
        // Cancel from the back so the dead set exceeds the live set.
        for h in handles.iter().skip(60).rev() {
            e.cancel(*h);
        }
        assert!(e.stats().compactions >= 1, "threshold must trigger");
        assert_eq!(e.pending(), 60);
        let mut popped = 0;
        while let Some(ev) = e.pop() {
            assert!(matches!(ev.kind, EvKind::Kernel { tag, .. } if tag < 60));
            popped += 1;
        }
        assert_eq!(popped, 60);
        // Compaction swept the bulk of the dead entries wholesale; only
        // the ones cancelled after the sweep hit the lazy pop path.
        assert_eq!(e.stats().cancelled, 140);
        assert!(e.stats().stale_discarded < e.stats().cancelled / 2);
    }

    #[test]
    fn peek_at_reports_next_live_cycle() {
        let mut e = Engine::with_shape(4, 0);
        assert_eq!(e.peek_at(), None);
        let h = e.schedule_dom(1, 7, EvKind::Kernel { node: 1, tag: 0 });
        e.schedule_dom(3, 30, EvKind::Kernel { node: 3, tag: 1 });
        assert_eq!(e.peek_at(), Some(7));
        e.cancel(h);
        assert_eq!(e.peek_at(), Some(30));
        assert_eq!(e.pop().unwrap().at, 30);
        assert_eq!(e.peek_at(), None);
    }

    #[test]
    fn slab_reuses_slots() {
        let mut e = Engine::new();
        for round in 0..50u64 {
            e.schedule(
                round,
                EvKind::Kernel {
                    node: 0,
                    tag: round,
                },
            );
            e.pop();
        }
        // One slot in flight at a time: the slab must not grow past a
        // single entry.
        assert_eq!(e.slots.len(), 1);
    }

    #[test]
    fn last_event_cycle_ignores_parking() {
        let mut e = Engine::new();
        e.schedule(10, EvKind::Kernel { node: 0, tag: 1 });
        e.pop();
        assert!(e.pop_until(500).is_none());
        assert_eq!(e.now(), 500);
        assert_eq!(e.last_event_cycle(), 10);
    }

    #[test]
    fn decommit_then_restore_reclaims_total_order_slot() {
        // A migrated event put back with its original seq pops exactly
        // where it would have without the round trip — including against
        // a same-cycle rival scheduled later (higher seq).
        let mut e = Engine::new();
        e.schedule(10, EvKind::Kernel { node: 0, tag: 1 });
        let h = e.schedule(20, EvKind::Kernel { node: 0, tag: 2 });
        e.schedule(20, EvKind::Kernel { node: 0, tag: 3 });
        let seq = h.seq();
        assert!(e.decommit(h));
        assert!(!e.is_live(h), "decommitted handle must read dead");
        assert!(!e.decommit(h), "double decommit must fail");
        assert_eq!(e.pending(), 2);
        let h2 = e.restore(0, 20, seq, EvKind::Kernel { node: 0, tag: 2 });
        assert!(e.is_live(h2));
        assert_eq!(h2.seq(), seq);
        assert_eq!(e.pending(), 3);
        let tags: Vec<u64> = std::iter::from_fn(|| e.pop())
            .map(|ev| match ev.kind {
                EvKind::Kernel { tag, .. } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, vec![1, 2, 3]);
        // The dead twin was skipped silently: discarded, not cancelled.
        assert_eq!(e.stats().stale_discarded, 1);
        assert_eq!(e.stats().cancelled, 0);
        assert_eq!(e.stats().processed, 3);
    }

    #[test]
    fn decommitted_event_retired_inline_never_pops() {
        let mut e = Engine::new();
        let h = e.schedule(40, EvKind::Kernel { node: 0, tag: 7 });
        e.schedule(50, EvKind::Kernel { node: 0, tag: 8 });
        assert!(e.decommit(h));
        // Inline retirement: the clock jumps as if the event popped.
        e.advance_inline(40);
        assert_eq!(e.now(), 40);
        assert_eq!(e.last_event_cycle(), 40);
        let ev = e.pop().expect("live rival still queued");
        assert_eq!(ev.at, 50);
        assert!(e.pop().is_none());
        assert_eq!(e.stats().coalesced, 1);
        assert_eq!(e.stats().fastforward_cycles, 40);
        assert_eq!(e.stats().stale_discarded, 1);
    }

    #[test]
    fn alloc_seq_shares_the_schedule_counter() {
        // Virtualized completions draw from the same counter as real
        // ones, so a later schedule always sorts after an earlier
        // alloc_seq at the same cycle.
        let mut e = Engine::new();
        let s0 = e.alloc_seq();
        let h = e.schedule(10, EvKind::Kernel { node: 0, tag: 0 });
        assert_eq!(h.seq(), s0 + 1);
        assert!(e.alloc_seq() > h.seq());
        // And restoring at the reserved seq beats the scheduled rival.
        e.restore(0, 10, s0, EvKind::Kernel { node: 0, tag: 99 });
        let first = e.pop().unwrap();
        assert!(matches!(first.kind, EvKind::Kernel { tag: 99, .. }));
    }

    #[test]
    fn advance_inline_matches_pop_accounting() {
        // Same clock positions whether an event pops or fast-forwards.
        let mut popped = Engine::new();
        popped.schedule(100, EvKind::Kernel { node: 0, tag: 0 });
        popped.pop();
        let mut inline = Engine::new();
        let h = inline.schedule(100, EvKind::Kernel { node: 0, tag: 0 });
        inline.decommit(h);
        inline.advance_inline(100);
        assert_eq!(inline.now(), popped.now());
        assert_eq!(inline.last_event_cycle(), popped.last_event_cycle());
    }
}
