//! The discrete-event engine.
//!
//! Events live in **per-domain queues** (a domain is one node's share of
//! the machine; single-domain engines collapse to the classic global
//! heap). Ordering is still the total order `(cycle, sequence)` — the
//! sequence counter is global, so the pop order is bit-identical to a
//! single global heap and the simulation stays deterministic: the
//! foundation of the cycle-reproducibility property the paper's bringup
//! methodology (§III) relies on.
//!
//! Three hot-path properties distinguish this engine from a plain
//! `BinaryHeap<Event>`:
//!
//! * **Payloads never move.** Heap entries are 24-byte `Copy` keys; the
//!   `EvKind` payload sits in a slab and is written once at `schedule`
//!   and read once at `pop`. Sift-up/sift-down shuffle keys only.
//! * **Cancellation is O(1).** `schedule*` returns an [`EvHandle`];
//!   [`Engine::cancel`] marks the slab slot dead without touching the
//!   heap. Dead entries are discarded lazily at pop (counted) and the
//!   queues are compacted wholesale when the dead fraction crosses a
//!   threshold, so a reschedule-heavy workload (preempt/stretch storms)
//!   no longer drags a tail of stale events through every heap
//!   operation.
//! * **The cross-domain merge is lazy.** A small "heads" heap holds at
//!   most one candidate key per domain; popping validates the candidate
//!   against the owning queue's real head and repairs stale candidates
//!   on the fly. `pop_until(bound)` — the epoch-bound check of the
//!   conservative parallel protocol — peeks this heads heap only, never
//!   the per-domain queues.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::config::EngineBackend;
use crate::cycles::Cycle;

/// An event payload. The machine layer interprets these; the engine only
/// orders them.
#[derive(Clone, PartialEq, Debug)]
pub enum EvKind {
    /// The running op of thread `tid` completes (if `gen` still matches).
    OpDone { tid: u32, gen: u32 },
    /// A kernel-scheduled event (noise tick, daemon wake, timeslice, CIOD
    /// service completion...). `tag` is kernel-private.
    Kernel { node: u32, tag: u64 },
    /// A network message delivery.
    NetDeliver { msg_id: u64 },
    /// An inter-processor interrupt arriving at a hardware core.
    Ipi { core: u32, kind: u32 },
    /// An injected hardware fault (e.g. L1 parity error) on a core.
    Fault { core: u32, kind: u32 },
    /// A collective operation completes for one participant.
    CollDone { tid: u32, coll: u64 },
    /// A scheduled RAS fault fires; `idx` indexes the machine's sorted
    /// fault schedule ([`crate::fault::FaultSchedule`]).
    Ras { idx: u32 },
}

/// An ordered event.
#[derive(Clone, PartialEq, Debug)]
pub struct Event {
    pub at: Cycle,
    pub seq: u64,
    pub kind: EvKind,
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Handle to a scheduled event, for O(1) cancellation. The `seq` guards
/// against slot reuse: a handle kept past its event's pop (or past a
/// cancel) simply stops matching.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EvHandle {
    slot: u32,
    seq: u64,
}

impl EvHandle {
    /// The global sequence number of the scheduled event. The fast path
    /// carries this through virtualization so a migrated event keeps its
    /// exact position in the `(cycle, seq)` total order.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

/// Heap entry: the ordering key plus the slab slot of the payload.
/// `Copy`, so heap sifts move 24 bytes and never touch a payload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Key {
    at: Cycle,
    seq: u64,
    slot: u32,
}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

#[derive(Debug)]
struct SlabEntry {
    kind: EvKind,
    seq: u64,
    dead: bool,
}

/// Engine occupancy / churn counters, exported to benches and telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events handed to `schedule*` since construction.
    pub scheduled: u64,
    /// Live events processed (excludes cancelled ones).
    pub processed: u64,
    /// Events cancelled via [`Engine::cancel`].
    pub cancelled: u64,
    /// Cancelled events discarded lazily at pop (cheap path).
    pub stale_discarded: u64,
    /// Whole-queue compactions triggered by the stale-fraction threshold.
    pub compactions: u64,
    /// Completions retired inline by the fast path (no heap traffic).
    pub coalesced: u64,
    /// Cycles the clock advanced via [`Engine::advance_inline`] instead
    /// of through heap pops.
    pub fastforward_cycles: u64,
}

/// Calendar-queue bucket count. Fixed; the bucket *width* adapts, so the
/// window span (`width * CAL_BUCKETS`) tracks the event density.
const CAL_BUCKETS: usize = 64;
/// Narrowest bucket the dense-side resize will shrink to, in cycles.
const CAL_MIN_WIDTH: Cycle = 64;
/// Initial bucket width in cycles (~19 us at 850 MHz — the order of the
/// kernels' quantum/daemon timers).
const CAL_INIT_WIDTH: Cycle = 1 << 14;
/// Consecutive refills recovering at most one key before the sparse-side
/// resize doubles the bucket width.
const CAL_SPARSE_REFILLS: u32 = 4;
/// Keys a calendar holds in plain heap ("sparse") mode before it pays
/// for the bucket ring. Below this, ring + heap cost the same bytes but
/// the ring adds `CAL_BUCKETS` allocations per domain — and a rack has
/// one domain per node, most holding a single pending event.
const CAL_SPARSE_KEYS: usize = 64;

/// A calendar queue: a ring of `CAL_BUCKETS` buckets covering the dense
/// near-horizon window `[base, base + width*CAL_BUCKETS)`, with a
/// `BinaryHeap` *overflow* for sparse/far-future keys and a tiny *early*
/// heap for keys behind the window base (restore races). Pops scan the
/// ring cursor forward; when the window drains, the next overflow window
/// is pulled in (`refill`), adapting the bucket width to the observed
/// density. Yields exactly the `(at, seq)` min order a heap would.
#[derive(Debug)]
struct Calendar {
    /// Cycle of bucket 0 of the current window (aligned to `width`).
    base: Cycle,
    /// Cycles per bucket.
    width: Cycle,
    /// First possibly non-empty bucket of the window.
    cursor: usize,
    /// Tiny per-bucket heaps: each holds only keys from one
    /// `width`-cycle slice, so sifts stay shallow.
    buckets: Vec<BinaryHeap<Reverse<Key>>>,
    window_len: usize,
    /// Keys before `base`. Strictly earlier than any window/overflow key
    /// (the base only advances when the window is empty), so they always
    /// win the peek.
    early: BinaryHeap<Reverse<Key>>,
    /// Keys at or beyond the window end — the sparse/far-future
    /// fallback heap, drained window by window.
    overflow: BinaryHeap<Reverse<Key>>,
    /// Refills in a row that recovered at most one key.
    sparse_refills: u32,
    /// Bucket-width adaptations (either direction) so far.
    resizes: u64,
}

impl Calendar {
    /// An empty calendar. The bucket ring is **not** allocated here: an
    /// idle domain (a node that never schedules) costs only the inline
    /// struct, which is what lets a 100k-node engine fit in memory. The
    /// ring materializes on the first key that lands in the window.
    fn new() -> Calendar {
        Calendar {
            base: 0,
            width: CAL_INIT_WIDTH,
            cursor: CAL_BUCKETS,
            buckets: Vec::new(),
            window_len: 0,
            early: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            sparse_refills: 0,
            resizes: 0,
        }
    }

    /// Allocate the bucket ring on first use. The per-bucket heaps start
    /// unallocated too (`BinaryHeap::new`), so this is one `Vec` spine,
    /// not `CAL_BUCKETS` arena reservations.
    #[inline]
    fn ensure_buckets(&mut self) {
        if self.buckets.is_empty() {
            self.buckets = (0..CAL_BUCKETS).map(|_| BinaryHeap::new()).collect();
        }
    }

    /// Heap bytes currently reserved by this calendar's containers.
    fn resident_bytes(&self) -> usize {
        let key = std::mem::size_of::<Reverse<Key>>();
        self.buckets.capacity() * std::mem::size_of::<BinaryHeap<Reverse<Key>>>()
            + self
                .buckets
                .iter()
                .map(|b| b.capacity() * key)
                .sum::<usize>()
            + self.early.capacity() * key
            + self.overflow.capacity() * key
    }

    /// Pre-reserve the legacy eager footprint (what `new` used to
    /// allocate up front). Only the scale benchmarks call this, to
    /// measure the pre-refactor layout against the lazy default.
    fn materialize(&mut self, capacity: usize) {
        self.ensure_buckets();
        let per_bucket = capacity.div_ceil(CAL_BUCKETS);
        for b in self.buckets.iter_mut() {
            b.reserve(per_bucket);
        }
        self.overflow.reserve(capacity);
    }

    fn len(&self) -> usize {
        self.window_len + self.early.len() + self.overflow.len()
    }

    fn span(&self) -> Cycle {
        self.width.saturating_mul(CAL_BUCKETS as u64)
    }

    #[inline]
    fn push(&mut self, k: Key) {
        // Sparse mode: until the ring is materialized the calendar *is*
        // the overflow heap — identical min order, none of the ring's
        // per-domain footprint. A rack has one domain per node, most
        // holding a single pending event; `refill` materializes the ring
        // only once the heap outgrows `CAL_SPARSE_KEYS`.
        if self.buckets.is_empty() {
            self.overflow.push(Reverse(k));
            return;
        }
        if self.len() == 0 {
            // Empty calendar: re-anchor the window on the new key so the
            // cursor never scans a stale region.
            self.base = (k.at / self.width) * self.width;
            self.cursor = 0;
        }
        if k.at < self.base {
            self.early.push(Reverse(k));
        } else if k.at - self.base >= self.span() {
            self.overflow.push(Reverse(k));
        } else {
            let idx = ((k.at - self.base) / self.width) as usize;
            self.buckets[idx].push(Reverse(k));
            self.window_len += 1;
            if idx < self.cursor {
                self.cursor = idx;
            }
        }
    }

    #[inline]
    fn peek(&mut self) -> Option<Key> {
        loop {
            if let Some(&Reverse(k)) = self.early.peek() {
                return Some(k);
            }
            if self.buckets.is_empty() {
                if self.overflow.len() <= CAL_SPARSE_KEYS {
                    return self.overflow.peek().map(|&Reverse(k)| k);
                }
                if !self.refill() {
                    return None;
                }
                continue;
            }
            while self.cursor < CAL_BUCKETS {
                if let Some(&Reverse(k)) = self.buckets[self.cursor].peek() {
                    return Some(k);
                }
                self.cursor += 1;
            }
            if !self.refill() {
                return None;
            }
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<Key> {
        if self.early.peek().is_some() {
            return self.early.pop().map(|Reverse(k)| k);
        }
        loop {
            if self.buckets.is_empty() {
                if self.overflow.len() <= CAL_SPARSE_KEYS {
                    return self.overflow.pop().map(|Reverse(k)| k);
                }
                if !self.refill() {
                    return None;
                }
                continue;
            }
            while self.cursor < CAL_BUCKETS {
                if let Some(Reverse(k)) = self.buckets[self.cursor].pop() {
                    self.window_len -= 1;
                    return Some(k);
                }
                self.cursor += 1;
            }
            if !self.refill() {
                return None;
            }
        }
    }

    /// Advance the window to the next populated overflow region. Only
    /// called with an empty window, which is what makes mid-flight
    /// resizes safe: no placed key ever sees a changed width.
    fn refill(&mut self) -> bool {
        debug_assert_eq!(self.window_len, 0);
        // Sparse-side resize: repeated refills recovering ≤1 key mean
        // the span is far narrower than the event spacing — widen so a
        // refill covers more future (heap-like cost, fewer refills).
        if self.sparse_refills >= CAL_SPARSE_REFILLS {
            self.width = self.width.saturating_mul(2);
            self.sparse_refills = 0;
            self.resizes += 1;
        }
        let Some(&Reverse(min)) = self.overflow.peek() else {
            return false;
        };
        self.ensure_buckets();
        self.base = (min.at / self.width) * self.width;
        self.cursor = 0;
        let limit = self.base.saturating_add(self.span());
        let mut moved = 0usize;
        while let Some(&Reverse(k)) = self.overflow.peek() {
            if k.at >= limit {
                break;
            }
            self.overflow.pop();
            self.buckets[((k.at - self.base) / self.width) as usize].push(Reverse(k));
            self.window_len += 1;
            moved += 1;
        }
        if moved <= 1 {
            self.sparse_refills += 1;
        } else {
            self.sparse_refills = 0;
        }
        // Dense-side resize: a refill that floods the window means the
        // buckets are too wide to spread the load — narrow them for the
        // next window.
        if moved > CAL_BUCKETS * 8 && self.width > CAL_MIN_WIDTH {
            self.width = (self.width / 2).max(CAL_MIN_WIDTH);
            self.resizes += 1;
        }
        true
    }

    /// Remove every key, in no particular order (wholesale compaction).
    fn drain_all(&mut self) -> Vec<Key> {
        let mut out = Vec::with_capacity(self.len());
        for b in self.buckets.iter_mut() {
            out.extend(b.drain().map(|Reverse(k)| k));
        }
        out.extend(self.early.drain().map(|Reverse(k)| k));
        out.extend(self.overflow.drain().map(|Reverse(k)| k));
        self.window_len = 0;
        self.cursor = CAL_BUCKETS;
        out
    }
}

/// One domain's event queue — the structure under the heads merge. Both
/// variants yield keys in exactly the same `(at, seq)` min order;
/// [`EngineBackend`] picks the host-performance trade-off.
#[derive(Debug)]
enum DomainQueue {
    Heap(BinaryHeap<Reverse<Key>>),
    Calendar(Calendar),
}

impl DomainQueue {
    /// An empty queue. Neither variant allocates until its first push —
    /// per-domain pre-sizing is what used to sink rack-scale configs.
    fn new(backend: EngineBackend) -> DomainQueue {
        match backend {
            EngineBackend::Heap => DomainQueue::Heap(BinaryHeap::new()),
            EngineBackend::Calendar => DomainQueue::Calendar(Calendar::new()),
        }
    }

    /// Heap bytes currently reserved by this queue's containers.
    fn resident_bytes(&self) -> usize {
        match self {
            DomainQueue::Heap(q) => q.capacity() * std::mem::size_of::<Reverse<Key>>(),
            DomainQueue::Calendar(c) => c.resident_bytes(),
        }
    }

    /// Pre-reserve the legacy eager per-domain footprint (scale-bench
    /// comparison only; see [`Engine::materialize_eager`]).
    fn materialize(&mut self, capacity: usize) {
        match self {
            DomainQueue::Heap(q) => q.reserve(capacity),
            DomainQueue::Calendar(c) => c.materialize(capacity),
        }
    }

    fn len(&self) -> usize {
        match self {
            DomainQueue::Heap(q) => q.len(),
            DomainQueue::Calendar(c) => c.len(),
        }
    }

    #[inline]
    fn push(&mut self, k: Key) {
        match self {
            DomainQueue::Heap(q) => q.push(Reverse(k)),
            DomainQueue::Calendar(c) => c.push(k),
        }
    }

    /// The minimum key, without removing it. `&mut` because the calendar
    /// may advance its cursor or refill its window to find it.
    #[inline]
    fn peek(&mut self) -> Option<Key> {
        match self {
            DomainQueue::Heap(q) => q.peek().map(|&Reverse(k)| k),
            DomainQueue::Calendar(c) => c.peek(),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<Key> {
        match self {
            DomainQueue::Heap(q) => q.pop().map(|Reverse(k)| k),
            DomainQueue::Calendar(c) => c.pop(),
        }
    }

    /// Remove every key, in no particular order (wholesale compaction).
    fn drain_all(&mut self) -> Vec<Key> {
        match self {
            DomainQueue::Heap(q) => q.drain().map(|Reverse(k)| k).collect(),
            DomainQueue::Calendar(c) => c.drain_all(),
        }
    }

    fn calendar_resizes(&self) -> u64 {
        match self {
            DomainQueue::Heap(_) => 0,
            DomainQueue::Calendar(c) => c.resizes,
        }
    }
}

/// The event queue.
#[derive(Debug)]
pub struct Engine {
    /// One ordered key queue per domain.
    queues: Vec<DomainQueue>,
    /// Lazy merge front: at most one *candidate* head per domain, as
    /// `(at, seq, domain)`. Entries are validated against the owning
    /// queue's head at pop time; stale candidates are dropped then.
    heads: BinaryHeap<Reverse<(Cycle, u64, u32)>>,
    /// Payload slab + free list. Heap keys index into this.
    slots: Vec<Option<SlabEntry>>,
    free: Vec<u32>,
    now: Cycle,
    /// Cycle of the last *processed* event. Unlike `now`, this never
    /// parks at a `pop_until` bound, so windowed runners can report the
    /// same end-of-run cycle a non-windowed run would.
    last_event: Cycle,
    seq: u64,
    live: usize,
    dead: usize,
    stats: EngineStats,
    backend: EngineBackend,
    /// Dead-entry floor before a cancel considers wholesale compaction
    /// (`MachineConfig::compact_min_dead`); below it the lazy pop-time
    /// discard is cheaper than a rebuild.
    compact_min_dead: usize,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// A single-domain engine (the classic sequential configuration).
    pub fn new() -> Engine {
        Engine::with_shape(1, 0)
    }

    /// An engine sharded into `domains` queues. `capacity` is a
    /// steady-state occupancy *hint* kept for API compatibility; queues
    /// and the payload slab now start empty and grow geometrically on
    /// demand, so idle domains cost nothing. `domains` is clamped to at
    /// least 1. Uses the default backend and compaction floor; see
    /// [`Engine::with_config`].
    pub fn with_shape(domains: u32, capacity: usize) -> Engine {
        Engine::with_config(domains, capacity, EngineBackend::default(), 64)
    }

    /// The fully tunable constructor: queue structure per
    /// [`EngineBackend`] and the dead-entry compaction floor (clamped to
    /// at least 1). Nothing is pre-reserved: the old
    /// `domains * capacity` slot reservation both overflowed on huge
    /// shapes and sank rack-scale configs before the first event fired;
    /// all containers grow geometrically from empty instead.
    pub fn with_config(
        domains: u32,
        _capacity: usize,
        backend: EngineBackend,
        compact_min_dead: usize,
    ) -> Engine {
        let domains = domains.max(1) as usize;
        Engine {
            queues: (0..domains).map(|_| DomainQueue::new(backend)).collect(),
            heads: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            now: 0,
            last_event: 0,
            seq: 0,
            live: 0,
            dead: 0,
            stats: EngineStats::default(),
            backend,
            compact_min_dead: compact_min_dead.max(1),
        }
    }

    /// Re-create the legacy eager layout: every domain queue pre-sized
    /// for `capacity` pending events and one `domains * capacity` slot
    /// reservation (saturating, so huge shapes no longer overflow the
    /// multiply). Only the scale benchmarks call this, to measure the
    /// pre-refactor footprint against the lazy default; behavior is
    /// reservation-only and therefore digest-neutral.
    pub fn materialize_eager(&mut self, capacity: usize) {
        for q in self.queues.iter_mut() {
            q.materialize(capacity);
        }
        let total = self.queues.len().saturating_mul(capacity);
        self.slots.reserve(total.saturating_sub(self.slots.len()));
        self.heads.reserve(self.queues.len());
    }

    /// Heap bytes currently reserved by the engine: per-domain queues,
    /// the payload slab, the free list, and the merge front. The
    /// accounting hook behind `Machine::resident_bytes_estimate`.
    pub fn resident_bytes(&self) -> usize {
        self.queues.capacity() * std::mem::size_of::<DomainQueue>()
            + self
                .queues
                .iter()
                .map(|q| q.resident_bytes())
                .sum::<usize>()
            + self.heads.capacity() * std::mem::size_of::<Reverse<(Cycle, u64, u32)>>()
            + self.slots.capacity() * std::mem::size_of::<Option<SlabEntry>>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }

    /// The queue structure backing each domain.
    pub fn backend(&self) -> EngineBackend {
        self.backend
    }

    /// Calendar bucket-width adaptations so far, summed over domains
    /// (always 0 on the heap backend).
    pub fn calendar_resizes(&self) -> u64 {
        self.queues.iter().map(|q| q.calendar_resizes()).sum()
    }

    /// Number of event domains.
    pub fn domains(&self) -> u32 {
        self.queues.len() as u32
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Cycle of the last processed event (never parked at a
    /// `pop_until` bound, unlike [`Engine::now`]).
    #[inline]
    pub fn last_event_cycle(&self) -> Cycle {
        self.last_event
    }

    /// Number of events processed so far.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.stats.processed
    }

    /// Occupancy / churn counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Schedule `kind` at absolute cycle `at` in domain 0. Scheduling in
    /// the past is a logic error in the caller.
    pub fn schedule(&mut self, at: Cycle, kind: EvKind) -> EvHandle {
        self.schedule_dom(0, at, kind)
    }

    /// Schedule `kind` `delta` cycles from now, in domain 0.
    pub fn schedule_in(&mut self, delta: Cycle, kind: EvKind) -> EvHandle {
        self.schedule_dom(0, self.now + delta, kind)
    }

    /// Schedule `kind` at absolute cycle `at` in `domain` (clamped to the
    /// engine's shape). Returns a handle usable with [`Engine::cancel`].
    pub fn schedule_dom(&mut self, domain: u32, at: Cycle, kind: EvKind) -> EvHandle {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {} < {}",
            at,
            self.now
        );
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(None);
                (self.slots.len() - 1) as u32
            }
        };
        self.slots[slot as usize] = Some(SlabEntry {
            kind,
            seq,
            dead: false,
        });
        let d = (domain as usize).min(self.queues.len() - 1);
        let q = &mut self.queues[d];
        q.push(Key { at, seq, slot });
        // Only refresh the merge front when this event became the
        // domain's head; otherwise the existing candidate still wins.
        if let Some(top) = q.peek() {
            if top.seq == seq {
                self.heads.push(Reverse((at, seq, d as u32)));
            }
        }
        self.live += 1;
        self.stats.scheduled += 1;
        EvHandle { slot, seq }
    }

    /// Cancel a scheduled event in O(1): the slab slot is marked dead and
    /// the heap entry is discarded lazily at pop (or swept by a
    /// compaction). Returns false if the handle no longer matches a live
    /// pending event (already popped, cancelled, or slot reused).
    pub fn cancel(&mut self, h: EvHandle) -> bool {
        match self.slots.get_mut(h.slot as usize) {
            Some(Some(e)) if e.seq == h.seq && !e.dead => {
                e.dead = true;
                self.live -= 1;
                self.dead += 1;
                self.stats.cancelled += 1;
                if self.dead >= self.compact_min_dead && self.dead > self.live {
                    self.compact();
                }
                true
            }
            _ => false,
        }
    }

    // ---- fast-path (event virtualization) support -------------------------
    //
    // The machine's quiescence fast path lifts pending completions out of
    // the heap into a tiny run queue, retires them inline, and puts any
    // survivors back on exit. Three invariants make that digest-safe:
    // sequence numbers come from the same global counter (`alloc_seq`), a
    // migrated event keeps its original `(at, seq)` key when restored, and
    // the clock advance (`advance_inline`) mirrors exactly what popping
    // the event would have done.

    /// Allocate the next global sequence number without scheduling an
    /// event. The fast path uses this so virtualized completions occupy
    /// the same positions in the total order that `schedule_dom` would
    /// have given them.
    pub fn alloc_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// True if `h` still refers to a live pending event.
    pub fn is_live(&self, h: EvHandle) -> bool {
        matches!(self.slots.get(h.slot as usize),
                 Some(Some(e)) if e.seq == h.seq && !e.dead)
    }

    /// Migrate a pending event out of the engine: the slab entry is
    /// marked dead (so the heap key is discarded when reached) but the
    /// event is *not* counted as cancelled — the caller either retires it
    /// inline or puts it back with [`Engine::restore`]. Returns false if
    /// the handle no longer matches a live event.
    pub fn decommit(&mut self, h: EvHandle) -> bool {
        match self.slots.get_mut(h.slot as usize) {
            Some(Some(e)) if e.seq == h.seq && !e.dead => {
                e.dead = true;
                self.live -= 1;
                self.dead += 1;
                true
            }
            _ => false,
        }
    }

    /// Re-insert a previously decommitted event with its *original*
    /// sequence number, so it reclaims the exact slot in the `(at, seq)`
    /// total order it held before migration. The dead twin left behind by
    /// [`Engine::decommit`] compares equal and is skipped at pop.
    pub fn restore(&mut self, domain: u32, at: Cycle, seq: u64, kind: EvKind) -> EvHandle {
        debug_assert!(
            at >= self.now,
            "restoring into the past: {} < {}",
            at,
            self.now
        );
        let at = at.max(self.now);
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(None);
                (self.slots.len() - 1) as u32
            }
        };
        self.slots[slot as usize] = Some(SlabEntry {
            kind,
            seq,
            dead: false,
        });
        let d = (domain as usize).min(self.queues.len() - 1);
        self.queues[d].push(Key { at, seq, slot });
        // Restores are rare (fast-path exit); unconditionally offering a
        // merge-front candidate is cheaper than disambiguating the dead
        // twin, and peek_valid drops stale candidates anyway.
        self.heads.push(Reverse((at, seq, d as u32)));
        self.live += 1;
        EvHandle { slot, seq }
    }

    /// Fast-path clock advance: jump to `at` exactly as popping an event
    /// there would have, counting the retired completion and the cycles
    /// that never touched the heap.
    pub fn advance_inline(&mut self, at: Cycle) {
        debug_assert!(at >= self.now);
        self.stats.fastforward_cycles += at.saturating_sub(self.now);
        self.stats.coalesced += 1;
        self.now = at;
        self.last_event = at;
    }

    /// Repair the merge front until its top candidate matches the real
    /// head of its domain queue, and return that key (which may point at
    /// a dead slab entry). `seq` uniqueness makes the match exact.
    fn peek_valid(&mut self) -> Option<(Cycle, u64, u32)> {
        while let Some(&Reverse((at, seq, d))) = self.heads.peek() {
            match self.queues[d as usize].peek() {
                Some(k) if k.at == at && k.seq == seq => return Some((at, seq, d)),
                _ => {
                    self.heads.pop();
                }
            }
        }
        None
    }

    /// Pop the validated head of `domain`. Returns `None` if it was a
    /// cancelled (dead) entry, which is discarded and counted.
    fn pop_head(&mut self, domain: u32) -> Option<Event> {
        self.heads.pop();
        let q = &mut self.queues[domain as usize];
        let k = q.pop().expect("validated head must exist");
        if let Some(next) = q.peek() {
            self.heads.push(Reverse((next.at, next.seq, domain)));
        }
        let entry = self.slots[k.slot as usize]
            .take()
            .expect("heap key must have a slab entry");
        self.free.push(k.slot);
        if entry.dead {
            self.dead -= 1;
            self.stats.stale_discarded += 1;
            return None;
        }
        self.live -= 1;
        debug_assert!(k.at >= self.now);
        self.now = k.at;
        self.last_event = k.at;
        self.stats.processed += 1;
        Some(Event {
            at: k.at,
            seq: k.seq,
            kind: entry.kind,
        })
    }

    /// Pop the next event, advancing the clock. Returns `None` when no
    /// live events are pending. Cancelled events are skipped silently
    /// and do not advance the clock.
    pub fn pop(&mut self) -> Option<Event> {
        loop {
            let (_, _, d) = self.peek_valid()?;
            if let Some(ev) = self.pop_head(d) {
                return Some(ev);
            }
        }
    }

    /// Pop the next event only if it fires at or before `bound`
    /// (clock-stop support: run the machine to an exact cycle, and the
    /// epoch-bound check of the conservative parallel protocol). When
    /// nothing live remains in range, the clock parks at the boundary.
    pub fn pop_until(&mut self, bound: Cycle) -> Option<Event> {
        loop {
            match self.peek_valid() {
                Some((at, _, d)) if at <= bound => {
                    if let Some(ev) = self.pop_head(d) {
                        return Some(ev);
                    }
                }
                _ => {
                    if self.now < bound {
                        self.now = bound;
                    }
                    return None;
                }
            }
        }
    }

    /// `(cycle, seq)` of the next live pending event, without popping it
    /// — the merge key callers need to interleave an external timer
    /// stream (the closed-form noise wheel) against the engine.
    /// Cancelled entries encountered on the way are discarded.
    pub fn peek_key(&mut self) -> Option<(Cycle, u64)> {
        loop {
            let (at, seq, d) = self.peek_valid()?;
            let k = self.queues[d as usize].peek().expect("validated head");
            let head_dead = self.slots[k.slot as usize]
                .as_ref()
                .map(|e| e.dead)
                .unwrap_or(true);
            if head_dead {
                self.pop_head(d);
                continue;
            }
            return Some((at, seq));
        }
    }

    /// Cycle of the next live pending event, without popping it.
    /// Cancelled entries encountered on the way are discarded.
    pub fn peek_at(&mut self) -> Option<Cycle> {
        self.peek_key().map(|(at, _)| at)
    }

    /// Closed-form timer advance: move the clock to `at` exactly as
    /// popping an event there would have, counting it as processed. The
    /// caller owns the event's payload (it never entered a queue).
    pub fn advance_virtual(&mut self, at: Cycle) {
        debug_assert!(at >= self.now);
        self.now = at;
        self.last_event = at;
        self.stats.processed += 1;
    }

    /// True if no live events are pending.
    pub fn is_idle(&self) -> bool {
        self.live == 0
    }

    /// Pending live event count (cancelled-but-unswept events excluded).
    pub fn pending(&self) -> usize {
        self.live
    }

    /// Drop every dead entry from every queue and rebuild the merge
    /// front. Triggered when the dead fraction crosses the threshold in
    /// [`Engine::cancel`]; also callable directly.
    pub fn compact(&mut self) {
        self.stats.compactions += 1;
        let Engine {
            queues,
            slots,
            free,
            ..
        } = self;
        for q in queues.iter_mut() {
            if q.len() == 0 {
                continue;
            }
            for k in q.drain_all() {
                let dead = slots[k.slot as usize]
                    .as_ref()
                    .map(|e| e.dead)
                    .unwrap_or(true);
                if dead {
                    slots[k.slot as usize] = None;
                    free.push(k.slot);
                } else {
                    q.push(k);
                }
            }
        }
        self.heads.clear();
        for (d, q) in self.queues.iter_mut().enumerate() {
            if let Some(k) = q.peek() {
                self.heads.push(Reverse((k.at, k.seq, d as u32)));
            }
        }
        self.dead = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut e = Engine::new();
        e.schedule(30, EvKind::Kernel { node: 0, tag: 3 });
        e.schedule(10, EvKind::Kernel { node: 0, tag: 1 });
        e.schedule(20, EvKind::Kernel { node: 0, tag: 2 });
        let tags: Vec<u64> = std::iter::from_fn(|| e.pop())
            .map(|ev| match ev.kind {
                EvKind::Kernel { tag, .. } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, vec![1, 2, 3]);
        assert_eq!(e.now(), 30);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut e = Engine::new();
        for tag in 0..10 {
            e.schedule(100, EvKind::Kernel { node: 0, tag });
        }
        let tags: Vec<u64> = std::iter::from_fn(|| e.pop())
            .map(|ev| match ev.kind {
                EvKind::Kernel { tag, .. } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pop_until_respects_bound() {
        let mut e = Engine::new();
        e.schedule(10, EvKind::Kernel { node: 0, tag: 1 });
        e.schedule(50, EvKind::Kernel { node: 0, tag: 2 });
        assert!(e.pop_until(20).is_some());
        assert!(e.pop_until(20).is_none());
        // Clock parks at the bound, not at the next event.
        assert_eq!(e.now(), 20);
        assert_eq!(e.pending(), 1);
        assert!(e.pop_until(50).is_some());
        assert_eq!(e.now(), 50);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut e = Engine::new();
        e.schedule(10, EvKind::Kernel { node: 0, tag: 1 });
        e.pop();
        e.schedule_in(5, EvKind::Kernel { node: 0, tag: 2 });
        let ev = e.pop().unwrap();
        assert_eq!(ev.at, 15);
    }

    #[test]
    fn processed_counter() {
        let mut e = Engine::new();
        e.schedule(1, EvKind::Kernel { node: 0, tag: 0 });
        e.schedule(2, EvKind::Kernel { node: 0, tag: 0 });
        assert_eq!(e.processed(), 0);
        e.pop();
        e.pop();
        assert_eq!(e.processed(), 2);
        assert!(e.is_idle());
    }

    #[test]
    fn sharded_pop_order_matches_global_order() {
        // The same schedule stream through a 1-domain and an 8-domain
        // engine must pop in the identical (at, seq) order.
        let mut seq1 = Engine::new();
        let mut seq8 = Engine::with_shape(8, 4);
        let ats = [40u64, 12, 12, 99, 5, 40, 77, 5, 63, 12, 100, 0];
        for (i, &at) in ats.iter().enumerate() {
            let kind = EvKind::Kernel {
                node: i as u32,
                tag: i as u64,
            };
            seq1.schedule(at, kind.clone());
            seq8.schedule_dom(i as u32 % 8, at, kind);
        }
        loop {
            let a = seq1.pop();
            let b = seq8.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(seq1.now(), seq8.now());
    }

    #[test]
    fn cancel_skips_event_and_counts() {
        let mut e = Engine::new();
        let h1 = e.schedule(10, EvKind::Kernel { node: 0, tag: 1 });
        e.schedule(20, EvKind::Kernel { node: 0, tag: 2 });
        assert_eq!(e.pending(), 2);
        assert!(e.cancel(h1));
        assert!(!e.cancel(h1), "double cancel must fail");
        assert_eq!(e.pending(), 1);
        let ev = e.pop().unwrap();
        assert!(matches!(ev.kind, EvKind::Kernel { tag: 2, .. }));
        // The cancelled event neither advanced the clock to 10 first nor
        // counted as processed.
        assert_eq!(e.now(), 20);
        assert_eq!(e.processed(), 1);
        assert_eq!(e.stats().cancelled, 1);
        assert_eq!(e.stats().stale_discarded, 1);
        assert!(e.pop().is_none());
    }

    #[test]
    fn cancelled_head_does_not_block_pop_until() {
        let mut e = Engine::new();
        let h = e.schedule(10, EvKind::Kernel { node: 0, tag: 1 });
        e.schedule(50, EvKind::Kernel { node: 0, tag: 2 });
        e.cancel(h);
        // Dead head at 10 is within bound; it must be discarded without
        // surfacing, and the live event at 50 stays for later.
        assert!(e.pop_until(20).is_none());
        assert_eq!(e.now(), 20);
        assert_eq!(e.pending(), 1);
        assert_eq!(e.peek_at(), Some(50));
    }

    #[test]
    fn handle_does_not_cancel_reused_slot() {
        let mut e = Engine::new();
        let h1 = e.schedule(10, EvKind::Kernel { node: 0, tag: 1 });
        e.pop();
        // Slot is recycled for a new event; the stale handle must not
        // touch it.
        let h2 = e.schedule(20, EvKind::Kernel { node: 0, tag: 2 });
        assert!(!e.cancel(h1));
        assert_eq!(e.pending(), 1);
        assert!(e.cancel(h2));
        assert!(e.pop().is_none());
    }

    #[test]
    fn threshold_compaction_sweeps_dead_entries() {
        let mut e = Engine::new();
        let handles: Vec<EvHandle> = (0..200)
            .map(|i| e.schedule(i, EvKind::Kernel { node: 0, tag: i }))
            .collect();
        // Cancel from the back so the dead set exceeds the live set.
        for h in handles.iter().skip(60).rev() {
            e.cancel(*h);
        }
        assert!(e.stats().compactions >= 1, "threshold must trigger");
        assert_eq!(e.pending(), 60);
        let mut popped = 0;
        while let Some(ev) = e.pop() {
            assert!(matches!(ev.kind, EvKind::Kernel { tag, .. } if tag < 60));
            popped += 1;
        }
        assert_eq!(popped, 60);
        // Compaction swept the bulk of the dead entries wholesale; only
        // the ones cancelled after the sweep hit the lazy pop path.
        assert_eq!(e.stats().cancelled, 140);
        assert!(e.stats().stale_discarded < e.stats().cancelled / 2);
    }

    #[test]
    fn peek_at_reports_next_live_cycle() {
        let mut e = Engine::with_shape(4, 0);
        assert_eq!(e.peek_at(), None);
        let h = e.schedule_dom(1, 7, EvKind::Kernel { node: 1, tag: 0 });
        e.schedule_dom(3, 30, EvKind::Kernel { node: 3, tag: 1 });
        assert_eq!(e.peek_at(), Some(7));
        e.cancel(h);
        assert_eq!(e.peek_at(), Some(30));
        assert_eq!(e.pop().unwrap().at, 30);
        assert_eq!(e.peek_at(), None);
    }

    #[test]
    fn slab_reuses_slots() {
        let mut e = Engine::new();
        for round in 0..50u64 {
            e.schedule(
                round,
                EvKind::Kernel {
                    node: 0,
                    tag: round,
                },
            );
            e.pop();
        }
        // One slot in flight at a time: the slab must not grow past a
        // single entry.
        assert_eq!(e.slots.len(), 1);
    }

    #[test]
    fn idle_domains_reserve_no_queue_memory() {
        for backend in [EngineBackend::Heap, EngineBackend::Calendar] {
            let e = Engine::with_config(4096, 32, backend, 64);
            // A freshly built engine holds only the queue spine: no
            // per-domain heaps, no slot reservation.
            let lazy = e.resident_bytes();
            let spine = 4096 * std::mem::size_of::<DomainQueue>();
            assert!(lazy <= spine, "{backend:?}: {lazy} > spine {spine}");
            // The legacy eager layout is dramatically larger — this gap
            // is what fig_scale measures as bytes/node.
            let mut eager = Engine::with_config(4096, 32, backend, 64);
            eager.materialize_eager(32);
            assert!(
                eager.resident_bytes() >= 5 * lazy,
                "{backend:?}: eager {} vs lazy {lazy}",
                eager.resident_bytes()
            );
        }
        // Guard: a shape whose domains * capacity product would have
        // overflowed the old one-shot reservation must now construct and
        // run without reserving anything.
        let mut huge = Engine::with_config(1024, usize::MAX / 4, EngineBackend::Heap, 64);
        let h = huge.schedule_dom(7, 5, EvKind::Kernel { node: 7, tag: 0 });
        assert!(huge.is_live(h));
        assert_eq!(huge.pop().unwrap().at, 5);
    }

    #[test]
    fn last_event_cycle_ignores_parking() {
        let mut e = Engine::new();
        e.schedule(10, EvKind::Kernel { node: 0, tag: 1 });
        e.pop();
        assert!(e.pop_until(500).is_none());
        assert_eq!(e.now(), 500);
        assert_eq!(e.last_event_cycle(), 10);
    }

    #[test]
    fn decommit_then_restore_reclaims_total_order_slot() {
        // A migrated event put back with its original seq pops exactly
        // where it would have without the round trip — including against
        // a same-cycle rival scheduled later (higher seq).
        let mut e = Engine::new();
        e.schedule(10, EvKind::Kernel { node: 0, tag: 1 });
        let h = e.schedule(20, EvKind::Kernel { node: 0, tag: 2 });
        e.schedule(20, EvKind::Kernel { node: 0, tag: 3 });
        let seq = h.seq();
        assert!(e.decommit(h));
        assert!(!e.is_live(h), "decommitted handle must read dead");
        assert!(!e.decommit(h), "double decommit must fail");
        assert_eq!(e.pending(), 2);
        let h2 = e.restore(0, 20, seq, EvKind::Kernel { node: 0, tag: 2 });
        assert!(e.is_live(h2));
        assert_eq!(h2.seq(), seq);
        assert_eq!(e.pending(), 3);
        let tags: Vec<u64> = std::iter::from_fn(|| e.pop())
            .map(|ev| match ev.kind {
                EvKind::Kernel { tag, .. } => tag,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tags, vec![1, 2, 3]);
        // The dead twin was skipped silently: discarded, not cancelled.
        assert_eq!(e.stats().stale_discarded, 1);
        assert_eq!(e.stats().cancelled, 0);
        assert_eq!(e.stats().processed, 3);
    }

    #[test]
    fn decommitted_event_retired_inline_never_pops() {
        let mut e = Engine::new();
        let h = e.schedule(40, EvKind::Kernel { node: 0, tag: 7 });
        e.schedule(50, EvKind::Kernel { node: 0, tag: 8 });
        assert!(e.decommit(h));
        // Inline retirement: the clock jumps as if the event popped.
        e.advance_inline(40);
        assert_eq!(e.now(), 40);
        assert_eq!(e.last_event_cycle(), 40);
        let ev = e.pop().expect("live rival still queued");
        assert_eq!(ev.at, 50);
        assert!(e.pop().is_none());
        assert_eq!(e.stats().coalesced, 1);
        assert_eq!(e.stats().fastforward_cycles, 40);
        assert_eq!(e.stats().stale_discarded, 1);
    }

    #[test]
    fn alloc_seq_shares_the_schedule_counter() {
        // Virtualized completions draw from the same counter as real
        // ones, so a later schedule always sorts after an earlier
        // alloc_seq at the same cycle.
        let mut e = Engine::new();
        let s0 = e.alloc_seq();
        let h = e.schedule(10, EvKind::Kernel { node: 0, tag: 0 });
        assert_eq!(h.seq(), s0 + 1);
        assert!(e.alloc_seq() > h.seq());
        // And restoring at the reserved seq beats the scheduled rival.
        e.restore(0, 10, s0, EvKind::Kernel { node: 0, tag: 99 });
        let first = e.pop().unwrap();
        assert!(matches!(first.kind, EvKind::Kernel { tag: 99, .. }));
    }

    #[test]
    fn heap_and_calendar_backends_pop_identically() {
        // The calendar backend must pop the exact (at, seq) stream the
        // heap backend does, through schedules, ties, cancels, and a
        // decommit/restore round trip.
        let mut heap = Engine::with_config(4, 8, EngineBackend::Heap, 64);
        let mut cal = Engine::with_config(4, 8, EngineBackend::Calendar, 64);
        let mut x = 0x2545_f491_4f6c_dd1du64;
        let mut handles = Vec::new();
        for i in 0..500u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let at = x % 3_000_000; // spans many calendar windows
            let kind = EvKind::Kernel {
                node: (i % 4) as u32,
                tag: i,
            };
            let hh = heap.schedule_dom((i % 4) as u32, at, kind.clone());
            let hc = cal.schedule_dom((i % 4) as u32, at, kind);
            if i % 7 == 0 {
                handles.push((hh, hc, at));
            }
        }
        for tag in 1_000..1_010u64 {
            // Deliberate same-cycle ties break by seq on both backends.
            heap.schedule(1_500_000, EvKind::Kernel { node: 0, tag });
            cal.schedule(1_500_000, EvKind::Kernel { node: 0, tag });
        }
        for (hh, hc, _) in handles.iter().take(30) {
            assert_eq!(heap.cancel(*hh), cal.cancel(*hc));
        }
        let &(hh, hc, at) = handles.last().expect("handles sampled");
        assert!(heap.is_live(hh));
        let seq = hh.seq();
        heap.decommit(hh);
        cal.decommit(hc);
        heap.restore(
            1,
            at,
            seq,
            EvKind::Kernel {
                node: 1,
                tag: 9_999,
            },
        );
        cal.restore(
            1,
            at,
            seq,
            EvKind::Kernel {
                node: 1,
                tag: 9_999,
            },
        );
        loop {
            let a = heap.pop();
            let b = cal.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(heap.now(), cal.now());
        assert_eq!(heap.stats().processed, cal.stats().processed);
        assert_eq!(heap.stats().stale_discarded, cal.stats().stale_discarded);
    }

    #[test]
    fn calendar_sparse_overflow_resizes_width() {
        // Events spaced far beyond the window span park in the overflow
        // heap; draining them one near-empty refill at a time trips the
        // sparse-side resize, which doubles the bucket width. The count
        // must exceed CAL_SPARSE_KEYS or the domain never leaves plain
        // heap mode (see calendar_stays_in_heap_mode_below_threshold).
        let mut e = Engine::with_config(1, 0, EngineBackend::Calendar, 64);
        let span = CAL_INIT_WIDTH * CAL_BUCKETS as u64;
        let n = CAL_SPARSE_KEYS as u64 + 16;
        let ats: Vec<u64> = (0..n).map(|i| i * span * 4).collect();
        for (i, &at) in ats.iter().enumerate() {
            e.schedule(
                at,
                EvKind::Kernel {
                    node: 0,
                    tag: i as u64,
                },
            );
        }
        let mut popped = Vec::new();
        while let Some(ev) = e.pop() {
            popped.push(ev.at);
        }
        assert_eq!(popped, ats);
        assert!(
            e.calendar_resizes() >= 1,
            "sparse refills must widen buckets"
        );
    }

    #[test]
    fn calendar_stays_in_heap_mode_below_threshold() {
        // At or below CAL_SPARSE_KEYS live keys the calendar never
        // materializes its bucket ring — it is a plain min-heap with a
        // plain min-heap's footprint — yet pops the identical order.
        let mut e = Engine::with_config(1, 0, EngineBackend::Calendar, 64);
        let mut h = Engine::with_config(1, 0, EngineBackend::Heap, 64);
        let span = CAL_INIT_WIDTH * CAL_BUCKETS as u64;
        let mut ats: Vec<u64> = (0..CAL_SPARSE_KEYS as u64).map(|i| i * span).collect();
        for (i, &at) in ats.iter().enumerate() {
            e.schedule(
                at,
                EvKind::Kernel {
                    node: 0,
                    tag: i as u64,
                },
            );
            h.schedule(
                at,
                EvKind::Kernel {
                    node: 0,
                    tag: i as u64,
                },
            );
        }
        // A sparse calendar's only key storage is its overflow heap, so
        // its heap bytes match the heap backend's; a materialized ring
        // would add CAL_BUCKETS BinaryHeaps on top.
        assert!(
            e.resident_bytes() <= h.resident_bytes() + CAL_BUCKETS,
            "sparse domain allocated a bucket ring: calendar {} B vs heap {} B",
            e.resident_bytes(),
            h.resident_bytes()
        );
        let mut popped = Vec::new();
        while let Some(ev) = e.pop() {
            popped.push(ev.at);
        }
        ats.sort_unstable();
        assert_eq!(popped, ats, "heap mode must preserve min order");
        assert_eq!(e.calendar_resizes(), 0, "no refill may run in heap mode");
    }

    #[test]
    fn calendar_dense_refill_narrows_width() {
        let mut e = Engine::with_config(1, 0, EngineBackend::Calendar, 64);
        // An early key anchors the window at 0 so the far cluster stays
        // in overflow until it drains.
        e.schedule(
            1,
            EvKind::Kernel {
                node: 0,
                tag: 9_999,
            },
        );
        let base = CAL_INIT_WIDTH * CAL_BUCKETS as u64 * 10;
        let n = CAL_BUCKETS as u64 * 8 + 64;
        for i in 0..n {
            e.schedule(base + i * 7, EvKind::Kernel { node: 0, tag: i });
        }
        assert_eq!(e.pop().unwrap().at, 1);
        // Draining the cluster pulls it into one flooded window (dense
        // refill), which narrows the bucket width for the next one.
        let mut last = 0;
        for _ in 0..n {
            let ev = e.pop().expect("cluster event");
            assert!(ev.at >= last);
            last = ev.at;
        }
        assert!(e.pop().is_none());
        assert!(
            e.calendar_resizes() >= 1,
            "dense refill must narrow buckets"
        );
    }

    #[test]
    fn calendar_early_keys_pop_first() {
        // A restore behind the window base (legal: restore only requires
        // at >= now) lands in the early heap and still pops first.
        let mut e = Engine::with_config(1, 0, EngineBackend::Calendar, 64);
        e.schedule(10_000_000, EvKind::Kernel { node: 0, tag: 1 });
        let h = e.schedule(10_000_001, EvKind::Kernel { node: 0, tag: 2 });
        let seq = h.seq();
        assert!(e.decommit(h));
        e.restore(0, 5, seq, EvKind::Kernel { node: 0, tag: 2 });
        assert_eq!(e.pop().unwrap().at, 5);
        assert_eq!(e.pop().unwrap().at, 10_000_000);
        assert!(e.pop().is_none(), "dead twin discarded silently");
        assert_eq!(e.stats().stale_discarded, 1);
    }

    #[test]
    fn compact_floor_is_tunable_per_backend() {
        for backend in [EngineBackend::Heap, EngineBackend::Calendar] {
            let mut e = Engine::with_config(1, 0, backend, 4);
            let hs: Vec<EvHandle> = (0..10)
                .map(|i| e.schedule(i, EvKind::Kernel { node: 0, tag: i }))
                .collect();
            for h in hs.iter().skip(4) {
                e.cancel(*h);
            }
            assert!(
                e.stats().compactions >= 1,
                "{backend:?}: floor 4 must trigger"
            );
            let mut e = Engine::with_config(1, 0, backend, 1_000);
            let hs: Vec<EvHandle> = (0..10)
                .map(|i| e.schedule(i, EvKind::Kernel { node: 0, tag: i }))
                .collect();
            for h in hs {
                e.cancel(h);
            }
            assert_eq!(
                e.stats().compactions,
                0,
                "{backend:?}: floor 1000 must not trigger"
            );
            assert!(e.pop().is_none());
        }
    }

    #[test]
    fn advance_virtual_matches_pop_clock() {
        let mut popped = Engine::new();
        popped.schedule(123, EvKind::Kernel { node: 0, tag: 0 });
        popped.pop();
        let mut virt = Engine::new();
        virt.advance_virtual(123);
        assert_eq!(virt.now(), popped.now());
        assert_eq!(virt.last_event_cycle(), popped.last_event_cycle());
        assert_eq!(virt.processed(), popped.processed());
    }

    #[test]
    fn advance_inline_matches_pop_accounting() {
        // Same clock positions whether an event pops or fast-forwards.
        let mut popped = Engine::new();
        popped.schedule(100, EvKind::Kernel { node: 0, tag: 0 });
        popped.pop();
        let mut inline = Engine::new();
        let h = inline.schedule(100, EvKind::Kernel { node: 0, tag: 0 });
        inline.decommit(h);
        inline.advance_inline(100);
        assert_eq!(inline.now(), popped.now());
        assert_eq!(inline.last_event_cycle(), popped.last_event_cycle());
    }
}
