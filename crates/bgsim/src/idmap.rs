//! `IdMap`: a dense map keyed by monotonically increasing `u64` ids.
//!
//! The simulator's in-flight tables (network messages, function-ship
//! requests) allocate their keys from a per-table monotonic counter and
//! retire them shortly after. A `HashMap` fits that access pattern but
//! pays hashing and per-entry overhead on every touch and — worse —
//! iterates in an implementation-defined order, which forced
//! iterate-then-sort workarounds wherever iteration feeds the
//! deterministic event stream. `IdMap` instead stores entries in a
//! sliding window `[head, head + slots.len())` of a `VecDeque`, indexed
//! by `id - head`:
//!
//! * insert/lookup/remove are O(1) (an offset, no hashing);
//! * iteration is ascending-id for free — i.e. allocation order, which
//!   is exactly the deterministic order the fault paths need;
//! * the window trims from the front as old ids retire, so memory
//!   tracks the *live span* of ids, not the total ever allocated.
//!
//! The one pattern it does not suit is long-lived low ids mixed with a
//! fast-moving counter (the window would stretch); the simulator's
//! tables retire ids within a bounded latency, so the window stays
//! tight in practice.

use std::collections::VecDeque;

#[derive(Debug, Clone)]
pub struct IdMap<V> {
    /// Id of `slots[0]`.
    head: u64,
    slots: VecDeque<Option<V>>,
    live: usize,
}

impl<V> Default for IdMap<V> {
    fn default() -> Self {
        IdMap::new()
    }
}

impl<V> IdMap<V> {
    pub fn new() -> IdMap<V> {
        IdMap {
            head: 0,
            slots: VecDeque::new(),
            live: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    #[inline]
    fn offset(&self, id: u64) -> Option<usize> {
        let off = id.checked_sub(self.head)?;
        (off < self.slots.len() as u64).then_some(off as usize)
    }

    /// Insert `v` under `id`. Ids come from a monotonic counter, so
    /// inserts land at (or just past) the back of the window; an empty
    /// map re-anchors its window on the new id. Returns the previous
    /// value if `id` was already present.
    pub fn insert(&mut self, id: u64, v: V) -> Option<V> {
        if self.live == 0 && self.slots.is_empty() {
            self.head = id;
        }
        assert!(
            id >= self.head,
            "IdMap: id {id} below window head {} (ids must be monotonic)",
            self.head
        );
        let off = id - self.head;
        while self.slots.len() as u64 <= off {
            self.slots.push_back(None);
        }
        let old = self.slots[off as usize].replace(v);
        if old.is_none() {
            self.live += 1;
        }
        old
    }

    pub fn get(&self, id: u64) -> Option<&V> {
        self.offset(id).and_then(|o| self.slots[o].as_ref())
    }

    pub fn get_mut(&mut self, id: u64) -> Option<&mut V> {
        self.offset(id).and_then(|o| self.slots[o].as_mut())
    }

    pub fn contains(&self, id: u64) -> bool {
        self.get(id).is_some()
    }

    /// Remove and return the entry under `id`, trimming the retired
    /// front of the window so memory tracks the live id span.
    pub fn remove(&mut self, id: u64) -> Option<V> {
        let o = self.offset(id)?;
        let v = self.slots[o].take();
        if v.is_some() {
            self.live -= 1;
        }
        while let Some(None) = self.slots.front() {
            self.slots.pop_front();
            self.head += 1;
        }
        if self.slots.is_empty() && self.slots.capacity() > 1024 {
            // A drained table releases a stretched window's backing
            // store instead of carrying it for the rest of the run.
            self.slots = VecDeque::new();
        }
        v
    }

    /// Drop every entry and release the window. The next insert
    /// re-anchors, so a cleared map accepts any id again.
    pub fn clear(&mut self) {
        self.head = 0;
        self.slots = VecDeque::new();
        self.live = 0;
    }

    /// Entries in ascending-id order (= allocation order).
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(move |(i, s)| s.as_ref().map(|v| (self.head + i as u64, v)))
    }

    /// Live ids in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.iter().map(|(id, _)| id)
    }

    /// Heap bytes currently reserved by the window.
    pub fn resident_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Option<V>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = IdMap::new();
        assert!(m.is_empty());
        for id in 0..10u64 {
            assert!(m.insert(id, id * 2).is_none());
        }
        assert_eq!(m.len(), 10);
        assert_eq!(m.get(3), Some(&6));
        assert_eq!(m.get_mut(3).map(|v| std::mem::replace(v, 7)), Some(6));
        assert_eq!(m.remove(3), Some(7));
        assert_eq!(m.remove(3), None);
        assert_eq!(m.get(3), None);
        assert!(!m.contains(3));
        assert!(m.contains(4));
        assert_eq!(m.len(), 9);
    }

    #[test]
    fn iteration_is_ascending_id_order() {
        let mut m = IdMap::new();
        for id in 100..130u64 {
            m.insert(id, ());
        }
        m.remove(105);
        m.remove(111);
        let keys: Vec<u64> = m.keys().collect();
        let mut expect: Vec<u64> = (100..130).collect();
        expect.retain(|&k| k != 105 && k != 111);
        assert_eq!(keys, expect);
    }

    #[test]
    fn window_trims_as_old_ids_retire() {
        let mut m = IdMap::new();
        for id in 0..1000u64 {
            m.insert(id, [0u8; 64]);
            if id >= 4 {
                m.remove(id - 4);
            }
        }
        assert_eq!(m.len(), 4);
        // The window follows the live span; it never holds all 1000.
        assert!(m.slots.len() <= 8, "window stretched to {}", m.slots.len());
        for id in 996..1000 {
            m.remove(id);
        }
        assert!(m.is_empty());
        // An empty map re-anchors on the next insert, far from head 0.
        m.insert(5_000_000, [1u8; 64]);
        assert_eq!(m.len(), 1);
        assert!(m.slots.len() == 1);
        assert_eq!(m.keys().collect::<Vec<_>>(), vec![5_000_000]);
    }

    #[test]
    fn drained_stretched_window_releases_memory() {
        let mut m = IdMap::new();
        m.insert(0, 0u64);
        for id in 1..5000u64 {
            m.insert(id, id);
            m.remove(id);
        }
        // Id 0 pinned the window open across 5000 ids.
        assert!(m.resident_bytes() >= 5000 * std::mem::size_of::<Option<u64>>());
        m.remove(0);
        assert_eq!(m.resident_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "monotonic")]
    fn inserting_below_the_window_panics() {
        let mut m = IdMap::new();
        m.insert(10, ());
        m.insert(11, ());
        m.remove(10);
        m.insert(9, ());
    }
}
