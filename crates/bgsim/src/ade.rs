//! A minimal bare-metal diagnostic kernel and a fixed-latency comm model.
//!
//! The paper notes that "the CNK kernel low-core leverages aspects of the
//! Blue Gene/L Advanced Diagnostic Environment" (§III). `AdeKernel` plays
//! that role here: a nearly policy-free kernel with identity translation,
//! FIFO per-core scheduling, and a tiny syscall surface. It exists to
//! exercise the machine executor, to serve as the "runs on partial
//! hardware" bring-up baseline, and to let other crates write tests
//! without pulling in the full CNK/FWK implementations.

use std::collections::{HashMap, VecDeque};

use sysabi::{CoreId, Errno, JobSpec, NodeId, ProcId, Rank, SysReq, SysRet, Tid, UtsName};

use crate::chip;
use crate::features::{Capability, Ease, EaseRange, FeatureEntry, FeatureMatrix};
use crate::machine::{
    BlockKind, BootReport, CommAction, CommCaps, CommModel, JobMap, Kernel, LaunchError,
    MemOpResult, NetMsg, RankInfo, RecvInfo, SimCore, SyscallAction, ThreadState, Workload,
    WorkloadFactory,
};
use crate::op::{CloneArgs, CommOp, Op};

/// The diagnostic kernel.
#[derive(Default)]
pub struct AdeKernel {
    ready: HashMap<u32, VecDeque<Tid>>,
    next_proc: u32,
}

impl AdeKernel {
    pub fn new() -> AdeKernel {
        AdeKernel::default()
    }

    fn requeue(&mut self, core: CoreId, tid: Tid) {
        self.ready.entry(core.0).or_default().push_back(tid);
    }
}

impl Kernel for AdeKernel {
    fn name(&self) -> &'static str {
        "ade"
    }

    fn boot(&mut self, _sc: &mut SimCore, reproducible: bool) -> BootReport {
        // The diagnostic environment does almost nothing at boot.
        let init = if reproducible { 800 } else { 2_000 };
        BootReport {
            kernel: "ade",
            instructions: init + 3_000,
            phases: vec![("lowcore", init), ("units", 3_000)],
        }
    }

    fn reset(&mut self) {
        self.ready.clear();
        self.next_proc = 0;
    }

    fn launch(
        &mut self,
        sc: &mut SimCore,
        spec: &JobSpec,
        factory: &mut dyn WorkloadFactory,
    ) -> Result<JobMap, LaunchError> {
        let ppn = spec.mode.procs_per_node();
        let cpp = spec.mode.cores_per_proc();
        let mut ranks = Vec::new();
        for node in 0..spec.nodes {
            for p in 0..ppn {
                let rank = Rank(node * ppn + p);
                let proc = ProcId(self.next_proc);
                self.next_proc += 1;
                let core = sc.core_of(NodeId(node), p * cpp);
                let wl = factory.main_workload(rank);
                let tid = sc.create_thread(proc, NodeId(node), core, wl);
                ranks.push(RankInfo {
                    rank,
                    proc,
                    node: NodeId(node),
                    main_tid: tid,
                });
            }
        }
        Ok(JobMap { ranks })
    }

    fn syscall(&mut self, sc: &mut SimCore, tid: Tid, req: &SysReq) -> SyscallAction {
        match req {
            SysReq::Uname => SyscallAction::Done {
                ret: SysRet::Uname(self.utsname()),
                cost: 60,
            },
            SysReq::Gettid => SyscallAction::Done {
                ret: SysRet::Val(tid.0 as i64),
                cost: 40,
            },
            SysReq::Getpid => SyscallAction::Done {
                ret: SysRet::Val(sc.thread(tid).proc.0 as i64),
                cost: 40,
            },
            SysReq::Write { data, .. } => SyscallAction::Done {
                ret: SysRet::Val(data.len() as i64),
                cost: 500,
            },
            SysReq::SchedYield => {
                let core = sc.thread(tid).core;
                self.requeue(core, tid);
                SyscallAction::YieldCpu
            }
            SysReq::ExitThread { code } => SyscallAction::ExitThread { code: *code },
            SysReq::ExitGroup { code } => SyscallAction::ExitProc { code: *code },
            _ => SyscallAction::Done {
                ret: SysRet::Err(Errno::ENOSYS),
                cost: 60,
            },
        }
    }

    fn spawn(
        &mut self,
        sc: &mut SimCore,
        parent: Tid,
        _args: &CloneArgs,
        core_hint: Option<u32>,
        child: Box<dyn Workload>,
    ) -> (SysRet, u64) {
        let pt = sc.thread(parent);
        let (proc, node) = (pt.proc, pt.node);
        let local = core_hint.unwrap_or((sc.threads_of(proc).len() as u32) % sc.cores_per_node());
        let core = sc.core_of(node, local % sc.cores_per_node());
        let tid = sc.create_thread(proc, node, core, child);
        if sc.core_idle(core) {
            sc.dispatch(tid);
        } else {
            self.requeue(core, tid);
        }
        (SysRet::Val(tid.0 as i64), 900)
    }

    fn compute_cost(&mut self, sc: &mut SimCore, tid: Tid, op: &Op) -> u64 {
        let node = sc.thread(tid).node;
        let chipc = sc.cfg.chip.clone();
        match op {
            Op::Compute { cycles } => *cycles,
            Op::Daxpy { n, reps } => {
                chip::daxpy_cycles(&chipc, *n, *reps) + sc.refresh_jitter(node)
            }
            Op::Stream { bytes } => {
                let streams = sc.active_streams(node).max(1);
                chip::stream_cycles(&chipc, *bytes, streams) + sc.refresh_jitter(node)
            }
            Op::Flops { flops } => chip::dgemm_cycles(&chipc, *flops) + sc.refresh_jitter(node),
            _ => 1,
        }
    }

    fn mem_touch(
        &mut self,
        sc: &mut SimCore,
        tid: Tid,
        vaddr: u64,
        bytes: u64,
        _write: bool,
    ) -> MemOpResult {
        // Identity mapping; DAC ranges still apply.
        let core = sc.thread(tid).core;
        if sc.dacs[core.idx()].check(vaddr).is_some() {
            let proc = sc.thread(tid).proc;
            sc.defer_kill(proc, 139);
            return MemOpResult {
                cost: 200,
                faulted: true,
            };
        }
        MemOpResult {
            cost: (bytes / 8).max(1),
            faulted: false,
        }
    }

    fn pick_next(&mut self, _sc: &mut SimCore, core: CoreId) -> Option<Tid> {
        self.ready.get_mut(&core.0)?.pop_front()
    }

    fn on_unblock(&mut self, sc: &mut SimCore, tid: Tid) {
        let core = sc.thread(tid).core;
        if sc.core_idle(core) {
            sc.dispatch(tid);
        } else {
            self.requeue(core, tid);
        }
    }

    fn on_exit(&mut self, _sc: &mut SimCore, _tid: Tid) {}

    fn kernel_event(&mut self, _sc: &mut SimCore, _node: NodeId, _tag: u64) {}

    fn net_deliver(&mut self, _sc: &mut SimCore, _msg: NetMsg) {}

    fn on_ipi(&mut self, _sc: &mut SimCore, _core: CoreId, _kind: u32) {}

    fn on_fault(&mut self, _sc: &mut SimCore, _core: CoreId, _kind: u32) {}

    fn translate(&self, _sc: &SimCore, _tid: Tid, vaddr: u64) -> Option<u64> {
        Some(vaddr) // identity
    }

    fn comm_caps(&self, _sc: &SimCore, _tid: Tid) -> CommCaps {
        CommCaps::cnk()
    }

    fn utsname(&self) -> UtsName {
        UtsName {
            sysname: "ADE".to_string(),
            release: sysabi::uname::KernelVersion::new(0, 9, 0, 0),
            machine: "ppc450".to_string(),
        }
    }

    fn features(&self) -> FeatureMatrix {
        FeatureMatrix {
            kernel: "ade",
            entries: vec![FeatureEntry {
                cap: Capability::CycleReproducible,
                use_ease: EaseRange::exact(Ease::Easy),
                implement_ease: None,
            }],
        }
    }
}

/// A fixed-latency, infinite-bandwidth-overlap comm model: every
/// point-to-point op costs the hardware transfer plus a constant software
/// overhead. Good enough for executor tests and bring-up runs.
pub struct FixedLatencyComm {
    job: Option<JobMap>,
    send_overhead: u64,
    /// (dst_rank, tag) → waiting tid
    waiting: HashMap<(u32, u32), Tid>,
    /// Arrived-but-unmatched messages per (dst_rank, tag): (src, bytes).
    unexpected: HashMap<(u32, u32), VecDeque<(u32, u64)>>,
    /// In-flight msg id → (src_rank, dst_rank, tag, bytes).
    inflight: HashMap<u64, (u32, u32, u32, u64)>,
    /// Collective state: arrivals and participants.
    coll_arrived: Vec<Tid>,
    coll_seq: u64,
}

impl FixedLatencyComm {
    pub fn new() -> FixedLatencyComm {
        FixedLatencyComm {
            job: None,
            send_overhead: 400,
            waiting: HashMap::new(),
            unexpected: HashMap::new(),
            inflight: HashMap::new(),
            coll_arrived: Vec::new(),
            coll_seq: 0,
        }
    }

    fn node_of(&self, r: Rank) -> NodeId {
        self.job.as_ref().expect("no job").rank(r).node
    }
}

impl Default for FixedLatencyComm {
    fn default() -> Self {
        Self::new()
    }
}

impl CommModel for FixedLatencyComm {
    fn name(&self) -> &'static str {
        "fixed-latency"
    }

    fn configure_job(&mut self, _sc: &SimCore, job: &JobMap, _caps: CommCaps) {
        self.job = Some(job.clone());
        self.waiting.clear();
        self.unexpected.clear();
        self.inflight.clear();
        self.coll_arrived.clear();
    }

    fn issue(
        &mut self,
        sc: &mut SimCore,
        _caps: &CommCaps,
        tid: Tid,
        rank: Rank,
        op: &CommOp,
    ) -> CommAction {
        match op {
            CommOp::Send { to, bytes, tag, .. } => {
                let src_node = self.node_of(rank);
                let dst_node = self.node_of(*to);
                let id = sc.torus_send(src_node, dst_node, *bytes, *tag as u64, vec![], 0);
                self.inflight.insert(id, (rank.0, to.0, *tag, *bytes));
                CommAction::RunFor {
                    cycles: self.send_overhead,
                }
            }
            CommOp::Recv { tag, .. } => {
                if let Some(q) = self.unexpected.get_mut(&(rank.0, *tag)) {
                    if let Some((src, bytes)) = q.pop_front() {
                        sc.thread_mut(tid).pending_recv = Some(RecvInfo {
                            from: Rank(src),
                            bytes,
                            tag: *tag,
                        });
                        return CommAction::RunFor {
                            cycles: self.send_overhead,
                        };
                    }
                }
                self.waiting.insert((rank.0, *tag), tid);
                CommAction::Block {
                    kind: BlockKind::Recv,
                }
            }
            CommOp::Put { to, bytes, .. }
            | CommOp::Get {
                from: to, bytes, ..
            } => {
                let hops = sc.torus.hops(self.node_of(rank), self.node_of(*to));
                let cycles = self.send_overhead + sc.torus.transfer_cycles(*bytes, hops);
                CommAction::RunFor { cycles }
            }
            CommOp::Barrier | CommOp::Allreduce { .. } => {
                self.coll_arrived.push(tid);
                let n = self.job.as_ref().map_or(1, |j| j.nranks()) as usize;
                if self.coll_arrived.len() == n {
                    self.coll_seq += 1;
                    let done = sc.now() + sc.barrier.cross();
                    for t in self.coll_arrived.drain(..) {
                        sc.schedule_coll_done(t, self.coll_seq, done);
                    }
                }
                CommAction::Block {
                    kind: BlockKind::Coll,
                }
            }
        }
    }

    fn net_deliver(&mut self, sc: &mut SimCore, msg: NetMsg) {
        let Some((src, dst, tag, bytes)) = self.inflight.remove(&msg.id) else {
            return;
        };
        if let Some(tid) = self.waiting.remove(&(dst, tag)) {
            sc.thread_mut(tid).pending_recv = Some(RecvInfo {
                from: Rank(src),
                bytes,
                tag,
            });
            sc.defer_unblock(tid, Some(SysRet::Val(bytes as i64)));
        } else {
            self.unexpected
                .entry((dst, tag))
                .or_default()
                .push_back((src, bytes));
        }
    }
}

/// Convenience: is a thread parked in the ADE ready queue? (test helper)
pub fn ready_len(k: &AdeKernel, core: CoreId) -> usize {
    k.ready.get(&core.0).map_or(0, |q| q.len())
}

/// Assert-style helper for tests: the state of a tid.
pub fn state_of(sc: &SimCore, tid: Tid) -> ThreadState {
    sc.thread(tid).state
}
