//! `bgsim` — a deterministic discrete-event simulator of a Blue Gene/P-like
//! machine, plus the harness that runs kernels and workloads on it.
//!
//! The paper's evaluation runs on physical BG/P hardware: an 850 MHz
//! quad-core PPC450 SoC with L1/L2/L3 caches, a DDR2 controller with
//! self-refresh, a 3D torus with a DMA engine, a collective (tree)
//! network, a global barrier network, clock-stop logic, and Debug Address
//! Compare (DAC) registers. This crate models each of those units at the
//! level the paper's experiments observe them: cycle counts, latencies,
//! bandwidths, noise, and reproducibility.
//!
//! The crate also defines the three plug-in points the rest of the
//! workspace implements:
//!
//! * [`machine::Kernel`] — implemented by the `cnk` and `fwk` crates;
//! * [`machine::CommModel`] — implemented by the `dcmf` crate;
//! * [`machine::Workload`] — implemented by the `workloads` crate.
//!
//! Everything is single-threaded and seeded: two machines constructed with
//! the same configuration and seed produce bit-identical event traces,
//! which is the property Section III of the paper builds its chip-bringup
//! methodology on.

// The simulator core must be panic-free on untrusted input (malformed
// fault scripts and CLI flags reach machine construction); tests may
// still unwrap. Invariants that genuinely cannot fail use documented
// `expect`/`assert` messages. CI enforces this with a clippy run.
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod ade;
pub mod barrier;
pub mod chip;
pub mod collective;
pub mod config;
pub mod cycles;
pub mod dac;
pub mod engine;
pub mod fault;
pub mod features;
pub mod idmap;
pub mod machine;
pub mod mem;
pub mod noise;
pub mod op;
pub mod parsim;
pub mod rng;
pub mod scan;
pub mod script;
pub mod telemetry;
pub mod tlb;
pub mod torus;
pub mod trace;

pub use config::{ChipConfig, MachineConfig, UnitStatus};
pub use cycles::{Cycle, CLOCK_MHZ};
pub use fault::{FaultEvent, FaultKind, FaultSchedule, FaultSpec};
pub use machine::{
    BlockKind, BootReport, CancelCause, CancelToken, CommAction, CommCaps, CommModel, JobMap,
    Kernel, KernelEventTag, LaunchError, LiveHook, Machine, NetDomain, NetMsg, ProgressCtl,
    ProgressReport, ProgressSink, RankInfo, Recorder, SimCore, SyscallAction, Thread, ThreadState,
    WlEnv, Workload, WorkloadFactory,
};
pub use op::{ApiLayer, CloneArgs, CommOp, Op, Protocol};
pub use telemetry::{
    coverage_digest, first_divergence, DivergenceReport, Domain, Hist, MetricId, MetricsRegistry,
    ProfileSnapshot, Profiler, Scope, Slot, Telemetry, TpKind, Tracepoint,
};
