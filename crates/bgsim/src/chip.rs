//! Core/cache/memory timing model.
//!
//! Costs are deterministic functions of the chip configuration and the
//! operation, calibrated so that the paper's anchor numbers fall out:
//! the FWQ quantum — a DAXPY on a 256-element vector repeated 256 times —
//! takes exactly 658,958 cycles on an unloaded core (§V.A), and the only
//! residual variability under CNK is a bounded DRAM-refresh arbitration
//! stall of at most `dram_refresh_stall_max` cycles (< 0.006%).

use rand::rngs::SmallRng;

use crate::config::{ChipConfig, L2BankMap, UnitStatus};
use crate::rng::uniform_incl;

/// Cycles per element for a DAXPY whose operands are L1-resident.
/// PPC450 dual-FPU could in principle retire this faster, but the paper's
/// measured quantum implies ~10 cycles/element for the benchmark loop.
pub const DAXPY_CPE_L1: u64 = 10;
/// Loop entry/exit overhead per DAXPY invocation.
pub const DAXPY_LOOP_OVERHEAD: u64 = 14;
/// Per-sample timing/setup overhead (reading the timebase, loop setup).
pub const DAXPY_SAMPLE_SETUP: u64 = 14;
/// Cycles per element when the working set spills to L3/DDR.
pub const DAXPY_CPE_MEM: u64 = 34;
/// Slowdown factor when the FPU is broken and arithmetic is emulated
/// (bringup configurations, §III).
pub const FPU_EMULATION_FACTOR: u64 = 24;

/// Working-set bytes of a DAXPY on `n` f64 elements (x and y vectors).
#[inline]
pub fn daxpy_working_set(n: u64) -> u64 {
    2 * 8 * n
}

/// Cycles for `reps` DAXPY passes over `n` elements on an unloaded core.
pub fn daxpy_cycles(cfg: &ChipConfig, n: u64, reps: u64) -> u64 {
    let cpe = if daxpy_working_set(n) <= cfg.l1_bytes {
        DAXPY_CPE_L1
    } else {
        DAXPY_CPE_MEM
    };
    let mut per_rep = n * cpe + DAXPY_LOOP_OVERHEAD;
    if cfg.fpu_unit != UnitStatus::Present {
        per_rep *= FPU_EMULATION_FACTOR;
    }
    reps * per_rep + DAXPY_SAMPLE_SETUP
}

/// Penalty multiplier (in percent) for concurrent streaming cores under a
/// given L2 bank mapping (§III: measuring cache effects under "varied
/// mappings of code and data memory traffic to the L2 cache banks").
pub fn l2_conflict_percent(cfg: &ChipConfig, active_streams: u32) -> u64 {
    if active_streams <= 1 {
        return 0;
    }
    let extra = (active_streams - 1) as u64;
    match cfg.l2_bank_map {
        // Interleaving spreads lines across all banks: light contention.
        L2BankMap::Interleaved => 3 * extra,
        // Block mapping concentrates each stream, but streams can collide
        // on the shared banks they straddle.
        L2BankMap::Blocked => 11 * extra,
        // The verification stress mapping folds everything onto a few
        // banks on purpose.
        L2BankMap::ConflictStress => 45 * extra,
    }
}

/// Cycles to stream `bytes` through the memory system with
/// `active_streams` cores doing the same concurrently.
pub fn stream_cycles(cfg: &ChipConfig, bytes: u64, active_streams: u32) -> u64 {
    // Single-core sustained copy bandwidth ≈ 2.7 bytes/cycle through L3
    // when the L3 is healthy; a broken L3 (bringup) bypasses to DDR at a
    // third of that.
    let base_bpc_milli: u64 = match cfg.l3_unit {
        UnitStatus::Present => 2700,
        UnitStatus::Broken => 900,
        UnitStatus::Absent => 600,
    };
    let base = bytes.saturating_mul(1000) / base_bpc_milli.max(1);
    let pen = l2_conflict_percent(cfg, active_streams);
    base + base * pen / 100
}

/// Cycles for `flops` floating-point operations in a blocked-DGEMM-like
/// kernel. The PPC450 "double hummer" peak is 4 flops/cycle; tuned LINPACK
/// reaches ~80% of peak, i.e. 3.2 flops/cycle.
pub fn dgemm_cycles(cfg: &ChipConfig, flops: u64) -> u64 {
    let mut c = (flops * 10) / 32; // 3.2 flops/cycle
    if cfg.fpu_unit != UnitStatus::Present {
        c *= FPU_EMULATION_FACTOR;
    }
    c.max(1)
}

/// The residual per-quantum jitter on an otherwise silent node: DRAM
/// refresh arbitration. Drawn deterministically from the node's stream;
/// bounded by `dram_refresh_stall_max` (39 cycles ⇒ < 0.006% of the FWQ
/// quantum). Zero is included so the minimum is attainable, matching the
/// paper's observation that both kernels reach the same minimum.
pub fn refresh_jitter(cfg: &ChipConfig, rng: &mut SmallRng) -> u64 {
    uniform_incl(rng, 0, cfg.dram_refresh_stall_max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngHub;

    /// The calibration anchor: the paper's FWQ quantum.
    #[test]
    fn fwq_quantum_is_exact() {
        let cfg = ChipConfig::bgp();
        assert_eq!(daxpy_cycles(&cfg, 256, 256), 658_958);
    }

    #[test]
    fn daxpy_spills_cost_more() {
        let cfg = ChipConfig::bgp();
        // 256 elements fit L1 (4 KiB of 32 KiB); 64K elements do not (1 MiB).
        let small = daxpy_cycles(&cfg, 256, 1);
        let big = daxpy_cycles(&cfg, 64 * 1024, 1);
        assert!(
            big > small * (64 * 1024 / 256) * 2,
            "memory-bound daxpy should be >2x slower/elem"
        );
    }

    #[test]
    fn broken_fpu_slows_everything() {
        let mut cfg = ChipConfig::bgp();
        let healthy = daxpy_cycles(&cfg, 256, 256);
        cfg.fpu_unit = UnitStatus::Broken;
        assert!(daxpy_cycles(&cfg, 256, 256) > healthy * 20);
    }

    #[test]
    fn bank_map_ordering() {
        let mut cfg = ChipConfig::bgp();
        let probe = |c: &ChipConfig| stream_cycles(c, 1 << 20, 4);
        cfg.l2_bank_map = L2BankMap::Interleaved;
        let inter = probe(&cfg);
        cfg.l2_bank_map = L2BankMap::Blocked;
        let blocked = probe(&cfg);
        cfg.l2_bank_map = L2BankMap::ConflictStress;
        let stress = probe(&cfg);
        assert!(inter < blocked && blocked < stress);
    }

    #[test]
    fn single_stream_has_no_conflict() {
        let mut cfg = ChipConfig::bgp();
        cfg.l2_bank_map = L2BankMap::ConflictStress;
        assert_eq!(l2_conflict_percent(&cfg, 1), 0);
    }

    #[test]
    fn refresh_jitter_is_bounded_and_attains_zero() {
        let cfg = ChipConfig::bgp();
        let hub = RngHub::new(99);
        let mut rng = hub.stream("jitter");
        let mut saw_zero = false;
        for _ in 0..10_000 {
            let j = refresh_jitter(&cfg, &mut rng);
            assert!(j <= cfg.dram_refresh_stall_max);
            saw_zero |= j == 0;
        }
        assert!(saw_zero);
    }

    #[test]
    fn jitter_fraction_matches_paper_bound() {
        let cfg = ChipConfig::bgp();
        // Max jitter over the FWQ quantum must stay under 0.006%.
        let frac = cfg.dram_refresh_stall_max as f64 / 658_958.0;
        assert!(frac < 0.00006, "jitter fraction {frac}");
    }

    #[test]
    fn broken_l3_reduces_stream_bandwidth() {
        let mut cfg = ChipConfig::bgp();
        let healthy = stream_cycles(&cfg, 1 << 20, 1);
        cfg.l3_unit = UnitStatus::Broken;
        assert!(stream_cycles(&cfg, 1 << 20, 1) > healthy * 2);
    }

    #[test]
    fn dgemm_near_peak() {
        let cfg = ChipConfig::bgp();
        // 3.2 flops/cycle: 3200 flops in 1000 cycles.
        assert_eq!(dgemm_cycles(&cfg, 3200), 1000);
        assert_eq!(dgemm_cycles(&cfg, 0), 1);
    }
}
