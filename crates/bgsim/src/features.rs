//! The capability/ease matrices of Tables II and III.
//!
//! Tables II and III of the paper are qualitative: how easy is it to *use*
//! a capability on CNK vs Linux, and — where it is not available — how
//! hard it would be to *implement*. We encode them as data each kernel
//! crate exposes, so the `bench` harness can regenerate the tables and
//! the tests can cross-check claims against actual kernel behaviour
//! (e.g. "No TLB misses: CNK easy" ⇔ the CNK TLB really never misses).

use std::fmt;

/// Ease of using or implementing a capability.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Ease {
    Easy,
    Medium,
    Hard,
    /// "not avail" in Table II.
    NotAvailable,
}

impl fmt::Display for Ease {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ease::Easy => "easy",
            Ease::Medium => "medium",
            Ease::Hard => "hard",
            Ease::NotAvailable => "not avail",
        };
        f.write_str(s)
    }
}

/// A range of ease (the paper uses entries like "easy - hard").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EaseRange {
    pub lo: Ease,
    pub hi: Ease,
}

impl EaseRange {
    pub const fn exact(e: Ease) -> EaseRange {
        EaseRange { lo: e, hi: e }
    }

    pub const fn range(lo: Ease, hi: Ease) -> EaseRange {
        EaseRange { lo, hi }
    }

    pub fn available(&self) -> bool {
        self.lo != Ease::NotAvailable
    }
}

impl fmt::Display for EaseRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lo == self.hi {
            write!(f, "{}", self.lo)
        } else {
            write!(f, "{} - {}", self.lo, self.hi)
        }
    }
}

/// The capabilities enumerated by Table II (and the Table III subset).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Capability {
    LargePageUse,
    MultipleLargePageSizes,
    LargePhysContiguous,
    NoTlbMisses,
    FullMemoryProtection,
    GeneralDynamicLinking,
    FullMmap,
    PredictableScheduling,
    ThreadOvercommit,
    PerformanceReproducible,
    CycleReproducible,
}

impl Capability {
    pub const ALL: [Capability; 11] = [
        Capability::LargePageUse,
        Capability::MultipleLargePageSizes,
        Capability::LargePhysContiguous,
        Capability::NoTlbMisses,
        Capability::FullMemoryProtection,
        Capability::GeneralDynamicLinking,
        Capability::FullMmap,
        Capability::PredictableScheduling,
        Capability::ThreadOvercommit,
        Capability::PerformanceReproducible,
        Capability::CycleReproducible,
    ];

    pub fn description(self) -> &'static str {
        match self {
            Capability::LargePageUse => "Large page use",
            Capability::MultipleLargePageSizes => "Using multiple large page sizes",
            Capability::LargePhysContiguous => "Large physically contiguous memory",
            Capability::NoTlbMisses => "No TLB misses",
            Capability::FullMemoryProtection => "Full memory protection",
            Capability::GeneralDynamicLinking => "General dynamic linking",
            Capability::FullMmap => "Full mmap support",
            Capability::PredictableScheduling => "Predictable scheduling",
            Capability::ThreadOvercommit => "Over commit of threads",
            Capability::PerformanceReproducible => "Performance reproducible",
            Capability::CycleReproducible => "Cycle reproducible execution",
        }
    }
}

/// One kernel's answers for one capability.
#[derive(Clone, Copy, Debug)]
pub struct FeatureEntry {
    pub cap: Capability,
    /// Table II: ease of *using* the capability.
    pub use_ease: EaseRange,
    /// Table III: ease of *implementing* it where not available (None if
    /// available, matching the paper's table structure).
    pub implement_ease: Option<Ease>,
}

/// A kernel's full feature matrix.
#[derive(Clone, Debug)]
pub struct FeatureMatrix {
    pub kernel: &'static str,
    pub entries: Vec<FeatureEntry>,
}

impl FeatureMatrix {
    pub fn get(&self, cap: Capability) -> Option<&FeatureEntry> {
        self.entries.iter().find(|e| e.cap == cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ease_display() {
        assert_eq!(Ease::Easy.to_string(), "easy");
        assert_eq!(Ease::NotAvailable.to_string(), "not avail");
        assert_eq!(
            EaseRange::range(Ease::Easy, Ease::Hard).to_string(),
            "easy - hard"
        );
        assert_eq!(EaseRange::exact(Ease::Medium).to_string(), "medium");
    }

    #[test]
    fn availability() {
        assert!(EaseRange::exact(Ease::Hard).available());
        assert!(!EaseRange::exact(Ease::NotAvailable).available());
    }

    #[test]
    fn all_capabilities_enumerated() {
        // Table II has 11 rows.
        assert_eq!(Capability::ALL.len(), 11);
        for c in Capability::ALL {
            assert!(!c.description().is_empty());
        }
    }
}
