//! Logic scans and waveform assembly (§III).
//!
//! "Reproducibility enables debugging the hardware via logic scans, which
//! are destructive to the chip state. This technique requires performing
//! logic scans on successive runs, each scan taken one cycle later than on
//! the previous run. The scans are assembled into a logic waveform display
//! that spans hundreds or thousands of cycles."
//!
//! A [`ScanRecord`] is the simulator's equivalent of one destructive scan:
//! a snapshot of selected machine state at an exact cycle. A [`Waveform`]
//! is the assembly of scans from successive reproducible runs.

use crate::cycles::Cycle;

/// Which part of the chip a scan chain reads out.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScanTarget {
    /// Per-core pipeline state (running thread, op progress).
    Cores,
    /// Network interface state (in-flight message count, next arrival).
    Network,
    /// A window of DRAM contents.
    Dram { addr: u64, len: u64 },
    /// Everything at once (full-chip scan).
    Full,
}

/// One destructive scan: the state digest plus a few named probe values
/// a "logic designer" would inspect.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ScanRecord {
    pub cycle: Cycle,
    pub target_desc: &'static str,
    pub digest: u64,
    /// Named probe signals, e.g. ("core0.running", tid).
    pub probes: Vec<(String, u64)>,
}

/// A waveform assembled from per-cycle scans of successive runs.
#[derive(Clone, Debug, Default)]
pub struct Waveform {
    scans: Vec<ScanRecord>,
}

/// Waveform assembly error: scans must come from *reproducible* runs, so
/// cycles must be strictly increasing and contiguous enough to read.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WaveError {
    OutOfOrder,
}

impl Waveform {
    pub fn new() -> Waveform {
        Waveform::default()
    }

    /// Append the scan from the next (one-cycle-later) run.
    pub fn push(&mut self, scan: ScanRecord) -> Result<(), WaveError> {
        if let Some(last) = self.scans.last() {
            if scan.cycle <= last.cycle {
                return Err(WaveError::OutOfOrder);
            }
        }
        self.scans.push(scan);
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.scans.len()
    }

    pub fn is_empty(&self) -> bool {
        self.scans.is_empty()
    }

    pub fn scans(&self) -> &[ScanRecord] {
        &self.scans
    }

    /// The cycle at which a probe signal first changed value, if it did —
    /// how a designer localizes "the point it diverged" (§III).
    pub fn first_transition(&self, probe: &str) -> Option<Cycle> {
        let mut prev: Option<u64> = None;
        for s in &self.scans {
            if let Some((_, v)) = s.probes.iter().find(|(n, _)| n == probe) {
                match prev {
                    Some(p) if p != *v => return Some(s.cycle),
                    _ => prev = Some(*v),
                }
            }
        }
        None
    }

    /// The time series of one probe signal.
    pub fn series(&self, probe: &str) -> Vec<(Cycle, u64)> {
        self.scans
            .iter()
            .filter_map(|s| {
                s.probes
                    .iter()
                    .find(|(n, _)| n == probe)
                    .map(|(_, v)| (s.cycle, *v))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(cycle: Cycle, v: u64) -> ScanRecord {
        ScanRecord {
            cycle,
            target_desc: "cores",
            digest: v.wrapping_mul(31),
            probes: vec![("core0.sig".to_string(), v)],
        }
    }

    #[test]
    fn assembly_in_order() {
        let mut w = Waveform::new();
        for c in 100..110 {
            w.push(scan(c, 0)).unwrap();
        }
        assert_eq!(w.len(), 10);
    }

    #[test]
    fn out_of_order_rejected() {
        let mut w = Waveform::new();
        w.push(scan(100, 0)).unwrap();
        assert_eq!(w.push(scan(100, 0)), Err(WaveError::OutOfOrder));
        assert_eq!(w.push(scan(99, 0)), Err(WaveError::OutOfOrder));
    }

    #[test]
    fn transition_detection() {
        let mut w = Waveform::new();
        for c in 0..50 {
            w.push(scan(c, if c < 37 { 1 } else { 2 })).unwrap();
        }
        assert_eq!(w.first_transition("core0.sig"), Some(37));
        assert_eq!(w.first_transition("missing"), None);
    }

    #[test]
    fn series_extraction() {
        let mut w = Waveform::new();
        w.push(scan(1, 5)).unwrap();
        w.push(scan(2, 6)).unwrap();
        assert_eq!(w.series("core0.sig"), vec![(1, 5), (2, 6)]);
    }

    #[test]
    fn constant_signal_has_no_transition() {
        let mut w = Waveform::new();
        for c in 0..20 {
            w.push(scan(c, 7)).unwrap();
        }
        assert_eq!(w.first_transition("core0.sig"), None);
    }
}
