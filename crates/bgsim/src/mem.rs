//! Per-node physical memory.
//!
//! A sparse byte store with 4 KiB granules. Only data-plane contents are
//! stored (futex words, persistent-memory structures, file buffers);
//! compute ops are timing-only and never touch contents. Contents survive
//! DDR self-refresh across a reproducible reset (§III) and job boundaries
//! (the §IV.D persistent-memory feature), so the store lives at the node
//! level, not the process level.

use std::collections::BTreeMap;

use crate::rng::fnv1a;

const GRANULE: u64 = 4096;

/// Sparse physical memory for one node.
#[derive(Clone, Debug, Default)]
pub struct PhysMem {
    granules: BTreeMap<u64, Box<[u8; GRANULE as usize]>>,
    limit: u64,
}

impl PhysMem {
    pub fn new(limit_bytes: u64) -> PhysMem {
        PhysMem {
            granules: BTreeMap::new(),
            limit: limit_bytes,
        }
    }

    pub fn limit(&self) -> u64 {
        self.limit
    }

    fn check(&self, addr: u64, len: u64) -> Result<(), MemError> {
        if len == 0 {
            return Ok(());
        }
        let end = addr.checked_add(len).ok_or(MemError::OutOfRange)?;
        if end > self.limit {
            return Err(MemError::OutOfRange);
        }
        Ok(())
    }

    /// Read `len` bytes at physical `addr`. Unwritten memory reads zero
    /// (DDR is initialized by the boot sequence).
    pub fn read(&self, addr: u64, len: u64) -> Result<Vec<u8>, MemError> {
        self.check(addr, len)?;
        let mut out = vec![0u8; len as usize];
        let mut off = 0u64;
        while off < len {
            let a = addr + off;
            let g = a / GRANULE;
            let in_g = a % GRANULE;
            let n = (GRANULE - in_g).min(len - off);
            if let Some(gran) = self.granules.get(&g) {
                out[off as usize..(off + n) as usize]
                    .copy_from_slice(&gran[in_g as usize..(in_g + n) as usize]);
            }
            off += n;
        }
        Ok(out)
    }

    /// Write bytes at physical `addr`.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), MemError> {
        self.check(addr, data.len() as u64)?;
        let len = data.len() as u64;
        let mut off = 0u64;
        while off < len {
            let a = addr + off;
            let g = a / GRANULE;
            let in_g = a % GRANULE;
            let n = (GRANULE - in_g).min(len - off);
            let gran = self
                .granules
                .entry(g)
                .or_insert_with(|| Box::new([0u8; GRANULE as usize]));
            gran[in_g as usize..(in_g + n) as usize]
                .copy_from_slice(&data[off as usize..(off + n) as usize]);
            off += n;
        }
        Ok(())
    }

    /// Read a 32-bit big-endian word (PPC450 is big-endian) — the futex
    /// access path.
    pub fn read_u32(&self, addr: u64) -> Result<u32, MemError> {
        let b = self.read(addr, 4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn write_u32(&mut self, addr: u64, v: u32) -> Result<(), MemError> {
        self.write(addr, &v.to_be_bytes())
    }

    pub fn read_u64(&self, addr: u64) -> Result<u64, MemError> {
        let b = self.read(addr, 8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub fn write_u64(&mut self, addr: u64, v: u64) -> Result<(), MemError> {
        self.write(addr, &v.to_be_bytes())
    }

    /// Zero a range (job teardown clears non-persistent regions).
    pub fn clear_range(&mut self, addr: u64, len: u64) -> Result<(), MemError> {
        self.check(addr, len)?;
        if len == 0 {
            return Ok(());
        }
        let end = addr + len;
        // Drop whole granules...
        let first_full = addr.div_ceil(GRANULE);
        let last_full = end / GRANULE;
        if first_full < last_full {
            let keys: Vec<u64> = self
                .granules
                .range(first_full..last_full)
                .map(|(k, _)| *k)
                .collect();
            for k in keys {
                self.granules.remove(&k);
            }
        }
        // ...and zero the partial edges explicitly. `head_end` is where
        // the first full granule begins (clamped to the range end, which
        // also covers the whole-range-inside-one-granule case).
        let head_end = (first_full * GRANULE).min(end);
        if head_end > addr {
            self.write(addr, &vec![0u8; (head_end - addr) as usize])?;
        }
        let tail_start = (last_full * GRANULE).max(head_end);
        if tail_start < end {
            self.write(tail_start, &vec![0u8; (end - tail_start) as usize])?;
        }
        Ok(())
    }

    /// Content digest of a range — the "logic scan" view of DRAM (§III).
    pub fn digest(&self, addr: u64, len: u64) -> u64 {
        match self.read(addr, len) {
            Ok(bytes) => fnv1a(&bytes),
            Err(_) => 0,
        }
    }

    /// Number of resident granules (memory-footprint introspection).
    pub fn resident_granules(&self) -> usize {
        self.granules.len()
    }

    /// Approximate heap bytes held: one boxed granule plus tree-node
    /// overhead per resident granule. DRAM is sparse, so an untouched
    /// node's memory image costs nothing.
    pub fn resident_bytes(&self) -> usize {
        self.granules.len() * (GRANULE as usize + 48)
    }
}

/// Physical memory access error.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemError {
    OutOfRange,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let m = PhysMem::new(1 << 20);
        assert_eq!(m.read(0x1234, 8).unwrap(), vec![0; 8]);
    }

    #[test]
    fn write_read_roundtrip_across_granules() {
        let mut m = PhysMem::new(1 << 20);
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        m.write(GRANULE - 100, &data).unwrap();
        assert_eq!(m.read(GRANULE - 100, data.len() as u64).unwrap(), data);
    }

    #[test]
    fn bounds_enforced() {
        let mut m = PhysMem::new(4096);
        assert_eq!(m.write(4090, &[0; 10]), Err(MemError::OutOfRange));
        assert_eq!(m.read(u64::MAX - 2, 8), Err(MemError::OutOfRange));
        assert!(m.write(4088, &[1; 8]).is_ok());
    }

    #[test]
    fn u32_big_endian() {
        let mut m = PhysMem::new(1 << 16);
        m.write_u32(0x100, 0xdead_beef).unwrap();
        assert_eq!(m.read(0x100, 4).unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(m.read_u32(0x100).unwrap(), 0xdead_beef);
    }

    #[test]
    fn clear_range_zeroes() {
        let mut m = PhysMem::new(1 << 20);
        m.write(1000, &[7u8; 20000]).unwrap();
        m.clear_range(1100, 18000).unwrap();
        assert_eq!(m.read(1000, 100).unwrap(), vec![7u8; 100]);
        assert_eq!(m.read(1100, 18000).unwrap(), vec![0u8; 18000]);
        assert_eq!(
            m.read(1100 + 18000, 20000 - 18100).unwrap(),
            vec![7u8; 1900]
        );
    }

    #[test]
    fn digest_changes_with_content() {
        let mut m = PhysMem::new(1 << 16);
        let d0 = m.digest(0, 4096);
        m.write_u32(0, 1).unwrap();
        let d1 = m.digest(0, 4096);
        assert_ne!(d0, d1);
        // Digest is a pure function of content.
        let mut m2 = PhysMem::new(1 << 16);
        m2.write_u32(0, 1).unwrap();
        assert_eq!(m2.digest(0, 4096), d1);
    }

    #[test]
    fn clear_releases_granules() {
        let mut m = PhysMem::new(1 << 20);
        m.write(0, &[1u8; 64 * 1024]).unwrap();
        let before = m.resident_granules();
        m.clear_range(0, 64 * 1024).unwrap();
        assert!(m.resident_granules() < before);
    }
}
