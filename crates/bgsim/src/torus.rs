//! The 3D torus interconnect and its DMA engine.
//!
//! BG/P's torus: six 425 MB/s links per node, dimension-ordered routing,
//! cut-through switching, and a DMA engine that applications drive
//! directly under CNK ("Simple memory mappings allow CNK applications to
//! directly drive the DMA torus hardware", §VII.A). This module provides
//! the geometric and timing model; protocol behaviour lives in `dcmf`.

use crate::config::MachineConfig;
use crate::cycles::{self, Cycle};
use sysabi::NodeId;

/// Torus coordinates of a node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Coord {
    pub x: u32,
    pub y: u32,
    pub z: u32,
}

/// Geometry of the torus partition.
#[derive(Clone, Debug)]
pub struct Torus {
    dims: (u32, u32, u32),
    link_bytes_per_cycle: f64,
    hop_cycles: Cycle,
    /// Fixed cost to inject a packet into the network (arbitration,
    /// header build) once a descriptor reaches the DMA engine.
    inject_cycles: Cycle,
    /// Torus packets carry up to 256 bytes of payload.
    packet_payload: u64,
    /// Per-packet header+CRC overhead bytes on the wire.
    packet_overhead: u64,
}

impl Torus {
    pub fn new(cfg: &MachineConfig) -> Torus {
        Torus {
            dims: cfg.torus_dims,
            link_bytes_per_cycle: cycles::mbs_to_bytes_per_cycle(cfg.torus_link_mbs),
            hop_cycles: cycles::ns_to_cycles(cfg.torus_hop_ns),
            inject_cycles: 60,
            packet_payload: 240,
            packet_overhead: 16,
        }
    }

    pub fn dims(&self) -> (u32, u32, u32) {
        self.dims
    }

    pub fn node_count(&self) -> u32 {
        self.dims.0 * self.dims.1 * self.dims.2
    }

    /// Node id → torus coordinate (x fastest).
    pub fn coord(&self, n: NodeId) -> Coord {
        let (dx, dy, _dz) = self.dims;
        let i = n.0;
        Coord {
            x: i % dx,
            y: (i / dx) % dy,
            z: i / (dx * dy),
        }
    }

    /// Torus coordinate → node id.
    pub fn node_at(&self, c: Coord) -> NodeId {
        let (dx, dy, _) = self.dims;
        NodeId(c.x + c.y * dx + c.z * dx * dy)
    }

    /// Shortest per-dimension distance on a ring of size `d`.
    fn ring_dist(a: u32, b: u32, d: u32) -> u32 {
        let f = (a as i64 - b as i64).unsigned_abs() as u32;
        f.min(d - f)
    }

    /// Minimal hop count between two nodes (dimension-ordered routing
    /// takes exactly this many hops).
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        let (dx, dy, dz) = self.dims;
        let ca = self.coord(a);
        let cb = self.coord(b);
        Self::ring_dist(ca.x, cb.x, dx)
            + Self::ring_dist(ca.y, cb.y, dy)
            + Self::ring_dist(ca.z, cb.z, dz)
    }

    /// The up-to-six distinct nearest neighbors of a node (fewer on
    /// degenerate dimensions).
    pub fn neighbors(&self, n: NodeId) -> Vec<NodeId> {
        let (dx, dy, dz) = self.dims;
        let c = self.coord(n);
        let mut out = Vec::with_capacity(6);
        let mut push = |co: Coord| {
            let id = self.node_at(co);
            if id != n && !out.contains(&id) {
                out.push(id);
            }
        };
        if dx > 1 {
            push(Coord {
                x: (c.x + 1) % dx,
                ..c
            });
            push(Coord {
                x: (c.x + dx - 1) % dx,
                ..c
            });
        }
        if dy > 1 {
            push(Coord {
                y: (c.y + 1) % dy,
                ..c
            });
            push(Coord {
                y: (c.y + dy - 1) % dy,
                ..c
            });
        }
        if dz > 1 {
            push(Coord {
                z: (c.z + 1) % dz,
                ..c
            });
            push(Coord {
                z: (c.z + dz - 1) % dz,
                ..c
            });
        }
        out
    }

    /// Wire bytes for a payload of `bytes` (packetization overhead).
    pub fn wire_bytes(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return self.packet_overhead;
        }
        let packets = bytes.div_ceil(self.packet_payload);
        bytes + packets * self.packet_overhead
    }

    /// Number of torus packets a `bytes` message occupies (at least 1 —
    /// a zero-byte message still sends a header-only packet).
    pub fn packets(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.packet_payload).max(1)
    }

    /// Cycles from DMA injection to last-byte delivery for a `bytes`
    /// message over `hops` hops (cut-through: header latency + serialize).
    ///
    /// This is the *batched* form: one completion per message leg with
    /// the serialization of all packets folded into a single closed-form
    /// term, instead of one engine event per packet. The per-packet
    /// reference model ([`Torus::transfer_cycles_per_packet`]) computes
    /// the identical value, which is what licenses the batching.
    pub fn transfer_cycles(&self, bytes: u64, hops: u32) -> Cycle {
        let serialize = cycles::transfer_cycles(self.wire_bytes(bytes), self.link_bytes_per_cycle);
        self.inject_cycles + self.hop_cycles * hops.max(1) as u64 + serialize
    }

    /// The unbatched reference model: walk the message packet by packet,
    /// as an engine scheduling one event per packet would, accumulating
    /// each packet's wire bytes, and serialize the summed wire traffic
    /// behind the cut-through header latency. Exactly equal to
    /// [`Torus::transfer_cycles`] for every `(bytes, hops)` — packets
    /// stream back-to-back on one link, so their serialization times sum
    /// before the single ceiling that converts bytes to cycles.
    pub fn transfer_cycles_per_packet(&self, bytes: u64, hops: u32) -> Cycle {
        let mut wire = 0u64;
        let mut left = bytes;
        loop {
            let payload = left.min(self.packet_payload);
            wire += payload + self.packet_overhead;
            left -= payload;
            if left == 0 {
                break;
            }
        }
        let serialize = cycles::transfer_cycles(wire, self.link_bytes_per_cycle);
        self.inject_cycles + self.hop_cycles * hops.max(1) as u64 + serialize
    }

    /// Cycles for the DMA engine to accept a descriptor (what the sender
    /// core pays before continuing).
    pub fn inject_cycles(&self) -> Cycle {
        self.inject_cycles
    }

    /// Minimum latency of any torus delivery: DMA injection plus one
    /// hop, before any payload serialization. No `NetDeliver` scheduled
    /// through the torus can arrive sooner, which makes this the torus's
    /// contribution to the conservative-parallel lookahead window
    /// (`MachineConfig::min_link_cycles`).
    pub fn min_latency_cycles(&self) -> Cycle {
        self.inject_cycles + self.hop_cycles
    }

    /// Peak payload bandwidth of one link in bytes/cycle, after packet
    /// overhead.
    pub fn link_payload_bpc(&self) -> f64 {
        self.link_bytes_per_cycle * self.packet_payload as f64
            / (self.packet_payload + self.packet_overhead) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u32) -> Torus {
        Torus::new(&MachineConfig::nodes(n))
    }

    #[test]
    fn coord_roundtrip() {
        let t = t(64);
        for i in 0..64 {
            let n = NodeId(i);
            assert_eq!(t.node_at(t.coord(n)), n);
        }
    }

    #[test]
    fn hops_symmetric_and_zero_on_self() {
        let t = t(64);
        for a in 0..64 {
            assert_eq!(t.hops(NodeId(a), NodeId(a)), 0);
            for b in 0..64 {
                assert_eq!(t.hops(NodeId(a), NodeId(b)), t.hops(NodeId(b), NodeId(a)));
            }
        }
    }

    #[test]
    fn wraparound_shortens_paths() {
        // On a 4-ring, distance 0→3 is 1 hop via the wrap link.
        let t = t(64); // 4x4x4
        assert_eq!(t.hops(NodeId(0), NodeId(3)), 1);
        assert_eq!(t.hops(NodeId(0), NodeId(2)), 2);
    }

    #[test]
    fn neighbor_count() {
        let t8 = t(8); // 2x2x2: each ring has size 2 → 3 distinct neighbors
        assert_eq!(t8.neighbors(NodeId(0)).len(), 3);
        let t64 = t(64); // 4x4x4 → 6 distinct neighbors
        assert_eq!(t64.neighbors(NodeId(0)).len(), 6);
        for nb in t64.neighbors(NodeId(0)) {
            assert_eq!(t64.hops(NodeId(0), nb), 1);
        }
    }

    #[test]
    fn two_node_machine() {
        let t2 = t(2);
        assert_eq!(t2.neighbors(NodeId(0)), vec![NodeId(1)]);
        assert_eq!(t2.hops(NodeId(0), NodeId(1)), 1);
    }

    #[test]
    fn transfer_monotone_in_size_and_distance() {
        let t = t(64);
        assert!(t.transfer_cycles(1024, 1) < t.transfer_cycles(4096, 1));
        assert!(t.transfer_cycles(1024, 1) < t.transfer_cycles(1024, 6));
    }

    #[test]
    fn packet_overhead_accounted() {
        let t = t(2);
        // 240 bytes → 1 packet → 256 wire bytes.
        assert_eq!(t.wire_bytes(240), 256);
        // 241 bytes → 2 packets.
        assert_eq!(t.wire_bytes(241), 241 + 32);
    }

    #[test]
    fn per_packet_reference_matches_batched_model() {
        // The batched single-event-per-leg timing must equal the
        // unbatched packet-by-packet walk for any size and distance —
        // the equivalence that lets the engine skip per-packet events.
        let t = t(64);
        for bytes in [
            0u64,
            1,
            239,
            240,
            241,
            480,
            481,
            4096,
            65_536,
            (1 << 20) + 17,
        ] {
            for hops in [0u32, 1, 3, 6] {
                assert_eq!(
                    t.transfer_cycles(bytes, hops),
                    t.transfer_cycles_per_packet(bytes, hops),
                    "bytes={bytes} hops={hops}"
                );
            }
        }
        assert_eq!(t.packets(0), 1);
        assert_eq!(t.packets(240), 1);
        assert_eq!(t.packets(241), 2);
        assert_eq!(t.packets(1 << 20), 4370);
    }

    #[test]
    fn bandwidth_dominates_large_messages() {
        let t = t(2);
        // 1 MB at ~0.5 B/cycle ≈ 2.2M cycles with overhead; hop latency
        // negligible.
        let c = t.transfer_cycles(1 << 20, 1);
        let ideal = (1u64 << 20) as f64 / t.link_payload_bpc();
        assert!((c as f64) < ideal * 1.05);
        assert!((c as f64) > ideal * 0.95);
    }
}
