//! The global barrier (global interrupt) network.
//!
//! A dedicated low-latency AND-tree across the partition. Two paper roles:
//! fast full-partition barriers for applications, and — during bringup —
//! coordinating *multichip reproducible reboots* so that "one chip
//! initiates a packet transfer on exactly the same cycle relative to the
//! other chip" (§III). For the latter the network must keep its arbiter
//! state consistent across resets, which we model explicitly.

use crate::config::MachineConfig;
use crate::cycles::{self, Cycle};

/// State of the barrier network's arbiters/state machines.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArbiterState {
    /// Freshly powered on; arbiter phase is arbitrary (not reproducible).
    Unsynchronized,
    /// Forced into the canonical state by the reproducible-reboot
    /// sequence ("special code ensured a consistent state in all arbiters
    /// and state machines", §III).
    Canonical,
}

/// The global barrier network of a partition.
#[derive(Clone, Debug)]
pub struct BarrierNet {
    round_trip: Cycle,
    state: ArbiterState,
    /// Survives chip resets while the network is "set to remain active
    /// and configured" across a coordinated reboot.
    hold_config: bool,
    crossings: u64,
}

impl BarrierNet {
    pub fn new(cfg: &MachineConfig) -> BarrierNet {
        BarrierNet {
            round_trip: cycles::ns_to_cycles(cfg.barrier_ns),
            state: ArbiterState::Unsynchronized,
            hold_config: false,
            crossings: 0,
        }
    }

    /// Cycles for a full-partition barrier once the last participant
    /// arrives.
    pub fn crossing_cycles(&self) -> Cycle {
        self.round_trip
    }

    /// Record a barrier crossing (statistics).
    pub fn cross(&mut self) -> Cycle {
        self.crossings += 1;
        self.round_trip
    }

    pub fn crossings(&self) -> u64 {
        self.crossings
    }

    /// Run the §III sequence that forces every arbiter into the canonical
    /// state and latches the configuration across resets.
    pub fn prepare_reproducible_reboot(&mut self) {
        self.state = ArbiterState::Canonical;
        self.hold_config = true;
    }

    /// A chip reset propagates to the network. If the configuration was
    /// latched, the canonical state survives; otherwise the arbiters come
    /// back in an arbitrary phase.
    pub fn on_chip_reset(&mut self) {
        if !self.hold_config {
            self.state = ArbiterState::Unsynchronized;
        }
        self.crossings = 0;
    }

    pub fn state(&self) -> ArbiterState {
        self.state
    }

    /// Whether a multichip run started now would be cycle-aligned with a
    /// previous one.
    pub fn multichip_reproducible(&self) -> bool {
        self.state == ArbiterState::Canonical
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> BarrierNet {
        BarrierNet::new(&MachineConfig::nodes(2))
    }

    #[test]
    fn barrier_is_sub_microsecond() {
        let n = net();
        let us = cycles::cycles_to_us(n.crossing_cycles());
        assert!(us < 1.5, "barrier {us} us");
    }

    #[test]
    fn plain_reset_loses_alignment() {
        let mut n = net();
        assert!(!n.multichip_reproducible());
        n.prepare_reproducible_reboot();
        assert!(n.multichip_reproducible());
        // A reset *without* re-running the preparation keeps alignment
        // only because the config was latched...
        n.on_chip_reset();
        assert!(n.multichip_reproducible());
        // ...but a network that never ran the sequence is not aligned
        // after reset.
        let mut fresh = net();
        fresh.on_chip_reset();
        assert!(!fresh.multichip_reproducible());
    }

    #[test]
    fn crossings_counted_and_cleared() {
        let mut n = net();
        n.cross();
        n.cross();
        assert_eq!(n.crossings(), 2);
        n.on_chip_reset();
        assert_eq!(n.crossings(), 0);
    }
}
