//! The operation IR that workloads yield to the machine.
//!
//! A workload is a generator of `Op`s; the kernel under test decides what
//! each op costs and how it is serviced. This is the key device that lets
//! the same application run unmodified on CNK and on the Linux-like FWK —
//! the reproduction analogue of the paper's "applications run on CNK
//! out-of-the-box" claim (§V.B).

use sysabi::{Rank, SysReq};

use crate::machine::Workload;

/// Which messaging API layer issues a communication op. Each layer adds
/// its own software overhead on top of DCMF (Table I).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ApiLayer {
    /// Raw DCMF (lowest overhead).
    Dcmf,
    /// MPI point-to-point over DCMF (matching, request bookkeeping).
    Mpi,
    /// ARMCI one-sided over DCMF.
    Armci,
}

/// Point-to-point protocol selection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Protocol {
    /// Eager: payload travels with the envelope.
    Eager,
    /// Rendezvous: RTS/CTS handshake, then a zero-copy DMA of the payload.
    Rendezvous,
    /// Let the messaging layer pick by size.
    Auto,
}

/// A communication operation.
#[derive(Clone, PartialEq, Debug)]
pub enum CommOp {
    /// Two-sided send.
    Send {
        to: Rank,
        bytes: u64,
        tag: u32,
        proto: Protocol,
        layer: ApiLayer,
    },
    /// Two-sided receive; blocks until a matching message arrives.
    Recv {
        from: Option<Rank>,
        tag: u32,
        layer: ApiLayer,
    },
    /// One-sided put (blocking variants wait for remote completion).
    Put {
        to: Rank,
        bytes: u64,
        layer: ApiLayer,
        blocking: bool,
    },
    /// One-sided get (always blocks for the data).
    Get {
        from: Rank,
        bytes: u64,
        layer: ApiLayer,
    },
    /// Barrier over all ranks of the job.
    Barrier,
    /// Allreduce (double sum) of `bytes` over all ranks of the job.
    Allreduce { bytes: u64 },
}

impl CommOp {
    pub fn name(&self) -> &'static str {
        match self {
            CommOp::Send { .. } => "send",
            CommOp::Recv { .. } => "recv",
            CommOp::Put { .. } => "put",
            CommOp::Get { .. } => "get",
            CommOp::Barrier => "barrier",
            CommOp::Allreduce { .. } => "allreduce",
        }
    }
}

/// Arguments for thread creation, mirroring the clone(2) call NPTL makes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CloneArgs {
    pub flags: sysabi::CloneFlags,
    pub child_stack: u64,
    pub tls: u64,
    pub parent_tid_addr: u64,
    pub child_tid_addr: u64,
}

impl CloneArgs {
    /// The arguments NPTL passes for a pthread_create with a stack at
    /// `stack_top`.
    pub fn nptl(stack_top: u64, tls: u64, tid_addr: u64) -> CloneArgs {
        CloneArgs {
            flags: sysabi::CloneFlags::NPTL_THREAD_FLAGS,
            child_stack: stack_top,
            tls,
            parent_tid_addr: tid_addr,
            child_tid_addr: tid_addr,
        }
    }
}

/// One operation of a workload program.
pub enum Op {
    /// Pure compute for a fixed number of cycles (cache-resident).
    Compute { cycles: u64 },
    /// The FWQ kernel: `reps` DAXPY passes over `n` f64 elements.
    Daxpy { n: u64, reps: u64 },
    /// Stream `bytes` through the memory system (bandwidth-bound phase).
    Stream { bytes: u64 },
    /// `flops` floating-point operations of a blocked dense kernel.
    Flops { flops: u64 },
    /// Touch `bytes` of memory starting at `vaddr` (timing plane: drives
    /// TLB refills / demand paging / DAC guard checks).
    MemTouch { vaddr: u64, bytes: u64, write: bool },
    /// A system call.
    Syscall(SysReq),
    /// Thread creation: the clone syscall plus the child's program.
    /// Carried outside `SysReq` because the child workload is not ABI
    /// data.
    Spawn {
        args: CloneArgs,
        child: Box<dyn Workload>,
        core_hint: Option<u32>,
    },
    /// A communication operation serviced by the machine's `CommModel`.
    Comm(CommOp),
    /// Voluntarily yield the core (sched_yield fast path).
    Yield,
    /// Thread finished (returning from its start routine).
    End,
}

impl Op {
    /// True for the deterministic local-compute classes (`Compute`,
    /// `Daxpy`, `Stream`, `Flops`): a fixed cost on the issuing core,
    /// priced up front by `Kernel::compute_cost`, with no kernel or
    /// network interaction while running. These are the ops whose
    /// completions the machine's quiescence fast path may retire inline
    /// (see `machine/exec.rs`), which is why they share one dispatch
    /// arm.
    pub fn is_compute(&self) -> bool {
        matches!(
            self,
            Op::Compute { .. } | Op::Daxpy { .. } | Op::Stream { .. } | Op::Flops { .. }
        )
    }

    pub fn name(&self) -> &'static str {
        match self {
            Op::Compute { .. } => "compute",
            Op::Daxpy { .. } => "daxpy",
            Op::Stream { .. } => "stream",
            Op::Flops { .. } => "flops",
            Op::MemTouch { .. } => "memtouch",
            Op::Syscall(req) => req.name(),
            Op::Spawn { .. } => "spawn",
            Op::Comm(c) => c.name(),
            Op::Yield => "yield",
            Op::End => "end",
        }
    }
}

impl std::fmt::Debug for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::Spawn {
                args, core_hint, ..
            } => f
                .debug_struct("Spawn")
                .field("args", args)
                .field("core_hint", core_hint)
                .finish_non_exhaustive(),
            Op::Compute { cycles } => write!(f, "Compute({cycles})"),
            Op::Daxpy { n, reps } => write!(f, "Daxpy(n={n}, reps={reps})"),
            Op::Stream { bytes } => write!(f, "Stream({bytes})"),
            Op::Flops { flops } => write!(f, "Flops({flops})"),
            Op::MemTouch {
                vaddr,
                bytes,
                write,
            } => {
                write!(f, "MemTouch({vaddr:#x}, {bytes}, w={write})")
            }
            Op::Syscall(req) => write!(f, "Syscall({})", req.name()),
            Op::Comm(c) => write!(f, "Comm({c:?})"),
            Op::Yield => write!(f, "Yield"),
            Op::End => write!(f, "End"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysabi::Fd;

    #[test]
    fn op_names() {
        assert_eq!(Op::Compute { cycles: 1 }.name(), "compute");
        assert_eq!(
            Op::Syscall(SysReq::Write {
                fd: Fd(1),
                data: vec![]
            })
            .name(),
            "write"
        );
        assert_eq!(Op::Comm(CommOp::Barrier).name(), "barrier");
        assert_eq!(Op::End.name(), "end");
    }

    #[test]
    fn nptl_clone_args() {
        let a = CloneArgs::nptl(0x7000_0000, 0x6000_0000, 0x6000_0100);
        assert!(a.flags.contains(sysabi::CloneFlags::THREAD));
        assert_eq!(a.parent_tid_addr, a.child_tid_addr);
    }

    #[test]
    fn compute_classifier_covers_the_fixed_cost_ops() {
        assert!(Op::Compute { cycles: 1 }.is_compute());
        assert!(Op::Daxpy { n: 8, reps: 1 }.is_compute());
        assert!(Op::Stream { bytes: 64 }.is_compute());
        assert!(Op::Flops { flops: 100 }.is_compute());
        assert!(!Op::Yield.is_compute());
        assert!(!Op::End.is_compute());
        assert!(!Op::MemTouch {
            vaddr: 0,
            bytes: 8,
            write: false
        }
        .is_compute());
        assert!(!Op::Syscall(sysabi::SysReq::Gettid).is_compute());
    }
}
