//! Debug Address Compare (DAC) registers.
//!
//! §IV.C: "A useful memory protection feature is a guard page to prevent
//! stack storage from descending into heap storage. CNK provides this
//! functionality by using the Blue Gene Debug Address Compare (DAC)
//! registers." Each core has a small number of DAC range pairs; a data
//! access falling inside an armed range raises a debug exception, which
//! CNK converts into a SIGSEGV-style guard fault.

/// One armed DAC range on a core.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DacRange {
    pub lo: u64,
    /// Exclusive upper bound.
    pub hi: u64,
    /// Which watch slot this occupies.
    pub slot: u32,
}

impl DacRange {
    pub fn hit(&self, addr: u64) -> bool {
        addr >= self.lo && addr < self.hi
    }
}

/// The DAC register file of one core.
#[derive(Clone, Debug)]
pub struct DacFile {
    ranges: Vec<Option<DacRange>>,
}

/// DAC programming errors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DacError {
    BadSlot,
    EmptyRange,
}

impl DacFile {
    pub fn new(pairs: u32) -> DacFile {
        DacFile {
            ranges: vec![None; pairs as usize],
        }
    }

    pub fn pairs(&self) -> usize {
        self.ranges.len()
    }

    /// Arm slot `slot` to watch `[lo, hi)`.
    pub fn arm(&mut self, slot: u32, lo: u64, hi: u64) -> Result<(), DacError> {
        if hi <= lo {
            return Err(DacError::EmptyRange);
        }
        let s = self
            .ranges
            .get_mut(slot as usize)
            .ok_or(DacError::BadSlot)?;
        *s = Some(DacRange { lo, hi, slot });
        Ok(())
    }

    /// Disarm slot `slot`.
    pub fn disarm(&mut self, slot: u32) -> Result<(), DacError> {
        let s = self
            .ranges
            .get_mut(slot as usize)
            .ok_or(DacError::BadSlot)?;
        *s = None;
        Ok(())
    }

    /// Check a data access; returns the slot that fired, if any.
    pub fn check(&self, addr: u64) -> Option<u32> {
        self.ranges
            .iter()
            .flatten()
            .find(|r| r.hit(addr))
            .map(|r| r.slot)
    }

    /// Currently armed ranges (scan/introspection).
    pub fn armed(&self) -> Vec<DacRange> {
        self.ranges.iter().flatten().copied().collect()
    }

    pub fn reset(&mut self) {
        for r in &mut self.ranges {
            *r = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_and_hit() {
        let mut d = DacFile::new(4);
        d.arm(0, 0x1000, 0x2000).unwrap();
        assert_eq!(d.check(0x1000), Some(0));
        assert_eq!(d.check(0x1fff), Some(0));
        assert_eq!(d.check(0x2000), None);
        assert_eq!(d.check(0x0fff), None);
    }

    #[test]
    fn rearm_moves_the_watch() {
        // The guard-repositioning IPI path (§IV.C) re-arms the same slot.
        let mut d = DacFile::new(4);
        d.arm(0, 0x1000, 0x2000).unwrap();
        d.arm(0, 0x8000, 0x9000).unwrap();
        assert_eq!(d.check(0x1800), None);
        assert_eq!(d.check(0x8800), Some(0));
    }

    #[test]
    fn disarm() {
        let mut d = DacFile::new(2);
        d.arm(1, 0, 100).unwrap();
        d.disarm(1).unwrap();
        assert_eq!(d.check(50), None);
    }

    #[test]
    fn slot_bounds() {
        let mut d = DacFile::new(2);
        assert_eq!(d.arm(2, 0, 1), Err(DacError::BadSlot));
        assert_eq!(d.arm(0, 5, 5), Err(DacError::EmptyRange));
        assert_eq!(d.disarm(9), Err(DacError::BadSlot));
    }

    #[test]
    fn multiple_slots_independent() {
        let mut d = DacFile::new(4);
        d.arm(0, 0x1000, 0x2000).unwrap();
        d.arm(3, 0x5000, 0x6000).unwrap();
        assert_eq!(d.check(0x1500), Some(0));
        assert_eq!(d.check(0x5500), Some(3));
        assert_eq!(d.armed().len(), 2);
    }
}
