//! Debug Address Compare (DAC) registers.
//!
//! §IV.C: "A useful memory protection feature is a guard page to prevent
//! stack storage from descending into heap storage. CNK provides this
//! functionality by using the Blue Gene Debug Address Compare (DAC)
//! registers." Each core has a small number of DAC range pairs; a data
//! access falling inside an armed range raises a debug exception, which
//! CNK converts into a SIGSEGV-style guard fault.

/// One armed DAC range on a core.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DacRange {
    pub lo: u64,
    /// Exclusive upper bound.
    pub hi: u64,
    /// Which watch slot this occupies.
    pub slot: u32,
}

impl DacRange {
    pub fn hit(&self, addr: u64) -> bool {
        addr >= self.lo && addr < self.hi
    }
}

/// The DAC register file of one core. The slot vector is allocated on
/// the first `arm` — a machine-wide column of these (one per core) costs
/// no heap for the cores that never arm a guard.
#[derive(Clone, Debug)]
pub struct DacFile {
    pairs: u32,
    ranges: Vec<Option<DacRange>>,
}

/// DAC programming errors.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DacError {
    BadSlot,
    EmptyRange,
}

impl DacFile {
    pub fn new(pairs: u32) -> DacFile {
        DacFile {
            pairs,
            ranges: Vec::new(),
        }
    }

    pub fn pairs(&self) -> usize {
        self.pairs as usize
    }

    /// Arm slot `slot` to watch `[lo, hi)`.
    pub fn arm(&mut self, slot: u32, lo: u64, hi: u64) -> Result<(), DacError> {
        if hi <= lo {
            return Err(DacError::EmptyRange);
        }
        if slot >= self.pairs {
            return Err(DacError::BadSlot);
        }
        if self.ranges.len() < self.pairs as usize {
            self.ranges.resize(self.pairs as usize, None);
        }
        self.ranges[slot as usize] = Some(DacRange { lo, hi, slot });
        Ok(())
    }

    /// Disarm slot `slot`.
    pub fn disarm(&mut self, slot: u32) -> Result<(), DacError> {
        if slot >= self.pairs {
            return Err(DacError::BadSlot);
        }
        if let Some(s) = self.ranges.get_mut(slot as usize) {
            *s = None;
        }
        Ok(())
    }

    /// Heap bytes currently reserved by this register file.
    pub fn resident_bytes(&self) -> usize {
        self.ranges.capacity() * std::mem::size_of::<Option<DacRange>>()
    }

    /// Check a data access; returns the slot that fired, if any.
    pub fn check(&self, addr: u64) -> Option<u32> {
        self.ranges
            .iter()
            .flatten()
            .find(|r| r.hit(addr))
            .map(|r| r.slot)
    }

    /// Currently armed ranges (scan/introspection).
    pub fn armed(&self) -> Vec<DacRange> {
        self.ranges.iter().flatten().copied().collect()
    }

    pub fn reset(&mut self) {
        for r in &mut self.ranges {
            *r = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_and_hit() {
        let mut d = DacFile::new(4);
        d.arm(0, 0x1000, 0x2000).unwrap();
        assert_eq!(d.check(0x1000), Some(0));
        assert_eq!(d.check(0x1fff), Some(0));
        assert_eq!(d.check(0x2000), None);
        assert_eq!(d.check(0x0fff), None);
    }

    #[test]
    fn rearm_moves_the_watch() {
        // The guard-repositioning IPI path (§IV.C) re-arms the same slot.
        let mut d = DacFile::new(4);
        d.arm(0, 0x1000, 0x2000).unwrap();
        d.arm(0, 0x8000, 0x9000).unwrap();
        assert_eq!(d.check(0x1800), None);
        assert_eq!(d.check(0x8800), Some(0));
    }

    #[test]
    fn disarm() {
        let mut d = DacFile::new(2);
        d.arm(1, 0, 100).unwrap();
        d.disarm(1).unwrap();
        assert_eq!(d.check(50), None);
    }

    #[test]
    fn slot_bounds() {
        let mut d = DacFile::new(2);
        assert_eq!(d.arm(2, 0, 1), Err(DacError::BadSlot));
        assert_eq!(d.arm(0, 5, 5), Err(DacError::EmptyRange));
        assert_eq!(d.disarm(9), Err(DacError::BadSlot));
    }

    #[test]
    fn unarmed_file_reserves_no_memory() {
        let d = DacFile::new(4);
        assert_eq!(d.resident_bytes(), 0);
        assert_eq!(d.pairs(), 4);
        assert_eq!(d.check(0x1000), None);
        assert!(d.armed().is_empty());
        // Disarming a never-armed slot is a no-op, not an allocation.
        let mut d2 = DacFile::new(4);
        assert_eq!(d2.disarm(1), Ok(()));
        assert_eq!(d2.resident_bytes(), 0);
        d2.arm(1, 1, 2).unwrap();
        assert!(d2.resident_bytes() > 0);
        assert_eq!(d2.check(1), Some(1));
    }

    #[test]
    fn multiple_slots_independent() {
        let mut d = DacFile::new(4);
        d.arm(0, 0x1000, 0x2000).unwrap();
        d.arm(3, 0x5000, 0x6000).unwrap();
        assert_eq!(d.check(0x1500), Some(0));
        assert_eq!(d.check(0x5500), Some(3));
        assert_eq!(d.armed().len(), 2);
    }
}
