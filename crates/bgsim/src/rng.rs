//! Deterministic, named random-number streams.
//!
//! Every source of modeled variability (a Linux daemon's wakeup jitter,
//! DRAM refresh phase, I/O-node service-time spread) draws from its own
//! stream, derived from the machine's master seed and a stable name. This
//! gives two properties the paper's methodology needs:
//!
//! * **cycle reproducibility** (§III): the same seed reproduces the exact
//!   run, event for event;
//! * **stability studies** (§V.D): varying only the master seed re-rolls
//!   the physical-world randomness while keeping the workload identical,
//!   which is how we model "36 runs of LINPACK".

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// FNV-1a 64-bit hash, used to derive stream seeds from names.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A factory for named deterministic streams.
#[derive(Clone, Debug)]
pub struct RngHub {
    master: u64,
}

impl RngHub {
    pub fn new(master_seed: u64) -> RngHub {
        RngHub {
            master: master_seed,
        }
    }

    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// A stream uniquely determined by (master seed, name).
    pub fn stream(&self, name: &str) -> SmallRng {
        let h = fnv1a(name.as_bytes()) ^ self.master.rotate_left(17);
        SmallRng::seed_from_u64(h)
    }

    /// A stream scoped to a numbered entity (core, node, daemon index).
    pub fn stream_for(&self, name: &str, index: u64) -> SmallRng {
        let h = fnv1a(name.as_bytes()).wrapping_add(index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            ^ self.master.rotate_left(31);
        SmallRng::seed_from_u64(h)
    }
}

/// A lazily materialized column of per-entity streams (one per node,
/// core, or I/O node). The seed of stream `i` is a pure function of
/// `(master seed, name, i)` via [`RngHub::stream_for`], so nothing needs
/// to exist until the first draw: an entity that never draws costs no
/// memory, and the draw sequence is bit-identical to the old layout that
/// eagerly stored one `SmallRng` per entity. Streams are only ever
/// accessed by index (the map is never iterated), so the `HashMap`
/// backing is determinism-neutral.
#[derive(Clone, Debug)]
pub struct LazyStreams {
    name: &'static str,
    streams: std::collections::HashMap<u64, SmallRng>,
}

impl LazyStreams {
    pub fn new(name: &'static str) -> LazyStreams {
        LazyStreams {
            name,
            streams: std::collections::HashMap::new(),
        }
    }

    /// The stream for entity `index`, materialized on first use.
    pub fn get(&mut self, hub: &RngHub, index: u64) -> &mut SmallRng {
        self.streams
            .entry(index)
            .or_insert_with(|| hub.stream_for(self.name, index))
    }

    /// Streams materialized so far.
    pub fn materialized(&self) -> usize {
        self.streams.len()
    }

    /// Force-materialize streams `0..n` (the scale benchmarks use this
    /// to reproduce the legacy eager per-entity footprint).
    pub fn materialize_eager(&mut self, hub: &RngHub, n: u64) {
        for i in 0..n {
            self.get(hub, i);
        }
    }

    /// Heap bytes currently held by materialized streams (approximate:
    /// entry payload only, not `HashMap` bucket overhead).
    pub fn resident_bytes(&self) -> usize {
        self.streams.capacity() * (std::mem::size_of::<(u64, SmallRng)>() + 8)
    }
}

/// Draw from `[lo, hi]` inclusive; degenerate ranges return `lo`.
pub fn uniform_incl(rng: &mut SmallRng, lo: u64, hi: u64) -> u64 {
    if hi <= lo {
        lo
    } else {
        rng.gen_range(lo..=hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let a = RngHub::new(42);
        let b = RngHub::new(42);
        let mut ra = a.stream("daemon");
        let mut rb = b.stream("daemon");
        for _ in 0..100 {
            assert_eq!(ra.gen::<u64>(), rb.gen::<u64>());
        }
    }

    #[test]
    fn different_names_different_streams() {
        let hub = RngHub::new(42);
        let mut ra = hub.stream("tick");
        let mut rb = hub.stream("daemon");
        let va: Vec<u64> = (0..8).map(|_| ra.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| rb.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_indices_different_streams() {
        let hub = RngHub::new(7);
        let mut r0 = hub.stream_for("core", 0);
        let mut r1 = hub.stream_for("core", 1);
        let v0: Vec<u64> = (0..8).map(|_| r0.gen()).collect();
        let v1: Vec<u64> = (0..8).map(|_| r1.gen()).collect();
        assert_ne!(v0, v1);
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut ra = RngHub::new(1).stream("x");
        let mut rb = RngHub::new(2).stream("x");
        assert_ne!(
            (0..8).map(|_| ra.gen::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| rb.gen::<u64>()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn uniform_incl_degenerate() {
        let mut r = RngHub::new(0).stream("u");
        assert_eq!(uniform_incl(&mut r, 5, 5), 5);
        assert_eq!(uniform_incl(&mut r, 9, 3), 9);
        for _ in 0..100 {
            let v = uniform_incl(&mut r, 10, 20);
            assert!((10..=20).contains(&v));
        }
    }

    #[test]
    fn lazy_streams_match_eager_columns() {
        let hub = RngHub::new(0x5eed);
        // The old layout: one eagerly seeded SmallRng per node.
        let mut eager: Vec<SmallRng> = (0..8).map(|n| hub.stream_for("dram-refresh", n)).collect();
        let mut lazy = LazyStreams::new("dram-refresh");
        assert_eq!(lazy.materialized(), 0);
        // Interleave draws across entities in a scattered order; every
        // draw must match the eager column draw-for-draw.
        for &n in &[3u64, 0, 3, 7, 1, 1, 3, 0, 5, 7] {
            let want = eager[n as usize].gen::<u64>();
            let got = lazy.get(&hub, n).gen::<u64>();
            assert_eq!(want, got, "stream {n} diverged");
        }
        assert_eq!(lazy.materialized(), 5, "only touched entities exist");
        lazy.materialize_eager(&hub, 8);
        assert_eq!(lazy.materialized(), 8);
        assert!(lazy.resident_bytes() > 0);
    }

    #[test]
    fn fnv_known_value() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
