//! Cycle counts and wall-clock conversion.
//!
//! All simulated time is measured in processor cycles of the 850 MHz
//! PPC450 core clock, matching how the paper reports its measurements
//! ("658,958 processor cycles", "1.6 µs latency", ...).

/// The BG/P core clock in MHz.
pub const CLOCK_MHZ: u64 = 850;

/// A point in simulated time, in core clock cycles since machine reset.
pub type Cycle = u64;

/// Convert cycles to microseconds at the BG/P clock.
#[inline]
pub fn cycles_to_us(c: Cycle) -> f64 {
    c as f64 / CLOCK_MHZ as f64
}

/// Convert microseconds to cycles at the BG/P clock (rounded).
#[inline]
pub fn us_to_cycles(us: f64) -> Cycle {
    (us * CLOCK_MHZ as f64).round() as Cycle
}

/// Convert cycles to seconds.
#[inline]
pub fn cycles_to_s(c: Cycle) -> f64 {
    cycles_to_us(c) / 1e6
}

/// Convert nanoseconds to cycles (rounded).
#[inline]
pub fn ns_to_cycles(ns: f64) -> Cycle {
    (ns * CLOCK_MHZ as f64 / 1e3).round() as Cycle
}

/// Bytes-per-cycle for a bandwidth expressed in MB/s at the core clock.
/// (425 MB/s torus link ⇒ 0.5 B/cycle at 850 MHz.)
#[inline]
pub fn mbs_to_bytes_per_cycle(mbs: f64) -> f64 {
    mbs * 1e6 / (CLOCK_MHZ as f64 * 1e6)
}

/// Cycles needed to move `bytes` at `bytes_per_cycle` (ceiling).
#[inline]
pub fn transfer_cycles(bytes: u64, bytes_per_cycle: f64) -> Cycle {
    if bytes == 0 {
        return 0;
    }
    (bytes as f64 / bytes_per_cycle).ceil() as Cycle
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn us_roundtrip() {
        // 1.6 us (DCMF eager latency) is 1360 cycles at 850 MHz.
        assert_eq!(us_to_cycles(1.6), 1360);
        assert!((cycles_to_us(1360) - 1.6).abs() < 1e-9);
    }

    #[test]
    fn fwq_sample_is_sub_millisecond() {
        // The paper's FWQ quantum: 658,958 cycles ≈ 0.000775 s.
        let s = cycles_to_s(658_958);
        assert!(s > 0.0007 && s < 0.0009, "quantum {s}");
    }

    #[test]
    fn torus_link_rate() {
        let bpc = mbs_to_bytes_per_cycle(425.0);
        assert!((bpc - 0.5).abs() < 1e-9);
        // 1 MB at 0.5 B/cycle takes 2M cycles.
        assert_eq!(transfer_cycles(1 << 20, bpc), 2 << 20);
    }

    #[test]
    fn zero_transfer_is_free() {
        assert_eq!(transfer_cycles(0, 0.5), 0);
    }

    #[test]
    fn ns_conversion() {
        // 100 ns = 85 cycles.
        assert_eq!(ns_to_cycles(100.0), 85);
    }
}
