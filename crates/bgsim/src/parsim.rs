//! Conservative parallel discrete-event simulation over sharded event
//! domains.
//!
//! The machine is sharded into [`DomainLogic`] cells (one per node or
//! pset), each owning a private [`Engine`] and a private digest
//! [`Trace`]. Execution proceeds in **epochs** bounded by a conservative
//! *lookahead* window: every cross-domain event has a nonzero minimum
//! link latency (`MachineConfig::min_link_cycles` — torus injection +
//! hop, or one collective-network tree stage), so all events earlier
//! than `min_pending + lookahead` can be processed without any domain
//! observing another's in-window activity. Within an epoch a worker
//! pool drains the domains independently; cross-domain sends are
//! buffered in per-domain outboxes and merged at the epoch barrier in
//! deterministic `(cycle, source-domain, emission-seq)` order.
//!
//! Determinism argument, in three steps:
//!
//! 1. Within an epoch, each domain is touched by exactly one worker and
//!    reads nothing outside itself, so its event order and outbox
//!    emission order are schedule-independent.
//! 2. The outbox merge sorts by `(cycle, source-domain, emission-seq)`
//!    — a total order over all cross-domain sends of the epoch that
//!    does not depend on which worker finished first — so each
//!    destination engine assigns arrival sequence numbers identically
//!    on every run.
//! 3. The lookahead assertion in [`Outbox::send`] guarantees no send
//!    can land inside the epoch that emitted it, so steps 1 and 2 cover
//!    every event. By induction over epochs the full event history, and
//!    therefore every per-domain digest, is bit-identical for any
//!    worker count — `threads: 1` is the conformance oracle.
//!
//! This module is the parallel *substrate*: it runs any `Send` domain
//! logic. The full-machine `Machine` keeps kernels, VFS, and messaging
//! global (and stays sequential — see `Machine::run_windowed` for the
//! windowed driver over the same protocol); shard-level parallelism for
//! the bench suite lives in `bench::par` on top of whole independent
//! machines.

use crate::cycles::Cycle;
use crate::engine::{Engine, EvKind};
use crate::trace::{Trace, TraceEvent};

pub type DomainId = u32;

/// One shard of simulation logic. Handles its own events and emits
/// follow-ups through the [`Outbox`]; must be `Send` so a worker pool
/// can own it for the duration of an epoch.
pub trait DomainLogic: Send {
    fn handle(&mut self, now: Cycle, kind: &EvKind, out: &mut Outbox<'_>);
}

/// A cross-domain event buffered until the epoch barrier.
#[derive(Clone, Debug)]
struct RemoteEv {
    at: Cycle,
    dst: DomainId,
    kind: EvKind,
}

/// Event emission interface handed to [`DomainLogic::handle`]. Local
/// events go straight into the domain's own queue (any future cycle);
/// cross-domain sends must respect the lookahead floor and are merged
/// at the epoch barrier.
pub struct Outbox<'a> {
    lookahead: Cycle,
    now: Cycle,
    local: &'a mut Vec<(Cycle, EvKind)>,
    remote: &'a mut Vec<RemoteEv>,
}

impl Outbox<'_> {
    /// Schedule a local (same-domain) event at absolute cycle `at`.
    pub fn local_at(&mut self, at: Cycle, kind: EvKind) {
        debug_assert!(at >= self.now, "local event into the past");
        self.local.push((at.max(self.now), kind));
    }

    /// Schedule a local (same-domain) event `delta` cycles from now.
    pub fn local_in(&mut self, delta: Cycle, kind: EvKind) {
        self.local.push((self.now + delta, kind));
    }

    /// Send an event to another domain, arriving `delay` cycles from
    /// now. `delay` must be at least the lookahead — the conservative
    /// protocol is unsound otherwise, so this is a hard assertion, not
    /// a debug one.
    pub fn send(&mut self, dst: DomainId, delay: Cycle, kind: EvKind) {
        assert!(
            delay >= self.lookahead,
            "cross-domain send delay {} below lookahead {}",
            delay,
            self.lookahead
        );
        self.remote.push(RemoteEv {
            at: self.now + delay,
            dst,
            kind,
        });
    }
}

/// One domain: engine + logic + digest trace + outbox scratch.
struct DomainCell {
    engine: Engine,
    logic: Box<dyn DomainLogic>,
    trace: Trace,
    /// Cross-domain sends emitted this epoch, in emission order.
    outbox: Vec<RemoteEv>,
    /// Scratch for local emissions of one `handle` call.
    local_scratch: Vec<(Cycle, EvKind)>,
}

impl DomainCell {
    /// Drain this domain's queue up to and including `bound`.
    fn drain_epoch(&mut self, bound: Cycle, lookahead: Cycle) {
        while let Some(ev) = self.engine.pop_until(bound) {
            self.trace.record(
                ev.at,
                TraceEvent::Custom {
                    tag: ev_tag(&ev.kind),
                },
            );
            let mut out = Outbox {
                lookahead,
                now: ev.at,
                local: &mut self.local_scratch,
                remote: &mut self.outbox,
            };
            self.logic.handle(ev.at, &ev.kind, &mut out);
            for (at, kind) in self.local_scratch.drain(..) {
                self.engine.schedule(at, kind);
            }
        }
    }
}

/// Fold an event payload into a digestable tag (FNV-1a over the
/// variant and its fields).
fn ev_tag(kind: &EvKind) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    match *kind {
        EvKind::OpDone { tid, gen } => {
            mix(1);
            mix(tid as u64);
            mix(gen as u64);
        }
        EvKind::Kernel { node, tag } => {
            mix(2);
            mix(node as u64);
            mix(tag);
        }
        EvKind::NetDeliver { msg_id } => {
            mix(3);
            mix(msg_id);
        }
        EvKind::Ipi { core, kind } => {
            mix(4);
            mix(core as u64);
            mix(kind as u64);
        }
        EvKind::Fault { core, kind } => {
            mix(5);
            mix(core as u64);
            mix(kind as u64);
        }
        EvKind::CollDone { tid, coll } => {
            mix(6);
            mix(tid as u64);
            mix(coll);
        }
        EvKind::Ras { idx } => {
            mix(7);
            mix(idx as u64);
        }
    }
    h
}

/// How a parallel run ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ParOutcome {
    /// Cycle of the last processed event across all domains.
    pub final_cycle: Cycle,
    /// Fold of the per-domain trace digests, in domain order.
    pub digest: u64,
    /// Total events processed.
    pub events: u64,
    /// Parallel epochs executed.
    pub epochs: u64,
}

/// The sharded simulator.
pub struct ParSim {
    cells: Vec<DomainCell>,
    lookahead: Cycle,
    threads: usize,
    epochs: u64,
    /// Epoch-grained quiescence fast-forward: skip the drain call for
    /// cells whose earliest event lies beyond the epoch bound. Those
    /// cells would pop nothing — the skip elides the per-cell queue
    /// touch (and, threaded, the cell's share of the worker pass)
    /// without reordering a single event.
    fast_forward: bool,
    /// Cells skipped as epoch-quiescent (accumulated across epochs).
    skipped_cells: u64,
    /// Epoch-barrier merge buffer, reused across epochs so the barrier
    /// allocates only on high-water growth.
    merge_scratch: Vec<(Cycle, u32, usize, RemoteEv)>,
}

impl ParSim {
    /// Build a simulator over `logics.len()` domains with the given
    /// conservative lookahead (clamped to ≥ 1) and worker count
    /// (clamped to ≥ 1; 1 means run inline — the reference mode).
    pub fn new(logics: Vec<Box<dyn DomainLogic>>, lookahead: Cycle, threads: usize) -> ParSim {
        assert!(!logics.is_empty(), "at least one domain required");
        ParSim {
            cells: logics
                .into_iter()
                .map(|logic| DomainCell {
                    engine: Engine::new(),
                    logic,
                    trace: Trace::new(false),
                    outbox: Vec::new(),
                    local_scratch: Vec::new(),
                })
                .collect(),
            lookahead: lookahead.max(1),
            threads: threads.max(1),
            epochs: 0,
            fast_forward: true,
            skipped_cells: 0,
            merge_scratch: Vec::new(),
        }
    }

    /// Toggle the epoch-grained quiescence fast-forward (on by
    /// default). Off reproduces the drain-every-cell reference
    /// schedule; outcomes are bit-identical either way.
    pub fn with_fast_forward(mut self, on: bool) -> ParSim {
        self.fast_forward = on;
        self
    }

    /// Cells skipped as epoch-quiescent so far (0 with fast-forward
    /// off).
    pub fn skipped_cells(&self) -> u64 {
        self.skipped_cells
    }

    pub fn domains(&self) -> u32 {
        self.cells.len() as u32
    }

    pub fn lookahead(&self) -> Cycle {
        self.lookahead
    }

    /// Seed an initial event into `domain` at absolute cycle `at`.
    pub fn schedule(&mut self, domain: DomainId, at: Cycle, kind: EvKind) {
        self.cells[domain as usize].engine.schedule(at, kind);
    }

    /// Per-domain trace digests (domain order).
    pub fn cell_digests(&self) -> Vec<u64> {
        self.cells.iter().map(|c| c.trace.digest()).collect()
    }

    /// Run until every queue is empty. Deterministic for any worker
    /// count (see the module docs for the argument).
    pub fn run(&mut self) -> ParOutcome {
        loop {
            // The global conservative horizon: the earliest pending
            // event anywhere, plus the lookahead. Everything strictly
            // below it is safe to process in parallel, because no
            // cross-domain send emitted in-window can land before it.
            //
            // Anchoring the window at `min_at` (rather than at the
            // current clock) is also a quiescence fast-forward: a sparse
            // schedule jumps straight to the next event, so the epoch
            // count scales with event density, never with the simulated
            // cycle span. `Machine::run_windowed` derives its window
            // bound by the same rule when the fast path is on.
            let min_at = self
                .cells
                .iter_mut()
                .filter_map(|c| c.engine.peek_at())
                .min();
            let Some(min_at) = min_at else { break };
            let horizon = min_at.saturating_add(self.lookahead);
            let bound = horizon - 1; // pop_until is inclusive
            self.epochs += 1;

            let lookahead = self.lookahead;
            // Epoch-grained fast-forward: a cell whose head lies beyond
            // the bound pops nothing this epoch — mark it quiescent and
            // skip its drain entirely. Cross-domain sends only land at
            // the barrier below, so a cell quiescent at the epoch start
            // stays quiescent for the whole window; the skip cannot
            // miss an event.
            let active: Vec<bool> = if self.fast_forward {
                self.cells
                    .iter_mut()
                    .map(|c| {
                        let a = c.engine.peek_at().is_some_and(|at| at <= bound);
                        if !a {
                            self.skipped_cells += 1;
                        }
                        a
                    })
                    .collect()
            } else {
                vec![true; self.cells.len()]
            };
            if self.threads == 1 {
                for (cell, act) in self.cells.iter_mut().zip(&active) {
                    if *act {
                        cell.drain_epoch(bound, lookahead);
                    }
                }
            } else {
                let per = self.cells.len().div_ceil(self.threads);
                std::thread::scope(|s| {
                    for (chunk, acts) in self.cells.chunks_mut(per).zip(active.chunks(per)) {
                        s.spawn(move || {
                            for (cell, act) in chunk.iter_mut().zip(acts) {
                                if *act {
                                    cell.drain_epoch(bound, lookahead);
                                }
                            }
                        });
                    }
                });
            }

            // Epoch barrier: merge the outboxes in (cycle, source
            // domain, emission seq) order — a total order independent
            // of worker scheduling — so destination engines assign
            // arrival sequence numbers identically on every run.
            let mut merged = std::mem::take(&mut self.merge_scratch);
            for (src, cell) in self.cells.iter_mut().enumerate() {
                for (i, ev) in cell.outbox.drain(..).enumerate() {
                    merged.push((ev.at, src as u32, i, ev));
                }
            }
            merged.sort_by_key(|&(at, src, i, _)| (at, src, i));
            for (_, _, _, ev) in merged.drain(..) {
                debug_assert!(ev.at >= horizon, "send violated the epoch horizon");
                self.cells[ev.dst as usize].engine.schedule(ev.at, ev.kind);
            }
            self.merge_scratch = merged;
        }

        let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
        for cell in &self.cells {
            digest ^= cell.trace.digest();
            digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
        }
        ParOutcome {
            final_cycle: self
                .cells
                .iter()
                .map(|c| c.engine.last_event_cycle())
                .max()
                .unwrap_or(0),
            digest,
            events: self.cells.iter().map(|c| c.engine.processed()).sum(),
            epochs: self.epochs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A token-ring logic: each event forwards a token to the next
    /// domain with a TTL, plus a local echo event to exercise
    /// intra-epoch work.
    struct Ring {
        me: u32,
        n: u32,
        delay: Cycle,
    }

    impl DomainLogic for Ring {
        fn handle(&mut self, _now: Cycle, kind: &EvKind, out: &mut Outbox<'_>) {
            if let EvKind::Kernel { tag, .. } = *kind {
                if tag == 0 {
                    return; // local echo: no further work
                }
                out.local_in(
                    3,
                    EvKind::Kernel {
                        node: self.me,
                        tag: 0,
                    },
                );
                out.send(
                    (self.me + 1) % self.n,
                    self.delay,
                    EvKind::Kernel {
                        node: (self.me + 1) % self.n,
                        tag: tag - 1,
                    },
                );
            }
        }
    }

    fn ring_sim(n: u32, threads: usize) -> ParSim {
        let logics: Vec<Box<dyn DomainLogic>> = (0..n)
            .map(|me| Box::new(Ring { me, n, delay: 150 }) as Box<dyn DomainLogic>)
            .collect();
        let mut sim = ParSim::new(logics, 100, threads);
        // Several concurrent tokens with staggered starts.
        for t in 0..4u32 {
            sim.schedule(
                t % n,
                10 + t as u64 * 7,
                EvKind::Kernel {
                    node: t % n,
                    tag: 40,
                },
            );
        }
        sim
    }

    #[test]
    fn ring_completes_and_counts() {
        let out = ring_sim(8, 1).run();
        // 4 tokens x 40 hops, each hop also spawns one local echo, plus
        // the 4 seeds.
        assert_eq!(out.events, 4 + 4 * 40 * 2);
        assert!(out.epochs > 1, "must take multiple epochs");
        assert!(out.final_cycle > 0);
    }

    #[test]
    fn parallel_matches_sequential_reference() {
        let seq = ring_sim(8, 1).run();
        for threads in [2, 4, 8] {
            let par = ring_sim(8, threads).run();
            assert_eq!(par, seq, "threads={threads} diverged");
        }
    }

    #[test]
    fn per_domain_digests_match_too() {
        let mut a = ring_sim(6, 1);
        let mut b = ring_sim(6, 3);
        let oa = a.run();
        let ob = b.run();
        assert_eq!(oa, ob);
        assert_eq!(a.cell_digests(), b.cell_digests());
    }

    #[test]
    fn epochs_scale_with_events_not_cycle_span() {
        // Quiescence fast-forward: the window anchors at the earliest
        // pending event, so three events a billion cycles apart cost
        // three epochs — no empty windows in between.
        struct Absorb;
        impl DomainLogic for Absorb {
            fn handle(&mut self, _now: Cycle, _kind: &EvKind, _out: &mut Outbox<'_>) {}
        }
        let mut sim = ParSim::new(vec![Box::new(Absorb) as Box<dyn DomainLogic>], 10, 1);
        for i in 0..3u64 {
            sim.schedule(0, 1 + i * 1_000_000_000, EvKind::Kernel { node: 0, tag: i });
        }
        let out = sim.run();
        assert_eq!(out.events, 3);
        assert_eq!(out.epochs, 3);
        assert_eq!(out.final_cycle, 1 + 2 * 1_000_000_000);
    }

    #[test]
    fn epoch_fast_forward_is_bit_identical_and_skips_cells() {
        // A ring keeps at most a few domains active per epoch — the
        // rest are quiescent and must be skipped, with the outcome and
        // per-cell digests unchanged from the drain-every-cell
        // reference.
        let mut ff = ring_sim(8, 1);
        let mut refr = ring_sim(8, 1).with_fast_forward(false);
        let out_ff = ff.run();
        let out_ref = refr.run();
        assert_eq!(out_ff, out_ref);
        assert_eq!(ff.cell_digests(), refr.cell_digests());
        assert!(ff.skipped_cells() > 0, "ring must leave cells quiescent");
        assert_eq!(refr.skipped_cells(), 0);
        // Threaded fast-forward agrees too.
        let mut ff4 = ring_sim(8, 4);
        assert_eq!(ff4.run(), out_ref);
        assert_eq!(ff4.cell_digests(), refr.cell_digests());
    }

    #[test]
    #[should_panic(expected = "below lookahead")]
    fn undercutting_lookahead_panics() {
        struct Bad;
        impl DomainLogic for Bad {
            fn handle(&mut self, _now: Cycle, _kind: &EvKind, out: &mut Outbox<'_>) {
                out.send(1, 5, EvKind::Kernel { node: 1, tag: 0 });
            }
        }
        let mut sim = ParSim::new(vec![Box::new(Bad), Box::new(Bad)], 100, 1);
        sim.schedule(0, 1, EvKind::Kernel { node: 0, tag: 1 });
        sim.run();
    }
}
