//! Event tracing and trace digests.
//!
//! The reproducibility experiments compare whole runs: two machines with
//! the same configuration and seed must produce identical event streams.
//! Comparing streams directly is O(run length) in memory, so the trace
//! also maintains a rolling FNV digest that tests can compare in O(1).
//!
//! Entry retention has two modes: unbounded (small runs, exact replay)
//! and a bounded ring ([`Trace::with_capacity`]) that keeps the last `n`
//! entries for long-running benches — the digest always covers the full
//! stream either way, and [`Trace::dropped`] preserves absolute indices
//! for the divergence reporter.

use std::collections::VecDeque;

use crate::cycles::Cycle;

/// One recorded trace entry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceEntry {
    pub at: Cycle,
    pub what: TraceEvent,
}

/// The observable simulator events.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TraceEvent {
    OpStart {
        tid: u32,
        opname: &'static str,
        cost: u64,
    },
    OpEnd {
        tid: u32,
    },
    SyscallEnter {
        tid: u32,
        name: &'static str,
    },
    SyscallExit {
        tid: u32,
        ok: bool,
    },
    MsgSend {
        src: u32,
        dst: u32,
        bytes: u64,
        tag: u64,
    },
    MsgRecv {
        dst: u32,
        bytes: u64,
        tag: u64,
    },
    Noise {
        node: u32,
        tag: u64,
        cycles: u64,
    },
    Ipi {
        core: u32,
        kind: u32,
    },
    Fault {
        core: u32,
        kind: u32,
    },
    ThreadExit {
        tid: u32,
    },
    Custom {
        tag: u64,
    },
}

/// A rolling-digest event trace.
#[derive(Clone, Debug)]
pub struct Trace {
    digest: u64,
    count: u64,
    keep_entries: bool,
    /// Ring-buffer bound on retained entries; `None` means unbounded.
    capacity: Option<usize>,
    /// Entries evicted from a bounded ring (absolute index of the first
    /// retained entry).
    dropped: u64,
    entries: VecDeque<TraceEntry>,
    /// One-entry memo for the op-name hash: `(ptr, len, fnv1a)` of the
    /// last `&'static str` hashed. The hot loop records the same op name
    /// millions of times; interned statics make the pointer a reliable
    /// cache key, and on a miss the hash is recomputed, so the digest is
    /// unchanged either way.
    name_memo: (usize, usize, u64),
}

impl Trace {
    pub fn new(keep_entries: bool) -> Trace {
        Trace {
            digest: 0xcbf2_9ce4_8422_2325,
            count: 0,
            keep_entries,
            capacity: None,
            dropped: 0,
            entries: VecDeque::new(),
            name_memo: (0, 0, 0),
        }
    }

    /// A trace that keeps only the most recent `n` entries (bounded
    /// memory for long-running benches). The digest still covers every
    /// event ever recorded.
    pub fn with_capacity(n: usize) -> Trace {
        Trace {
            digest: 0xcbf2_9ce4_8422_2325,
            count: 0,
            keep_entries: true,
            capacity: Some(n),
            dropped: 0,
            entries: VecDeque::with_capacity(n),
            name_memo: (0, 0, 0),
        }
    }

    /// `fnv1a(name)` through the one-entry memo (same value, cheaper for
    /// the repeated-name hot path).
    fn name_hash(&mut self, name: &'static str) -> u64 {
        let key = (name.as_ptr() as usize, name.len());
        if (self.name_memo.0, self.name_memo.1) != key {
            self.name_memo = (key.0, key.1, crate::rng::fnv1a(name.as_bytes()));
        }
        self.name_memo.2
    }

    #[inline]
    fn mix(&mut self, v: u64) {
        self.digest ^= v;
        self.digest = self.digest.wrapping_mul(0x0000_0100_0000_01b3);
    }

    /// Record an event at cycle `at`.
    #[inline]
    pub fn record(&mut self, at: Cycle, what: TraceEvent) {
        self.count += 1;
        self.mix(at);
        // Fold the event discriminant and fields into the digest.
        match &what {
            TraceEvent::OpStart { tid, opname, cost } => {
                let h = self.name_hash(opname);
                self.mix(1);
                self.mix(*tid as u64);
                self.mix(h);
                self.mix(*cost);
            }
            TraceEvent::OpEnd { tid } => {
                self.mix(2);
                self.mix(*tid as u64);
            }
            TraceEvent::SyscallEnter { tid, name } => {
                let h = self.name_hash(name);
                self.mix(3);
                self.mix(*tid as u64);
                self.mix(h);
            }
            TraceEvent::SyscallExit { tid, ok } => {
                self.mix(4);
                self.mix(*tid as u64);
                self.mix(*ok as u64);
            }
            TraceEvent::MsgSend {
                src,
                dst,
                bytes,
                tag,
            } => {
                self.mix(5);
                self.mix(*src as u64);
                self.mix(*dst as u64);
                self.mix(*bytes);
                self.mix(*tag);
            }
            TraceEvent::MsgRecv { dst, bytes, tag } => {
                self.mix(6);
                self.mix(*dst as u64);
                self.mix(*bytes);
                self.mix(*tag);
            }
            TraceEvent::Noise { node, tag, cycles } => {
                self.mix(7);
                self.mix(*node as u64);
                self.mix(*tag);
                self.mix(*cycles);
            }
            TraceEvent::Ipi { core, kind } => {
                self.mix(8);
                self.mix(*core as u64);
                self.mix(*kind as u64);
            }
            TraceEvent::Fault { core, kind } => {
                self.mix(9);
                self.mix(*core as u64);
                self.mix(*kind as u64);
            }
            TraceEvent::ThreadExit { tid } => {
                self.mix(10);
                self.mix(*tid as u64);
            }
            TraceEvent::Custom { tag } => {
                self.mix(11);
                self.mix(*tag);
            }
        }
        if self.keep_entries {
            match self.capacity {
                Some(0) => self.dropped += 1,
                Some(cap) => {
                    if self.entries.len() == cap {
                        self.entries.pop_front();
                        self.dropped += 1;
                    }
                    self.entries.push_back(TraceEntry { at, what });
                }
                None => self.entries.push_back(TraceEntry { at, what }),
            }
        }
    }

    /// O(1) digest of everything recorded so far.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    /// Recorded entries (empty unless constructed with `keep_entries`).
    /// In ring mode these are the most recent `capacity` entries; entry
    /// `i` here is absolute event index `dropped() + i`.
    pub fn entries(&self) -> &VecDeque<TraceEntry> {
        &self.entries
    }

    /// Entries evicted from a bounded ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_streams_identical_digests() {
        let mut a = Trace::new(false);
        let mut b = Trace::new(false);
        for i in 0..100 {
            a.record(
                i,
                TraceEvent::OpEnd {
                    tid: (i % 4) as u32,
                },
            );
            b.record(
                i,
                TraceEvent::OpEnd {
                    tid: (i % 4) as u32,
                },
            );
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.count(), 100);
    }

    #[test]
    fn timing_difference_changes_digest() {
        let mut a = Trace::new(false);
        let mut b = Trace::new(false);
        a.record(10, TraceEvent::OpEnd { tid: 0 });
        b.record(11, TraceEvent::OpEnd { tid: 0 });
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn payload_difference_changes_digest() {
        let mut a = Trace::new(false);
        let mut b = Trace::new(false);
        a.record(
            5,
            TraceEvent::MsgSend {
                src: 0,
                dst: 1,
                bytes: 64,
                tag: 7,
            },
        );
        b.record(
            5,
            TraceEvent::MsgSend {
                src: 0,
                dst: 1,
                bytes: 65,
                tag: 7,
            },
        );
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn ring_mode_bounds_memory_and_keeps_digest() {
        let mut ring = Trace::with_capacity(8);
        let mut full = Trace::new(true);
        for i in 0..100 {
            ring.record(i, TraceEvent::Custom { tag: i });
            full.record(i, TraceEvent::Custom { tag: i });
        }
        assert_eq!(ring.entries().len(), 8);
        assert_eq!(ring.dropped(), 92);
        assert_eq!(ring.count(), 100);
        // The digest covers the whole stream, not just retained entries.
        assert_eq!(ring.digest(), full.digest());
        // Retained entries are the newest, aligned by absolute index.
        assert_eq!(ring.entries()[0], full.entries()[92]);
        assert_eq!(*ring.entries().back().unwrap(), full.entries()[99]);
        // Capacity 0 keeps nothing but still counts.
        let mut none = Trace::with_capacity(0);
        none.record(1, TraceEvent::Custom { tag: 1 });
        assert!(none.entries().is_empty());
        assert_eq!(none.dropped(), 1);
    }

    #[test]
    fn entries_kept_only_when_asked() {
        let mut a = Trace::new(true);
        a.record(1, TraceEvent::Custom { tag: 9 });
        assert_eq!(a.entries().len(), 1);
        let mut b = Trace::new(false);
        b.record(1, TraceEvent::Custom { tag: 9 });
        assert!(b.entries().is_empty());
        // Digest identical either way.
        assert_eq!(a.digest(), b.digest());
    }
}
