//! The software-managed TLB of the PPC450 core.
//!
//! BG/P hardware supports the page sizes {1 MB, 16 MB, 256 MB, 1 GB}
//! (§IV.C) plus small 4 KiB pages, with a fixed number of entries per
//! core and a software refill handler. CNK pins a *static* set of entries
//! that never miss (§VI.B); Linux-like kernels fill entries on demand and
//! eat a refill penalty — one of the noise/overhead contributors the
//! paper contrasts (Table II: "No TLB misses — CNK: easy, Linux: not
//! avail").

/// Hardware page sizes in bytes, smallest to largest.
pub const PAGE_SIZES: [u64; 5] = [4 << 10, 1 << 20, 16 << 20, 256 << 20, 1 << 30];

/// The large page sizes CNK's partitioner tiles with (§IV.C lists these
/// four).
pub const LARGE_PAGE_SIZES: [u64; 4] = [1 << 20, 16 << 20, 256 << 20, 1 << 30];

/// Cycles for the software TLB refill handler (save/walk/fill/rfi).
pub const TLB_MISS_CYCLES: u64 = 120;

/// One TLB entry: a virtual→physical mapping of a hardware page.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TlbEntry {
    pub vaddr: u64,
    pub paddr: u64,
    pub size: u64,
    /// Pinned entries are never evicted (CNK's static map).
    pub pinned: bool,
}

impl TlbEntry {
    pub fn covers(&self, va: u64) -> bool {
        va >= self.vaddr && va - self.vaddr < self.size
    }

    pub fn translate(&self, va: u64) -> Option<u64> {
        self.covers(va).then(|| self.paddr + (va - self.vaddr))
    }
}

/// A per-core TLB with round-robin replacement over the unpinned ways.
///
/// The pinned static map (CNK §VI.B) is identical on every core of a
/// process, so it lives in a shared, immutable `base` slice installed
/// once per process and reference-counted across its cores — at rack
/// scale the map costs one copy per process instead of one per core.
/// Per-core state (demand fills, runtime pins) stays in `entries`.
#[derive(Clone, Debug)]
pub struct Tlb {
    /// Shared pinned static map; `None` until a kernel installs one.
    base: Option<std::sync::Arc<[TlbEntry]>>,
    entries: Vec<TlbEntry>,
    capacity: usize,
    victim: usize,
    pub hits: u64,
    pub misses: u64,
}

/// Why an insert failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TlbError {
    /// All entries are pinned; nothing can be evicted.
    Full,
    /// The entry is not size-aligned (hardware requires natural alignment,
    /// §IV.C "respects hardware alignment constraints").
    Misaligned,
    /// Overlaps an existing entry's virtual range.
    Overlap,
    /// Size is not a hardware page size.
    BadSize,
}

impl Tlb {
    pub fn new(capacity: u32) -> Tlb {
        Tlb {
            base: None,
            entries: Vec::new(),
            capacity: capacity as usize,
            victim: 0,
            hits: 0,
            misses: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn base_slice(&self) -> &[TlbEntry] {
        self.base.as_deref().unwrap_or(&[])
    }

    /// Every installed entry, shared base first then per-core ways — the
    /// hardware scan order (pins precede fills, as in the flat layout).
    fn all(&self) -> impl Iterator<Item = &TlbEntry> {
        self.base_slice().iter().chain(self.entries.iter())
    }

    pub fn len(&self) -> usize {
        self.base_slice().len() + self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn pinned_count(&self) -> usize {
        self.base_slice().len() + self.entries.iter().filter(|e| e.pinned).count()
    }

    fn validate(&self, e: &TlbEntry) -> Result<(), TlbError> {
        if !PAGE_SIZES.contains(&e.size) {
            return Err(TlbError::BadSize);
        }
        if !e.vaddr.is_multiple_of(e.size) || !e.paddr.is_multiple_of(e.size) {
            return Err(TlbError::Misaligned);
        }
        if self
            .all()
            .any(|x| e.vaddr < x.vaddr + x.size && x.vaddr < e.vaddr + e.size)
        {
            return Err(TlbError::Overlap);
        }
        Ok(())
    }

    /// Install a process's shared static map in one shot. The slice must
    /// already be validated entry-by-entry (see [`Tlb::validate_map`]);
    /// this only checks that the ways fit. Requires an empty base —
    /// i.e. a freshly reset TLB at job launch.
    pub fn install_base(&mut self, map: std::sync::Arc<[TlbEntry]>) -> Result<(), TlbError> {
        debug_assert!(self.base.is_none(), "install_base on a live base");
        if self.len() + map.len() > self.capacity {
            return Err(TlbError::Full);
        }
        self.base = Some(map);
        Ok(())
    }

    /// Validate a candidate static map exactly as a sequence of [`pin`]
    /// calls on an empty TLB would: first offending entry wins, same
    /// error, same order.
    ///
    /// [`pin`]: Tlb::pin
    pub fn validate_map(map: &[TlbEntry], capacity: usize) -> Result<(), TlbError> {
        let mut scratch = Tlb::new(capacity as u32);
        for &e in map {
            scratch.pin(e)?;
        }
        Ok(())
    }

    /// Install a pinned entry (boot-time static map). Fails if the TLB is
    /// out of ways.
    pub fn pin(&mut self, e: TlbEntry) -> Result<(), TlbError> {
        self.validate(&e)?;
        if self.len() >= self.capacity {
            return Err(TlbError::Full);
        }
        self.entries.push(TlbEntry { pinned: true, ..e });
        Ok(())
    }

    /// Install a replaceable entry, evicting round-robin among unpinned
    /// ways if necessary.
    pub fn fill(&mut self, e: TlbEntry) -> Result<(), TlbError> {
        self.validate(&e)?;
        let e = TlbEntry { pinned: false, ..e };
        if self.len() < self.capacity {
            self.entries.push(e);
            return Ok(());
        }
        let n = self.entries.len();
        for probe in 0..n {
            let i = (self.victim + probe) % n;
            if !self.entries[i].pinned {
                self.entries[i] = e;
                self.victim = (i + 1) % n;
                return Ok(());
            }
        }
        Err(TlbError::Full)
    }

    /// Translate, counting hit/miss. A miss returns `None`; the kernel's
    /// refill path decides what to do.
    pub fn lookup(&mut self, va: u64) -> Option<u64> {
        match self.peek(va) {
            Some(pa) => {
                self.hits += 1;
                Some(pa)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Translate without touching statistics (introspection).
    pub fn peek(&self, va: u64) -> Option<u64> {
        self.all().find_map(|e| e.translate(va))
    }

    /// Drop all unpinned entries (context switch on the FWK model —
    /// the PPC450 TLB is not tagged). The shared base is all-pinned by
    /// construction and survives.
    pub fn flush_unpinned(&mut self) {
        self.entries.retain(|e| e.pinned);
        self.victim = 0;
    }

    /// Drop everything (chip reset), releasing this core's claim on the
    /// shared base.
    pub fn reset(&mut self) {
        self.base = None;
        self.entries.clear();
        self.victim = 0;
        self.hits = 0;
        self.misses = 0;
    }

    /// Heap bytes attributed to this core: its private ways plus its
    /// amortized share of the process's base map (total map bytes split
    /// over the cores currently holding a reference, so summing over the
    /// cores counts each map once).
    pub fn resident_bytes(&self) -> usize {
        let sz = std::mem::size_of::<TlbEntry>();
        let shared = self.base.as_ref().map_or(0, |b| {
            (b.len() * sz).div_ceil(std::sync::Arc::strong_count(b))
        });
        self.entries.capacity() * sz + shared
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(v: u64, p: u64, s: u64) -> TlbEntry {
        TlbEntry {
            vaddr: v,
            paddr: p,
            size: s,
            pinned: false,
        }
    }

    #[test]
    fn translate_within_page() {
        let mut t = Tlb::new(4);
        t.pin(e(0x100000, 0x4000000, 1 << 20)).unwrap();
        assert_eq!(t.lookup(0x100000), Some(0x4000000));
        assert_eq!(t.lookup(0x1fffff), Some(0x40fffff));
        assert_eq!(t.lookup(0x200000), None);
        assert_eq!(t.hits, 2);
        assert_eq!(t.misses, 1);
    }

    #[test]
    fn alignment_enforced() {
        let mut t = Tlb::new(4);
        assert_eq!(t.pin(e(0x1000, 0, 1 << 20)), Err(TlbError::Misaligned));
        assert_eq!(t.pin(e(0, 0x1000, 1 << 20)), Err(TlbError::Misaligned));
        assert_eq!(t.pin(e(0, 0, 12345)), Err(TlbError::BadSize));
    }

    #[test]
    fn overlap_rejected() {
        let mut t = Tlb::new(4);
        t.pin(e(0, 0, 16 << 20)).unwrap();
        assert_eq!(t.pin(e(1 << 20, 64 << 20, 1 << 20)), Err(TlbError::Overlap));
        assert!(t.pin(e(16 << 20, 64 << 20, 1 << 20)).is_ok());
    }

    #[test]
    fn pinned_never_evicted() {
        let mut t = Tlb::new(2);
        t.pin(e(0, 0, 1 << 20)).unwrap();
        for i in 1..10u64 {
            t.fill(e(i * (1 << 20), i * (1 << 20), 1 << 20)).unwrap();
        }
        assert!(t.peek(0).is_some(), "pinned entry survived");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn all_pinned_fill_fails() {
        let mut t = Tlb::new(1);
        t.pin(e(0, 0, 1 << 20)).unwrap();
        assert_eq!(t.fill(e(1 << 20, 1 << 20, 1 << 20)), Err(TlbError::Full));
    }

    #[test]
    fn round_robin_eviction() {
        let mut t = Tlb::new(2);
        t.fill(e(0, 0, 1 << 20)).unwrap();
        t.fill(e(1 << 20, 1 << 20, 1 << 20)).unwrap();
        t.fill(e(2 << 20, 2 << 20, 1 << 20)).unwrap(); // evicts slot 0
        assert!(t.peek(0).is_none());
        assert!(t.peek(1 << 20).is_some());
        assert!(t.peek(2 << 20).is_some());
    }

    #[test]
    fn flush_unpinned_keeps_static_map() {
        let mut t = Tlb::new(8);
        t.pin(e(0, 0, 16 << 20)).unwrap();
        t.fill(e(256 << 20, 256 << 20, 1 << 20)).unwrap();
        t.flush_unpinned();
        assert_eq!(t.len(), 1);
        assert!(t.peek(0).is_some());
    }

    #[test]
    fn base_map_shared_and_scanned_first() {
        use std::sync::Arc;
        let map: Arc<[TlbEntry]> = vec![
            TlbEntry {
                pinned: true,
                ..e(0, 0, 16 << 20)
            },
            TlbEntry {
                pinned: true,
                ..e(16 << 20, 64 << 20, 1 << 20)
            },
        ]
        .into();
        Tlb::validate_map(&map, 4).unwrap();
        let mut a = Tlb::new(4);
        let mut b = Tlb::new(4);
        a.install_base(map.clone()).unwrap();
        b.install_base(map.clone()).unwrap();
        drop(map);
        assert_eq!(a.lookup(16 << 20), Some(64 << 20));
        assert_eq!(a.len(), 2);
        assert_eq!(a.pinned_count(), 2);
        // Overlapping a base entry is rejected like any pinned entry.
        assert_eq!(a.fill(e(0, 128 << 20, 1 << 20)), Err(TlbError::Overlap));
        // The map's bytes are split across the two holders.
        let sz = std::mem::size_of::<TlbEntry>();
        assert_eq!(a.resident_bytes() + b.resident_bytes(), 2 * sz);
        // Flush keeps the base (it is all-pinned); reset releases it.
        a.fill(e(256 << 20, 256 << 20, 1 << 20)).unwrap();
        a.flush_unpinned();
        assert_eq!(a.len(), 2);
        a.reset();
        assert!(a.is_empty());
        assert_eq!(b.resident_bytes(), 2 * sz);
    }

    #[test]
    fn base_map_counts_against_capacity() {
        use std::sync::Arc;
        let map: Arc<[TlbEntry]> = vec![TlbEntry {
            pinned: true,
            ..e(0, 0, 1 << 20)
        }]
        .into();
        let mut t = Tlb::new(2);
        t.install_base(map).unwrap();
        t.fill(e(1 << 20, 1 << 20, 1 << 20)).unwrap();
        // Full: eviction walks only the private ways, never the base.
        t.fill(e(2 << 20, 2 << 20, 1 << 20)).unwrap();
        assert!(t.peek(0).is_some(), "base entry survived eviction");
        assert!(t.peek(1 << 20).is_none());
        assert!(t.peek(2 << 20).is_some());
        assert_eq!(
            Tlb::validate_map(&[e(0, 0, 1 << 20), e(0, 0, 1 << 20)], 4),
            Err(TlbError::Overlap)
        );
    }

    #[test]
    fn gigabyte_pages_supported() {
        let mut t = Tlb::new(4);
        t.pin(e(1 << 30, 0, 1 << 30)).unwrap();
        assert_eq!(t.peek((1 << 30) + 12345), Some(12345));
    }
}
