//! Cooperative live-run control: progress reporting, cancellation, and
//! deadlines for the execution drivers.
//!
//! The service node on a real machine can *watch and steer* a running
//! job, not just collect its exit code. This module gives the simulated
//! machine the same property without touching determinism: the run
//! drivers invoke an attached [`ProgressSink`] every
//! `interval_cycles` of simulated time, and between reports they poll a
//! shared [`CancelToken`] and the optional cycle deadline.
//!
//! Neutrality contract: with `timeout_wall` unset, nothing here reads
//! the host clock — reports fire on *simulated* cycle boundaries and
//! every observation is read-only (`engine.processed()`, a profiler
//! snapshot clone). A run with a hook attached whose sink always
//! returns [`ProgressCtl::Continue`] is therefore digest-, cycle-, and
//! profile-identical to the same run without one, for any interval —
//! pinned by the `progress_hook_is_neutral` proptest. The only
//! intentional side channel is the engine's occupancy counters (a hook
//! forces extra fast-path flush/re-enter transitions, visible as
//! `stale_discarded` churn), which feed the *coverage* digest, never
//! the trace digest or the profile.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::cycles::Cycle;
use crate::telemetry::ProfileSnapshot;

/// A shared cancellation flag: set once, observed by every clone. The
/// run drivers poll it between events; setting it mid-run yields a
/// clean [`RunOutcome::Cancelled`](crate::machine::RunOutcome) at the
/// next poll instead of tearing anything down.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation (idempotent, callable from any thread).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Why a run was cancelled.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CancelCause {
    /// The [`CancelToken`] was set (client request, session drop).
    Requested,
    /// The simulated-cycle budget (`timeout_cycles`) ran out.
    TimeoutCycles,
    /// The wall-clock budget (`timeout_wall`) ran out.
    TimeoutWall,
}

impl CancelCause {
    /// Stable outcome label (`cancelled` or `timeout`) for records and
    /// wire results.
    pub fn label(self) -> &'static str {
        match self {
            CancelCause::Requested => "cancelled",
            CancelCause::TimeoutCycles | CancelCause::TimeoutWall => "timeout",
        }
    }
}

/// One progress report, delivered to the sink on a simulated-cycle
/// cadence. Cumulative fields plus deltas since the previous report.
#[derive(Clone, Debug)]
pub struct ProgressReport {
    /// Engine clock at the report.
    pub cycle: Cycle,
    /// Heap events processed so far (fast-path retirements bypass the
    /// heap and are visible in `profile` instead).
    pub events: u64,
    /// Events since the previous report.
    pub d_events: u64,
    /// Cycles advanced since the previous report.
    pub d_cycles: u64,
    /// Live (non-exited) threads right now.
    pub live_threads: usize,
    /// Cumulative profiler snapshot (the delta is derivable by diffing
    /// against the previous report's snapshot).
    pub profile: ProfileSnapshot,
}

/// What the sink wants the run to do next.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProgressCtl {
    Continue,
    /// Stop the run with a [`RunOutcome::Cancelled`]
    /// (crate::machine::RunOutcome) carrying this cause.
    Cancel(CancelCause),
}

/// A progress consumer. Implemented for any `FnMut` closure; the
/// return value lets a sink double as a steering hook (a server whose
/// client vanished cancels from here).
pub trait ProgressSink: Send {
    fn on_progress(&mut self, report: &ProgressReport) -> ProgressCtl;
}

impl<F: FnMut(&ProgressReport) -> ProgressCtl + Send> ProgressSink for F {
    fn on_progress(&mut self, report: &ProgressReport) -> ProgressCtl {
        self(report)
    }
}

/// Configuration for a live (steerable) run, attached with
/// [`Machine::attach_live_hook`](crate::machine::Machine::attach_live_hook)
/// before calling a run driver.
#[derive(Default)]
pub struct LiveHook {
    /// Simulated cycles between progress reports; 0 disables reporting
    /// (cancel/deadline polling still runs).
    pub interval_cycles: u64,
    pub sink: Option<Box<dyn ProgressSink>>,
    pub cancel: Option<CancelToken>,
    /// Simulated-cycle budget, relative to the clock at attach time.
    pub timeout_cycles: Option<u64>,
    /// Wall-clock budget. The only knob here that reads the host clock
    /// — runs using it are explicitly non-deterministic in *outcome*
    /// (never in any completed result) and must not be memoized.
    pub timeout_wall: Option<Duration>,
}

impl LiveHook {
    pub fn new() -> LiveHook {
        LiveHook::default()
    }

    pub fn with_interval(mut self, cycles: u64) -> LiveHook {
        self.interval_cycles = cycles;
        self
    }

    pub fn with_sink(mut self, sink: Box<dyn ProgressSink>) -> LiveHook {
        self.sink = Some(sink);
        self
    }

    pub fn with_cancel(mut self, token: CancelToken) -> LiveHook {
        self.cancel = Some(token);
        self
    }

    pub fn with_timeout_cycles(mut self, cycles: u64) -> LiveHook {
        self.timeout_cycles = Some(cycles);
        self
    }

    pub fn with_timeout_wall(mut self, budget: Duration) -> LiveHook {
        self.timeout_wall = Some(budget);
        self
    }

    /// True when attaching this hook would change nothing.
    pub fn is_noop(&self) -> bool {
        self.sink.is_none()
            && self.cancel.is_none()
            && self.timeout_cycles.is_none()
            && self.timeout_wall.is_none()
    }
}

/// Runtime state of an attached hook (a `Machine` field; the drivers
/// call [`LiveState::tick`] once per event-loop iteration).
pub(crate) struct LiveState {
    pub sink: Option<Box<dyn ProgressSink>>,
    pub cancel: Option<CancelToken>,
    /// Absolute cycle deadline (attach clock + `timeout_cycles`).
    pub deadline: Option<Cycle>,
    pub wall_deadline: Option<Instant>,
    pub interval: u64,
    pub next_report_at: Cycle,
    /// Loop iterations since attach; gates the between-report
    /// cancel/deadline polls so they cost one modulo on the hot path.
    pub ticks: u64,
    /// Sticky "a check is due" flag: the fast path sets it when it
    /// breaks out for a check, so the loop head cannot miss it.
    pub due: bool,
    pub last_events: u64,
    pub last_cycle: Cycle,
}

impl LiveState {
    /// Poll cadence for cancel tokens and deadlines, in loop
    /// iterations. Low enough that a same-cycle event storm stays
    /// cancellable, high enough to be invisible in profiles.
    pub const TICK_CHECK: u64 = 1024;

    pub fn new(hook: LiveHook, now: Cycle, events: u64) -> LiveState {
        let interval = hook.interval_cycles;
        LiveState {
            sink: hook.sink,
            cancel: hook.cancel,
            deadline: hook.timeout_cycles.map(|t| now.saturating_add(t)),
            wall_deadline: hook.timeout_wall.and_then(|d| Instant::now().checked_add(d)),
            interval,
            next_report_at: if interval == 0 {
                Cycle::MAX
            } else {
                now.saturating_add(interval)
            },
            ticks: 0,
            due: false,
            last_events: events,
            last_cycle: now,
        }
    }

    /// Count one loop iteration; true when the driver should run a full
    /// check (report, cancel, deadline) at this point.
    pub fn tick(&mut self, now: Cycle) -> bool {
        self.ticks += 1;
        let polled = self.cancel.is_some() || self.wall_deadline.is_some();
        let due = self.due
            || now >= self.next_report_at
            || self.deadline.is_some_and(|d| now >= d)
            || (polled && self.ticks.is_multiple_of(Self::TICK_CHECK));
        if due {
            self.due = true;
        }
        due
    }
}
