//! `SimCore`: the mutable machine state handed to kernels and comm models.
//!
//! `SimCore` owns mechanics only — the event engine, thread table,
//! physical memory, TLBs/DACs, networks, trace, and statistics. All
//! *policy* stays in the `Kernel`/`CommModel` implementations, which
//! receive `&mut SimCore` in their callbacks. Cross-component effects
//! (waking a thread, killing a process, dispatching onto a core) go
//! through deferral queues the executor drains after each event, which
//! keeps the borrow structure simple and the event order deterministic.

use sysabi::{CoreId, NodeId, ProcId, Sig, SysRet, Tid};

use crate::barrier::BarrierNet;
use crate::collective::CollectiveNet;
use crate::config::MachineConfig;
use crate::cycles::Cycle;
use crate::engine::{Engine, EvHandle, EvKind};
use crate::idmap::IdMap;
use crate::machine::thread::{Thread, ThreadState};
use crate::machine::Workload;
use crate::mem::PhysMem;
use crate::rng::{LazyStreams, RngHub};
use crate::telemetry::{Domain, Profiler, Slot, Telemetry, TpKind};
use crate::torus::Torus;
use crate::trace::{Trace, TraceEvent};

/// Which network fabric carries a message, and therefore who receives it:
/// torus traffic goes to the `CommModel`, collective traffic to the
/// `Kernel` (function shipping).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetDomain {
    Torus,
    Collective,
}

/// An in-flight network message.
#[derive(Clone, Debug)]
pub struct NetMsg {
    pub id: u64,
    pub src_node: NodeId,
    pub dst_node: NodeId,
    pub domain: NetDomain,
    /// Receiver-side demultiplexing tag (protocol-private).
    pub tag: u64,
    /// Modeled size (drives timing).
    pub bytes: u64,
    /// Marshaled payload, if the protocol carries real data
    /// (function-ship requests/replies do; timing-only messages don't).
    pub payload: Vec<u8>,
}

/// Whole-machine statistics.
#[derive(Clone, Copy, Default, Debug)]
pub struct MachineStats {
    pub torus_msgs: u64,
    pub torus_bytes: u64,
    pub coll_msgs: u64,
    pub coll_bytes: u64,
    pub ipis: u64,
    pub faults: u64,
    pub noise_events: u64,
    /// Packet completions folded into single per-leg delivery events by
    /// the batched network model (packets beyond the first of each
    /// message leg — the events a per-packet engine would have popped).
    pub batched_packets: u64,
    /// Torus messages hit by an injected link fault. The torus never
    /// loses traffic — hardware CRC retry redelivers after the outage —
    /// so these count retransmissions, not losses.
    pub torus_dropped: u64,
    /// Collective messages genuinely lost to an injected CIOD-link
    /// fault; recovery, if any, is the kernel's software retry.
    pub coll_dropped: u64,
}

/// Extra per-message latency modeling the torus hardware's CRC-triggered
/// link-level retransmit (token resend + re-traverse).
pub const TORUS_RETRANSMIT: Cycle = 4_000;

/// One in-flight message plus its scheduled delivery, stored together in
/// the [`IdMap`] window (the two old side tables were always keyed by
/// the same ids).
#[derive(Debug)]
struct Inflight {
    msg: NetMsg,
    delivery: EvHandle,
    arrival: Cycle,
}

/// An injected link outage: all traffic on `domain` touching `node` is
/// affected until cycle `until` (torus: delayed past the outage;
/// collective: lost).
#[derive(Clone, Copy, Debug)]
struct LinkOutage {
    node: NodeId,
    domain: NetDomain,
    until: Cycle,
}

/// The closed-form timer wheel: recurring kernel timers (noise ticks,
/// daemon wakes) sampled analytically instead of living as heap events.
/// Entries carry engine-allocated sequence numbers, so the executor can
/// interleave firings against the engine's pop stream in the exact
/// `(cycle, seq)` total order the per-tick reference would produce.
#[derive(Debug, Default)]
pub struct VTimers {
    /// `(at, seq, node, tag)` min-heap.
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(Cycle, u64, u32, u64)>>,
}

impl VTimers {
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `(cycle, seq)` of the next virtual firing, if any.
    #[inline]
    pub fn peek_key(&self) -> Option<(Cycle, u64)> {
        self.heap
            .peek()
            .map(|&std::cmp::Reverse((at, seq, _, _))| (at, seq))
    }

    fn push(&mut self, at: Cycle, seq: u64, node: u32, tag: u64) {
        self.heap.push(std::cmp::Reverse((at, seq, node, tag)));
    }

    /// Remove and return the next `(at, seq, node, tag)` firing.
    pub(crate) fn pop(&mut self) -> Option<(Cycle, u64, u32, u64)> {
        self.heap.pop().map(|std::cmp::Reverse(v)| v)
    }
}

pub struct SimCore {
    pub cfg: MachineConfig,
    pub engine: Engine,
    pub torus: Torus,
    pub coll: CollectiveNet,
    pub barrier: BarrierNet,
    pub trace: Trace,
    /// The telemetry subsystem (no-op unless `cfg.telemetry`).
    pub tel: Telemetry,
    /// The cycle-accounting profiler + flight recorder (no-op unless
    /// `cfg.profiler`; on by default and determinism-neutral).
    pub prof: Profiler,
    pub hub: RngHub,
    pub threads: Vec<Thread>,
    /// Count of threads whose state is live, maintained at the two
    /// exit transitions so the per-event "all done?" check is O(1)
    /// instead of a scan over the (rack-scale) thread table.
    pub(crate) live_count: usize,
    /// Per-node DRAM.
    pub dram: Vec<PhysMem>,
    /// Per-global-core TLB.
    pub tlbs: Vec<crate::tlb::Tlb>,
    /// Per-global-core DAC register file.
    pub dacs: Vec<crate::dac::DacFile>,
    /// Per-global-core currently running thread.
    pub running: Vec<Option<Tid>>,
    /// Per-global-core "currently executing a memory-streaming op" flag
    /// (drives the L2 bank-conflict model, §III).
    pub streaming: Vec<bool>,
    /// Per-node DRAM-refresh jitter streams, materialized on first draw.
    jitter: LazyStreams,
    /// In-flight messages (payload + delivery event + arrival cycle) in
    /// a dense id-window: O(1) keyed access and ascending-id iteration,
    /// so fault injection walks traffic in send order with no sort.
    inflight: IdMap<Inflight>,
    /// Active injected link outages (empty unless faults fired; pruned
    /// lazily).
    outages: Vec<LinkOutage>,
    next_msg: u64,
    /// Threads of each process, indexed by `ProcId` (process ids are
    /// allocated sequentially by the kernels).
    pub proc_threads: Vec<Vec<Tid>>,
    pub stats: MachineStats,
    /// Closed-form kernel timers (`cfg.closed_form_noise`); empty when
    /// kernels schedule per-tick heap events instead.
    pub vtimers: VTimers,

    // Deferral queues drained by the executor.
    pub(crate) dispatch_q: Vec<Tid>,
    pub(crate) unblock_q: Vec<(Tid, Option<SysRet>)>,
    pub(crate) kill_q: Vec<(ProcId, i32)>,
}

impl SimCore {
    pub fn new(cfg: MachineConfig) -> SimCore {
        // Invariant assert: front ends (CLI flag parsing, bgcheck's
        // script loader) validate user-supplied configs before machine
        // construction, so a failure here is a caller bug — surface the
        // validator's reason rather than a bare panic.
        if let Err(e) = cfg.validate() {
            panic!("invalid machine config: {e}");
        }
        let cores = cfg.total_cores() as usize;
        let hub = RngHub::new(cfg.seed);
        let mut engine = Engine::with_config(
            cfg.nodes,
            cfg.event_capacity,
            cfg.engine_backend,
            cfg.compact_min_dead,
        );
        let mut jitter = LazyStreams::new("dram-refresh");
        if cfg.eager_layout {
            // Scale-benchmark comparison mode: reproduce the legacy
            // pre-sized layout (every domain queue reserved, every
            // per-node stream materialized). Reservation-only, so it is
            // digest-neutral by construction.
            engine.materialize_eager(cfg.event_capacity);
            jitter.materialize_eager(&hub, cfg.nodes as u64);
        }
        SimCore {
            // One event domain per node; queues start empty and grow on
            // first use, so idle nodes cost nothing.
            engine,
            torus: Torus::new(&cfg),
            coll: CollectiveNet::new(&cfg),
            barrier: BarrierNet::new(&cfg),
            trace: match cfg.trace_capacity {
                Some(n) => Trace::with_capacity(n),
                None => Trace::new(cfg.trace_events),
            },
            tel: if cfg.telemetry {
                Telemetry::standard(cfg.nodes, cfg.chip.cores, cfg.telemetry_capacity)
            } else {
                Telemetry::disabled()
            },
            prof: if cfg.profiler {
                Profiler::standard(cfg.nodes, cfg.profiler_ring)
            } else {
                Profiler::disabled()
            },
            hub: hub.clone(),
            threads: Vec::new(),
            live_count: 0,
            dram: (0..cfg.nodes)
                .map(|_| PhysMem::new(cfg.chip.dram_bytes))
                .collect(),
            tlbs: (0..cores)
                .map(|_| crate::tlb::Tlb::new(cfg.chip.tlb_entries))
                .collect(),
            dacs: (0..cores)
                .map(|_| crate::dac::DacFile::new(cfg.chip.dac_pairs))
                .collect(),
            running: vec![None; cores],
            streaming: vec![false; cores],
            jitter,
            inflight: IdMap::new(),
            outages: Vec::new(),
            next_msg: 0,
            proc_threads: Vec::new(),
            stats: MachineStats::default(),
            vtimers: VTimers::default(),
            dispatch_q: Vec::new(),
            unblock_q: Vec::new(),
            kill_q: Vec::new(),
            cfg,
        }
    }

    #[inline]
    pub fn now(&self) -> Cycle {
        self.engine.now()
    }

    pub fn cores_per_node(&self) -> u32 {
        self.cfg.chip.cores
    }

    /// Global core id for a (node, local core).
    pub fn core_of(&self, node: NodeId, local: u32) -> CoreId {
        CoreId::global(node, local, self.cfg.chip.cores)
    }

    pub fn node_of_core(&self, core: CoreId) -> NodeId {
        core.node(self.cfg.chip.cores)
    }

    // ---- thread lifecycle -------------------------------------------------

    /// Create a thread (kernel calls this from launch/spawn). The thread
    /// starts `Idle`; dispatch it to begin execution.
    pub fn create_thread(
        &mut self,
        proc: ProcId,
        node: NodeId,
        core: CoreId,
        workload: Box<dyn Workload>,
    ) -> Tid {
        let tid = Tid(self.threads.len() as u32);
        self.threads
            .push(Thread::new(tid, proc, node, core, workload));
        self.live_count += 1;
        if self.proc_threads.len() <= proc.idx() {
            self.proc_threads.resize_with(proc.idx() + 1, Vec::new);
        }
        self.proc_threads[proc.idx()].push(tid);
        tid
    }

    pub fn thread(&self, tid: Tid) -> &Thread {
        &self.threads[tid.idx()]
    }

    pub fn thread_mut(&mut self, tid: Tid) -> &mut Thread {
        &mut self.threads[tid.idx()]
    }

    /// Threads of a process.
    pub fn threads_of(&self, proc: ProcId) -> &[Tid] {
        self.proc_threads
            .get(proc.idx())
            .map_or(&[], |v| v.as_slice())
    }

    /// Cores of `node` currently executing a streaming op.
    pub fn active_streams(&self, node: NodeId) -> u32 {
        let cpn = self.cfg.chip.cores;
        (0..cpn)
            .filter(|&c| self.streaming[CoreId::global(node, c, cpn).idx()])
            .count() as u32
    }

    /// Live threads on a given hardware core.
    pub fn live_on_core(&self, core: CoreId) -> usize {
        self.threads
            .iter()
            .filter(|t| t.core == core && t.state.is_live())
            .count()
    }

    /// Number of live (non-exited) threads. O(1): the executor keeps
    /// the count current across exit transitions (cross-checked against
    /// a full recount in `check_invariants`).
    pub fn live_threads(&self) -> usize {
        self.live_count
    }

    /// Is the hardware core currently idle?
    pub fn core_idle(&self, core: CoreId) -> bool {
        self.running[core.idx()].is_none()
    }

    /// Claim a core for `tid` and queue it for execution. Panics if the
    /// core is busy — kernels must check `core_idle` first.
    pub fn dispatch(&mut self, tid: Tid) {
        let core = self.threads[tid.idx()].core;
        assert!(
            self.running[core.idx()].is_none(),
            "dispatch {tid} onto busy core {core}"
        );
        assert!(
            matches!(
                self.threads[tid.idx()].state,
                ThreadState::Idle | ThreadState::Ready
            ),
            "dispatch {tid} in state {:?}",
            self.threads[tid.idx()].state
        );
        self.running[core.idx()] = Some(tid);
        self.dispatch_q.push(tid);
    }

    /// Queue a blocked thread to become Ready with result `ret`; the
    /// executor will inform the kernel (`on_unblock`).
    pub fn defer_unblock(&mut self, tid: Tid, ret: Option<SysRet>) {
        self.unblock_q.push((tid, ret));
    }

    /// Queue a whole-process kill (guard-page fault default action,
    /// exit_group, fatal signal).
    pub fn defer_kill(&mut self, proc: ProcId, code: i32) {
        self.kill_q.push((proc, code));
    }

    /// Post a signal for delivery at `tid`'s next op boundary.
    pub fn post_signal(&mut self, tid: Tid, sig: Sig) {
        self.threads[tid.idx()].sig_queue.push_back(sig);
    }

    // ---- noise ------------------------------------------------------------

    /// Stretch whatever is running on `core` by `cycles` (a noise event:
    /// tick, daemon, interrupt). No effect on an idle core. Returns true
    /// if something was stretched.
    pub fn stretch_running(&mut self, core: CoreId, cycles: u64, tag: u64) -> bool {
        let Some(tid) = self.running[core.idx()] else {
            return false;
        };
        let t = &mut self.threads[tid.idx()];
        let ThreadState::Running { until, started, .. } = t.state else {
            return false;
        };
        t.gen_ctr += 1;
        let gen = t.gen_ctr;
        let new_until = until + cycles;
        t.state = ThreadState::Running {
            gen,
            until: new_until,
            started,
        };
        let old_done = t.pending_done.take();
        t.stats.noise_cycles += cycles;
        self.stats.noise_events += 1;
        let node = self.node_of_core(core);
        self.trace.record(
            self.engine.now(),
            TraceEvent::Noise {
                node: node.0,
                tag,
                cycles,
            },
        );
        self.tel
            .count(self.tel.ids.noise_events, Slot::Node(node.0), 1);
        self.tel
            .hist(self.tel.ids.noise_cycles, Slot::Core(core.0), cycles);
        self.tel.tp(
            self.engine.now(),
            node.0,
            core.0,
            TpKind::Noise,
            "stretch",
            tag,
            cycles,
        );
        self.prof.span(
            Domain::Sched,
            self.engine.now(),
            node.0,
            "noise_stretch",
            cycles,
        );
        // The reschedule path: cancel the superseded completion in O(1)
        // (no payload clone, no stale event left in the queue) and
        // schedule the new one in this node's event domain.
        if let Some(h) = old_done {
            if self.engine.cancel(h) {
                self.tel
                    .count(self.tel.ids.evq_cancelled, Slot::Node(node.0), 1);
            }
        }
        let h = self
            .engine
            .schedule_dom(node.0, new_until, EvKind::OpDone { tid: tid.0, gen });
        self.threads[tid.idx()].pending_done = Some(h);
        true
    }

    /// Preempt the thread running on `core`, if it is mid-way through a
    /// preemptible op: its remaining cycles are saved and it goes back to
    /// Ready. Returns the preempted tid. Used by the FWK's timeslice
    /// scheduler; CNK never calls this (non-preemptive, §IV.B.1).
    pub fn preempt(&mut self, core: CoreId) -> Option<Tid> {
        let tid = self.running[core.idx()]?;
        let t = &mut self.threads[tid.idx()];
        let ThreadState::Running { until, started, .. } = t.state else {
            return None;
        };
        if !t.preemptible {
            return None;
        }
        let now = self.engine.now();
        let remaining = until.saturating_sub(now);
        t.resume_cycles = Some(remaining);
        t.stats.busy_cycles += now.saturating_sub(started);
        // Any scheduled OpDone for the old generation becomes stale;
        // cancel it outright rather than leaving it to pop and discard.
        t.gen_ctr += 1;
        let old_done = t.pending_done.take();
        t.state = ThreadState::Ready;
        self.running[core.idx()] = None;
        let node = self.node_of_core(core);
        if let Some(h) = old_done {
            if self.engine.cancel(h) {
                self.tel
                    .count(self.tel.ids.evq_cancelled, Slot::Node(node.0), 1);
            }
        }
        self.tel.count(self.tel.ids.preempts, Slot::Core(core.0), 1);
        self.tel.tp(
            now,
            node.0,
            core.0,
            TpKind::Preempt,
            "timeslice",
            tid.0 as u64,
            remaining,
        );
        self.prof.span(Domain::Sched, now, node.0, "preempt", 0);
        Some(tid)
    }

    /// One DRAM-refresh jitter draw for a node (the only CNK-visible
    /// noise; bounded < 0.006% of the FWQ quantum).
    pub fn refresh_jitter(&mut self, node: NodeId) -> u64 {
        let max = self.cfg.chip.dram_refresh_stall_max;
        let rng = self.jitter.get(&self.hub, node.0 as u64);
        crate::rng::uniform_incl(rng, 0, max)
    }

    // ---- kernel event scheduling -------------------------------------------

    /// Schedule a kernel-private event on `node` at absolute cycle `at`.
    /// The handle supports O(1) cancellation when the kernel supersedes
    /// the event (e.g. a timeslice re-arm) instead of letting it fire
    /// stale.
    pub fn schedule_kernel_event(
        &mut self,
        node: NodeId,
        tag: u64,
        at: Cycle,
    ) -> crate::engine::EvHandle {
        self.engine
            .schedule_dom(node.0, at, EvKind::Kernel { node: node.0, tag })
    }

    pub fn schedule_kernel_event_in(
        &mut self,
        node: NodeId,
        tag: u64,
        delta: Cycle,
    ) -> crate::engine::EvHandle {
        let at = self.engine.now() + delta;
        self.engine
            .schedule_dom(node.0, at, EvKind::Kernel { node: node.0, tag })
    }

    /// Arm a kernel timer on the closed-form wheel instead of the
    /// engine. It draws from the same global sequence counter, so the
    /// firing keeps the exact position in the `(cycle, seq)` total order
    /// [`SimCore::schedule_kernel_event_in`] would have given it; the
    /// executor replays it through the ordinary `Kernel::kernel_event`
    /// path. No handle: wheel timers cannot be cancelled, so they are
    /// only for timers the kernel never cancels (noise/daemon re-arms).
    pub fn schedule_virtual_kernel_event_in(&mut self, node: NodeId, tag: u64, delta: Cycle) {
        let at = self.engine.now() + delta;
        let seq = self.engine.alloc_seq();
        self.vtimers.push(at, seq, node.0, tag);
    }

    /// Cancel a kernel-private event scheduled earlier; true if it was
    /// still pending.
    pub fn cancel_kernel_event(&mut self, h: crate::engine::EvHandle) -> bool {
        self.engine.cancel(h)
    }

    /// Send an IPI to a core, arriving after the interconnect delay.
    pub fn send_ipi(&mut self, core: CoreId, kind: u32) {
        self.stats.ipis += 1;
        let node = self.node_of_core(core);
        // On-chip IPI latency: a handful of cycles (intra-node, so it
        // stays in the sender's event domain).
        let at = self.engine.now() + 12;
        self.engine
            .schedule_dom(node.0, at, EvKind::Ipi { core: core.0, kind });
    }

    // ---- networks ----------------------------------------------------------

    fn enqueue_msg(&mut self, msg: NetMsg, arrival: Cycle) {
        self.trace.record(
            self.engine.now(),
            TraceEvent::MsgSend {
                src: msg.src_node.0,
                dst: msg.dst_node.0,
                bytes: msg.bytes,
                tag: msg.tag,
            },
        );
        let id = msg.id;
        // Cross-domain event: delivery belongs to the destination
        // node's domain, and `arrival` is at least one link latency out
        // (the lookahead floor, `MachineConfig::min_link_cycles`).
        let dst = msg.dst_node.0;
        self.prof.msg_enqueued(msg.src_node.0, dst);
        let h = self
            .engine
            .schedule_dom(dst, arrival, EvKind::NetDeliver { msg_id: id });
        self.inflight.insert(
            id,
            Inflight {
                msg,
                delivery: h,
                arrival,
            },
        );
    }

    fn next_msg_id(&mut self) -> u64 {
        let id = self.next_msg;
        self.next_msg += 1;
        id
    }

    /// Inject a torus message; it will be delivered to the `CommModel`
    /// after the hardware transfer time plus `extra_delay`.
    pub fn torus_send(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        tag: u64,
        payload: Vec<u8>,
        extra_delay: Cycle,
    ) -> u64 {
        assert!(
            self.cfg.chip.torus_unit.usable(),
            "torus traffic on a chip without a torus unit"
        );
        let hops = self.torus.hops(src, dst);
        let xfer = self.torus.transfer_cycles(bytes, hops);
        let id = self.next_msg_id();
        self.prof
            .span(Domain::Torus, self.engine.now(), src.0, "send", xfer);
        self.stats.torus_msgs += 1;
        self.stats.torus_bytes += bytes;
        self.stats.batched_packets += self.torus.packets(bytes).saturating_sub(1);
        self.tel
            .count(self.tel.ids.torus_sends, Slot::Node(src.0), 1);
        let mut arrival = self.engine.now() + xfer + extra_delay;
        // An active injected outage on either endpoint: the hardware CRC
        // catches the mangled packets and the link-level retry redelivers
        // once the outage lifts — delayed, never lost.
        if let Some(end) = self.outage_end(src, dst, NetDomain::Torus) {
            arrival = arrival.max(end) + TORUS_RETRANSMIT;
            self.stats.torus_dropped += 1;
            self.tel
                .count(self.tel.ids.torus_dropped_pkts, Slot::Node(src.0), 1);
        }
        self.enqueue_msg(
            NetMsg {
                id,
                src_node: src,
                dst_node: dst,
                domain: NetDomain::Torus,
                tag,
                bytes,
                payload,
            },
            arrival,
        );
        id
    }

    /// Send a collective-network message between a compute node and its
    /// I/O node (either direction). Delivered to the `Kernel`.
    pub fn coll_send(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        tag: u64,
        payload: Vec<u8>,
        extra_delay: Cycle,
    ) -> u64 {
        assert!(
            self.cfg.chip.collective_unit.usable(),
            "collective traffic on a chip without a collective unit"
        );
        let xfer = self.coll.cn_ion_cycles(src, bytes);
        let id = self.next_msg_id();
        self.prof
            .span(Domain::Collective, self.engine.now(), src.0, "send", xfer);
        self.stats.coll_msgs += 1;
        self.stats.coll_bytes += bytes;
        self.stats.batched_packets += crate::collective::packets(bytes).saturating_sub(1);
        self.tel
            .count(self.tel.ids.coll_sends, Slot::Node(src.0), 1);
        let arrival = self.engine.now() + xfer + extra_delay;
        // An active injected outage on either endpoint: the collective
        // link has no hardware retry toward the I/O node, so the message
        // is genuinely lost. Recovery is the kernel's software retry.
        if let Some(_end) = self.outage_end(src, dst, NetDomain::Collective) {
            self.trace.record(
                self.engine.now(),
                TraceEvent::MsgSend {
                    src: src.0,
                    dst: dst.0,
                    bytes,
                    tag,
                },
            );
            self.stats.coll_dropped += 1;
            self.tel
                .count(self.tel.ids.coll_dropped_pkts, Slot::Node(src.0), 1);
            return id;
        }
        self.enqueue_msg(
            NetMsg {
                id,
                src_node: src,
                dst_node: dst,
                domain: NetDomain::Collective,
                tag,
                bytes,
                payload,
            },
            arrival,
        );
        id
    }

    pub(crate) fn take_msg(&mut self, id: u64) -> Option<NetMsg> {
        let m = self.inflight.remove(id).map(|e| e.msg);
        if let Some(m) = &m {
            self.prof.msg_retired(m.dst_node.0);
        }
        m
    }

    // ---- fault injection ---------------------------------------------------

    /// End cycle of an active outage covering a link between `a` and `b`
    /// on `domain`, if any. Lazily prunes expired outages.
    fn outage_end(&mut self, a: NodeId, b: NodeId, domain: NetDomain) -> Option<Cycle> {
        if self.outages.is_empty() {
            return None;
        }
        let now = self.engine.now();
        self.outages.retain(|o| o.until > now);
        self.outages
            .iter()
            .filter(|o| o.domain == domain && (o.node == a || o.node == b))
            .map(|o| o.until)
            .max()
    }

    /// Ids of in-flight messages on `domain` touching `node`, in
    /// ascending-id (= send) order. The dense id-window iterates in that
    /// order natively, so no sort is needed to keep fault injection
    /// deterministic.
    pub fn inflight_ids(&self, node: NodeId, domain: NetDomain) -> Vec<u64> {
        self.inflight
            .iter()
            .filter(|(_, e)| {
                e.msg.domain == domain && (e.msg.src_node == node || e.msg.dst_node == node)
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// Mutable access to an in-flight message's contents (fault paths:
    /// payload corruption, short-write truncation).
    pub fn inflight_msg_mut(&mut self, id: u64) -> Option<&mut NetMsg> {
        self.inflight.get_mut(id).map(|e| &mut e.msg)
    }

    /// Cancel an in-flight message's delivery and reschedule it at `at`.
    /// Returns false if the message is no longer in flight.
    pub fn redeliver_at(&mut self, id: u64, at: Cycle) -> bool {
        let Some(e) = self.inflight.get(id) else {
            return false;
        };
        let (h, dst) = (e.delivery, e.msg.dst_node.0);
        if !self.engine.cancel(h) {
            return false;
        }
        let nh = self
            .engine
            .schedule_dom(dst, at, EvKind::NetDeliver { msg_id: id });
        if let Some(e) = self.inflight.get_mut(id) {
            e.delivery = nh;
            e.arrival = at;
        }
        true
    }

    /// Drop an in-flight message outright: cancel its delivery and forget
    /// the payload. Returns false if it already arrived.
    pub fn drop_inflight(&mut self, id: u64) -> bool {
        let Some(e) = self.inflight.remove(id) else {
            return false;
        };
        self.engine.cancel(e.delivery);
        self.prof.msg_retired(e.msg.dst_node.0);
        true
    }

    /// Inject a link outage on `node`'s `domain` links for `window`
    /// cycles. Torus traffic already on the wire bounces to after the
    /// outage (CRC retry); collective traffic on the wire is lost.
    pub fn fault_link_outage(&mut self, node: NodeId, domain: NetDomain, window: Cycle) {
        let now = self.engine.now();
        let until = now + window;
        self.prof
            .span(Domain::FaultRas, now, node.0, "link_outage", window);
        self.outages.push(LinkOutage {
            node,
            domain,
            until,
        });
        for id in self.inflight_ids(node, domain) {
            match domain {
                NetDomain::Torus => {
                    let arrival = self.inflight.get(id).map_or(now, |e| e.arrival);
                    if self.redeliver_at(id, arrival.max(until) + TORUS_RETRANSMIT) {
                        self.stats.torus_dropped += 1;
                        self.tel
                            .count(self.tel.ids.torus_dropped_pkts, Slot::Node(node.0), 1);
                    }
                }
                NetDomain::Collective => {
                    if self.drop_inflight(id) {
                        self.stats.coll_dropped += 1;
                        self.tel
                            .count(self.tel.ids.coll_dropped_pkts, Slot::Node(node.0), 1);
                    }
                }
            }
        }
    }

    /// Delay every in-flight message on `domain` touching `node` by
    /// `extra` cycles. Returns how many were affected.
    pub fn fault_delay_inflight(&mut self, node: NodeId, domain: NetDomain, extra: Cycle) -> u64 {
        self.prof.span(
            Domain::FaultRas,
            self.engine.now(),
            node.0,
            "delay_inflight",
            extra,
        );
        let mut n = 0;
        for id in self.inflight_ids(node, domain) {
            let Some(arrival) = self.inflight.get(id).map(|e| e.arrival) else {
                continue;
            };
            if self.redeliver_at(id, arrival + extra) {
                n += 1;
            }
        }
        n
    }

    /// Corrupt in-flight traffic on `domain` touching `node`. Torus: the
    /// CRC catches it, so the message bounces by one retransmit (never
    /// lost). Collective: payload bytes past the 4-byte routing prefix
    /// are XOR-mangled, so the receiver's decode fails and its own error
    /// path runs. Returns how many messages were hit.
    pub fn fault_corrupt_inflight(&mut self, node: NodeId, domain: NetDomain) -> u64 {
        self.prof.span(
            Domain::FaultRas,
            self.engine.now(),
            node.0,
            "corrupt_inflight",
            0,
        );
        let mut n = 0;
        for id in self.inflight_ids(node, domain) {
            match domain {
                NetDomain::Torus => {
                    let Some(arrival) = self.inflight.get(id).map(|e| e.arrival) else {
                        continue;
                    };
                    if self.redeliver_at(id, arrival + TORUS_RETRANSMIT) {
                        self.stats.torus_dropped += 1;
                        self.tel
                            .count(self.tel.ids.torus_dropped_pkts, Slot::Node(node.0), 1);
                        n += 1;
                    }
                }
                NetDomain::Collective => {
                    if let Some(m) = self.inflight.get_mut(id).map(|e| &mut e.msg) {
                        for b in m.payload.iter_mut().skip(4) {
                            *b ^= 0xA5;
                        }
                        n += 1;
                    }
                }
            }
        }
        n
    }

    /// Schedule a collective-completion wakeup for a blocked participant
    /// (a cross-domain event: it lands in the participant's domain).
    pub fn schedule_coll_done(&mut self, tid: Tid, coll: u64, at: Cycle) {
        let node = self.threads[tid.idx()].node;
        self.engine
            .schedule_dom(node.0, at, EvKind::CollDone { tid: tid.0, coll });
    }

    // ---- scan support ------------------------------------------------------

    /// Snapshot the named probe signals (§III logic scan).
    pub fn probe_signals(&self) -> Vec<(String, u64)> {
        let mut v = Vec::new();
        for (i, r) in self.running.iter().enumerate() {
            v.push((
                format!("core{i}.running_tid"),
                r.map_or(u64::MAX, |t| t.0 as u64),
            ));
        }
        for (i, t) in self.threads.iter().enumerate() {
            let s = match t.state {
                ThreadState::Idle => 0,
                ThreadState::Ready => 1,
                ThreadState::Running { .. } => 2,
                ThreadState::Blocked(_) => 3,
                ThreadState::Exited => 4,
            };
            v.push((format!("thread{i}.state"), s));
        }
        v.push(("net.inflight".to_string(), self.inflight.len() as u64));
        v.push(("events.processed".to_string(), self.engine.processed()));
        v
    }

    // ---- memory accounting -------------------------------------------------

    /// Approximate heap bytes resident in the simulator core: engine
    /// queues and slab, per-node DRAM granules, per-core TLB/DAC arrays,
    /// thread table, in-flight messages, RNG columns, and the profiler's
    /// heat table. An estimate (container capacities, not allocator
    /// metadata), but it moves with the layout — which is what the
    /// scale benchmarks need to compare layouts honestly.
    pub fn resident_bytes_estimate(&self) -> usize {
        let spine = |cap: usize, elem: usize| cap * elem;
        let mut total = self.engine.resident_bytes();
        total += spine(self.dram.capacity(), std::mem::size_of::<PhysMem>());
        total += self.dram.iter().map(|m| m.resident_bytes()).sum::<usize>();
        total += spine(self.tlbs.capacity(), std::mem::size_of::<crate::tlb::Tlb>());
        total += self.tlbs.iter().map(|t| t.resident_bytes()).sum::<usize>();
        total += spine(
            self.dacs.capacity(),
            std::mem::size_of::<crate::dac::DacFile>(),
        );
        total += self.dacs.iter().map(|d| d.resident_bytes()).sum::<usize>();
        total += spine(self.running.capacity(), std::mem::size_of::<Option<Tid>>());
        total += self.streaming.capacity();
        total += spine(self.threads.capacity(), std::mem::size_of::<Thread>());
        total += self.inflight.resident_bytes();
        total += self
            .inflight
            .iter()
            .map(|(_, e)| e.msg.payload.capacity())
            .sum::<usize>();
        total += spine(
            self.proc_threads.capacity(),
            std::mem::size_of::<Vec<Tid>>(),
        );
        total += self
            .proc_threads
            .iter()
            .map(|v| v.capacity() * std::mem::size_of::<Tid>())
            .sum::<usize>();
        total += self.jitter.resident_bytes();
        total += self.prof.resident_bytes();
        total += self.vtimers.heap.capacity() * std::mem::size_of::<(Cycle, u64, u32, u64)>();
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{WlEnv, Workload};
    use crate::op::Op;

    struct Nop;
    impl Workload for Nop {
        fn next(&mut self, _e: &mut WlEnv<'_>) -> Op {
            Op::End
        }
    }

    fn sc(nodes: u32) -> SimCore {
        SimCore::new(MachineConfig::nodes(nodes))
    }

    #[test]
    fn thread_creation_and_lookup() {
        let mut s = sc(1);
        let t0 = s.create_thread(ProcId(0), NodeId(0), CoreId(0), Box::new(Nop));
        let t1 = s.create_thread(ProcId(0), NodeId(0), CoreId(1), Box::new(Nop));
        assert_eq!(t0, Tid(0));
        assert_eq!(t1, Tid(1));
        assert_eq!(s.threads_of(ProcId(0)), &[t0, t1]);
        assert_eq!(s.live_threads(), 2);
        assert_eq!(s.live_on_core(CoreId(0)), 1);
    }

    #[test]
    fn dispatch_claims_core() {
        let mut s = sc(1);
        let t = s.create_thread(ProcId(0), NodeId(0), CoreId(2), Box::new(Nop));
        assert!(s.core_idle(CoreId(2)));
        s.dispatch(t);
        assert!(!s.core_idle(CoreId(2)));
        assert_eq!(s.dispatch_q, vec![t]);
    }

    #[test]
    #[should_panic(expected = "busy core")]
    fn double_dispatch_panics() {
        let mut s = sc(1);
        let a = s.create_thread(ProcId(0), NodeId(0), CoreId(0), Box::new(Nop));
        let b = s.create_thread(ProcId(0), NodeId(0), CoreId(0), Box::new(Nop));
        s.dispatch(a);
        s.dispatch(b);
    }

    #[test]
    fn stretch_requires_running_thread() {
        let mut s = sc(1);
        let t = s.create_thread(ProcId(0), NodeId(0), CoreId(0), Box::new(Nop));
        assert!(!s.stretch_running(CoreId(0), 100, 0));
        s.running[0] = Some(t);
        s.threads[0].state = ThreadState::Running {
            gen: 0,
            until: 500,
            started: 0,
        };
        assert!(s.stretch_running(CoreId(0), 100, 0));
        match s.threads[0].state {
            ThreadState::Running { gen, until, .. } => {
                assert_eq!(gen, 1);
                assert_eq!(until, 600);
            }
            _ => panic!(),
        }
        assert_eq!(s.threads[0].stats.noise_cycles, 100);
    }

    #[test]
    fn torus_send_schedules_delivery() {
        let mut s = sc(2);
        let id = s.torus_send(NodeId(0), NodeId(1), 1024, 7, vec![], 0);
        assert!(s.inflight.contains(id));
        assert_eq!(s.stats.torus_msgs, 1);
        // The delivery event exists.
        assert_eq!(s.engine.pending(), 1);
    }

    #[test]
    #[should_panic(expected = "without a torus unit")]
    fn torus_send_requires_unit() {
        let mut cfg = MachineConfig::nodes(2);
        cfg.chip.torus_unit = crate::config::UnitStatus::Absent;
        let mut s = SimCore::new(cfg);
        s.torus_send(NodeId(0), NodeId(1), 1, 0, vec![], 0);
    }

    #[test]
    fn refresh_jitter_deterministic_per_seed() {
        let mut a = sc(1);
        let mut b = sc(1);
        let ja: Vec<u64> = (0..32).map(|_| a.refresh_jitter(NodeId(0))).collect();
        let jb: Vec<u64> = (0..32).map(|_| b.refresh_jitter(NodeId(0))).collect();
        assert_eq!(ja, jb);
        let mut c = SimCore::new(MachineConfig::nodes(1).with_seed(777));
        let jc: Vec<u64> = (0..32).map(|_| c.refresh_jitter(NodeId(0))).collect();
        assert_ne!(ja, jc);
    }

    #[test]
    fn probe_signals_have_core_entries() {
        let s = sc(1);
        let probes = s.probe_signals();
        assert!(probes.iter().any(|(n, _)| n == "core0.running_tid"));
        assert!(probes.iter().any(|(n, _)| n == "net.inflight"));
    }
}
