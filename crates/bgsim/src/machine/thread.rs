//! Thread table entries.

use std::collections::VecDeque;

use sysabi::{CoreId, NodeId, ProcId, Rank, Sig, SysRet, Tid};

use crate::cycles::Cycle;
use crate::machine::Workload;

/// Why a thread is blocked.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BlockKind {
    /// Waiting on a futex word.
    Futex,
    /// Waiting for a function-shipped I/O reply (or local I/O service).
    Io,
    /// Waiting for a matching message.
    Recv,
    /// Waiting inside a collective.
    Coll,
    /// Waiting for remote completion of a one-sided op.
    Rma,
    /// Kernel-internal wait.
    Other,
}

/// Scheduling state of a thread.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ThreadState {
    /// Created, never dispatched.
    Idle,
    /// Runnable, not on a core.
    Ready,
    /// On a core executing an op that completes at `until` (unless
    /// stretched by noise; `gen` invalidates stale completion events).
    Running {
        gen: u32,
        until: Cycle,
        started: Cycle,
    },
    Blocked(BlockKind),
    Exited,
}

impl ThreadState {
    pub fn is_running(&self) -> bool {
        matches!(self, ThreadState::Running { .. })
    }

    pub fn is_blocked(&self) -> bool {
        matches!(self, ThreadState::Blocked(_))
    }

    pub fn is_live(&self) -> bool {
        !matches!(self, ThreadState::Exited)
    }
}

/// Completion info of a receive.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RecvInfo {
    pub from: Rank,
    pub bytes: u64,
    pub tag: u32,
}

/// Per-thread accounting.
#[derive(Clone, Copy, Default, Debug)]
pub struct ThreadStats {
    /// Cycles spent executing ops (including noise stretching).
    pub busy_cycles: u64,
    /// Cycles added by noise events while running.
    pub noise_cycles: u64,
    /// Ops issued.
    pub ops: u64,
    /// Syscalls issued.
    pub syscalls: u64,
    /// Times blocked.
    pub blocks: u64,
}

/// A software thread.
pub struct Thread {
    pub tid: Tid,
    pub proc: ProcId,
    pub node: NodeId,
    /// Fixed hardware-core affinity (CNK pins; FWK also pins in our model
    /// to isolate noise effects, matching the paper's tuned-Linux setup).
    pub core: CoreId,
    pub state: ThreadState,
    pub workload: Option<Box<dyn Workload>>,
    /// Result of the last completed op, consumed by the workload.
    pub pending_ret: Option<SysRet>,
    pub pending_recv: Option<RecvInfo>,
    pub sig_queue: VecDeque<Sig>,
    /// Remaining cycles of a preempted compute op.
    pub resume_cycles: Option<u64>,
    /// Whether the current op may be preempted mid-flight.
    pub preemptible: bool,
    /// MPI rank (main threads only).
    pub rank: Option<Rank>,
    pub stats: ThreadStats,
    pub exit_code: Option<i32>,
    /// Monotonic run-generation counter (invalidates stale completions).
    pub gen_ctr: u32,
    /// Handle of the in-flight `OpDone` event for the current run
    /// generation, if any. Reschedule/preempt/kill paths cancel it in
    /// O(1) instead of leaving a stale event to be popped and discarded;
    /// the generation check stays as a backstop.
    pub pending_done: Option<crate::engine::EvHandle>,
}

impl Thread {
    pub fn new(
        tid: Tid,
        proc: ProcId,
        node: NodeId,
        core: CoreId,
        workload: Box<dyn Workload>,
    ) -> Thread {
        Thread {
            tid,
            proc,
            node,
            core,
            state: ThreadState::Idle,
            workload: Some(workload),
            pending_ret: None,
            pending_recv: None,
            sig_queue: VecDeque::new(),
            resume_cycles: None,
            preemptible: false,
            rank: None,
            stats: ThreadStats::default(),
            exit_code: None,
            gen_ctr: 0,
            pending_done: None,
        }
    }

    /// Allocate a fresh run generation (stale completion events carry an
    /// older generation and are ignored).
    pub fn next_gen(&mut self) -> u32 {
        self.gen_ctr += 1;
        self.gen_ctr
    }
}

impl std::fmt::Debug for Thread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Thread")
            .field("tid", &self.tid)
            .field("proc", &self.proc)
            .field("node", &self.node)
            .field("core", &self.core)
            .field("state", &self.state)
            .field("rank", &self.rank)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::WlEnv;
    use crate::op::Op;

    struct Nop;
    impl Workload for Nop {
        fn next(&mut self, _env: &mut WlEnv<'_>) -> Op {
            Op::End
        }
    }

    #[test]
    fn state_predicates() {
        assert!(ThreadState::Running {
            gen: 0,
            until: 10,
            started: 0
        }
        .is_running());
        assert!(ThreadState::Blocked(BlockKind::Futex).is_blocked());
        assert!(!ThreadState::Exited.is_live());
        assert!(ThreadState::Idle.is_live());
    }

    #[test]
    fn next_gen_is_monotonic() {
        let mut t = Thread::new(Tid(0), ProcId(0), NodeId(0), CoreId(0), Box::new(Nop));
        let g1 = t.next_gen();
        let g2 = t.next_gen();
        assert!(g2 > g1);
    }
}
