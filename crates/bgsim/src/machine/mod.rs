//! The machine harness: threads, kernels, communication models, and the
//! deterministic execution loop that ties them to the hardware models.
//!
//! Plug-in points:
//!
//! * [`Kernel`] — the operating system under test (`cnk` or `fwk`);
//! * [`CommModel`] — the messaging stack (`dcmf`);
//! * [`Workload`] — the application program (`workloads`).
//!
//! The executor owns mechanics (event ordering, thread tables, physical
//! memory, networks); kernels own policy (scheduling, address spaces,
//! syscalls, noise). This split is what lets the same workload run
//! unmodified under both kernels — the reproduction analogue of
//! "applications run on CNK out-of-the-box" (§V.B).

mod exec;
mod progress;
mod simcore;
mod thread;

pub use exec::{Machine, RunOutcome};
pub use progress::{CancelCause, CancelToken, LiveHook, ProgressCtl, ProgressReport, ProgressSink};
pub use simcore::{MachineStats, NetDomain, NetMsg, SimCore};
pub use thread::{BlockKind, RecvInfo, Thread, ThreadState, ThreadStats};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use sysabi::{CoreId, JobSpec, NodeId, ProcId, Rank, Sig, SysReq, SysRet, Tid, UtsName};

use crate::features::FeatureMatrix;
use crate::op::{CloneArgs, CommOp, Op};

/// Report from booting a kernel: how much work boot did, for the §III
/// VHDL-simulation comparison ("CNK boots in a couple of hours, while
/// Linux takes weeks" at 10 Hz).
#[derive(Clone, Debug)]
pub struct BootReport {
    pub kernel: &'static str,
    /// Total instructions executed to reach the app-launch prompt.
    pub instructions: u64,
    /// Named phases with instruction counts (sums to `instructions`).
    pub phases: Vec<(&'static str, u64)>,
}

impl BootReport {
    /// Wall-clock seconds this boot takes on a VHDL simulator running at
    /// `hz` simulated cycles per second (§III uses 10 Hz), assuming one
    /// instruction per cycle.
    pub fn vhdl_sim_seconds(&self, hz: f64) -> f64 {
        self.instructions as f64 / hz
    }
}

/// Why a job could not be launched.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LaunchError {
    /// The static partitioner could not fit the job (memory or TLB).
    NoMemory(String),
    /// More threads than the kernel's fixed per-core limit (§IV.B.1:
    /// "a small fixed number of threads per core").
    TooManyThreads,
    /// Inconsistent specification.
    BadSpec(String),
    /// A required hardware unit is absent in this chip configuration.
    HardwareMissing(&'static str),
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::NoMemory(s) => write!(f, "partitioning failed: {s}"),
            LaunchError::TooManyThreads => write!(f, "thread limit exceeded"),
            LaunchError::BadSpec(s) => write!(f, "bad job spec: {s}"),
            LaunchError::HardwareMissing(u) => write!(f, "hardware unit missing: {u}"),
        }
    }
}

/// One rank of a launched job.
#[derive(Clone, Copy, Debug)]
pub struct RankInfo {
    pub rank: Rank,
    pub proc: ProcId,
    pub node: NodeId,
    pub main_tid: Tid,
}

/// The launched job: rank → placement map.
#[derive(Clone, Debug)]
pub struct JobMap {
    pub ranks: Vec<RankInfo>,
}

impl JobMap {
    pub fn nranks(&self) -> u32 {
        self.ranks.len() as u32
    }

    pub fn rank(&self, r: Rank) -> &RankInfo {
        &self.ranks[r.idx()]
    }

    pub fn main_tids(&self) -> Vec<Tid> {
        self.ranks.iter().map(|r| r.main_tid).collect()
    }
}

/// What a kernel does with a syscall.
#[derive(Debug)]
pub enum SyscallAction {
    /// Complete after `cost` cycles with result `ret`.
    Done { ret: SysRet, cost: u64 },
    /// The thread blocks; the kernel will `defer_unblock` it later with
    /// the result (function-shipped I/O, futex waits).
    Block { kind: BlockKind },
    /// Give up the core; the kernel has already requeued the thread.
    YieldCpu,
    /// The calling thread exits.
    ExitThread { code: i32 },
    /// The whole process exits.
    ExitProc { code: i32 },
}

/// Result of a timing-plane memory op.
#[derive(Clone, Copy, Debug)]
pub struct MemOpResult {
    pub cost: u64,
    /// A fault was raised (guard-page hit, bad address); the kernel has
    /// already queued its consequences (signal/kill).
    pub faulted: bool,
}

/// Capabilities a kernel gives the messaging stack; these parameters are
/// what Table I and Fig. 8 turn on. CNK's values reflect "the messaging
/// hardware ... used from user space, ... the virtual to physical mapping
/// from user space, and ... large physically contiguous chunks of memory"
/// (§V.C).
#[derive(Clone, Copy, Debug)]
pub struct CommCaps {
    /// Inject DMA descriptors from user space (no syscall per message).
    pub user_space_dma: bool,
    /// Buffers are physically contiguous (single DMA descriptor).
    pub phys_contiguous: bool,
    /// The va→pa map is static and known to user space (no pin/translate
    /// calls).
    pub static_translation: bool,
    /// Cycles per kernel-mediated injection (syscall entry/exit + window
    /// setup) when `user_space_dma` is false.
    pub injection_syscall_cycles: u64,
    /// Cycles per extra segment when buffers are not contiguous (per-page
    /// descriptor programming).
    pub per_segment_cycles: u64,
    /// Copy rate (bytes/cycle) for bounce-buffering when zero-copy DMA is
    /// impossible.
    pub copy_bytes_per_cycle: f64,
    /// Page size used to segment non-contiguous buffers.
    pub segment_bytes: u64,
}

impl CommCaps {
    /// The CNK capability set (§V.C: the performance "came effectively
    /// for free with CNK's design").
    pub fn cnk() -> CommCaps {
        CommCaps {
            user_space_dma: true,
            phys_contiguous: true,
            static_translation: true,
            injection_syscall_cycles: 0,
            per_segment_cycles: 0,
            copy_bytes_per_cycle: 4.0,
            segment_bytes: 1 << 30,
        }
    }

    /// A vanilla-Linux capability set: kernel-mediated injection, 4 KiB
    /// fragmented buffers, bounce copies ("modifying a vanilla Linux,
    /// especially to provide large physically contiguous memory, would be
    /// difficult", §V.C).
    pub fn fwk() -> CommCaps {
        CommCaps {
            user_space_dma: false,
            phys_contiguous: false,
            static_translation: false,
            injection_syscall_cycles: 900,
            per_segment_cycles: 40,
            copy_bytes_per_cycle: 4.0,
            segment_bytes: 4 << 10,
        }
    }
}

/// What the comm model does with a communication op.
#[derive(Clone, Copy, Debug)]
pub enum CommAction {
    /// The op completes locally after `cycles` (send-side overhead).
    RunFor { cycles: u64 },
    /// The thread blocks; the comm model will `defer_unblock` it later.
    Block { kind: BlockKind },
}

/// Kernel-private event tags (the machine routes them back verbatim).
pub type KernelEventTag = u64;

/// The operating system under test.
pub trait Kernel {
    fn name(&self) -> &'static str;

    /// Cold-boot all nodes. `reproducible` selects the §III restart path
    /// that skips service-node interaction.
    fn boot(&mut self, sc: &mut SimCore, reproducible: bool) -> BootReport;

    /// Tear down kernel state for a chip reset (DRAM contents survive in
    /// `sc` if the caller preserves them).
    fn reset(&mut self);

    /// Create the processes and main threads for a job.
    fn launch(
        &mut self,
        sc: &mut SimCore,
        spec: &JobSpec,
        factory: &mut dyn WorkloadFactory,
    ) -> Result<JobMap, LaunchError>;

    /// Service a syscall from `tid`.
    fn syscall(&mut self, sc: &mut SimCore, tid: Tid, req: &SysReq) -> SyscallAction;

    /// Thread creation (the clone path). On success the kernel has
    /// created the thread via `sc.create_thread` and returns its tid.
    fn spawn(
        &mut self,
        sc: &mut SimCore,
        parent: Tid,
        args: &CloneArgs,
        core_hint: Option<u32>,
        child: Box<dyn Workload>,
    ) -> (SysRet, u64);

    /// Cost of a compute-class op (`Compute`, `Daxpy`, `Stream`,
    /// `Flops`) for `tid`, including any kernel-regime effects.
    fn compute_cost(&mut self, sc: &mut SimCore, tid: Tid, op: &Op) -> u64;

    /// A timing-plane memory touch: translation effects (TLB refills,
    /// demand paging) and protection (DAC guard ranges).
    fn mem_touch(
        &mut self,
        sc: &mut SimCore,
        tid: Tid,
        vaddr: u64,
        bytes: u64,
        write: bool,
    ) -> MemOpResult;

    /// Pick the next thread to run on a now-free core.
    fn pick_next(&mut self, sc: &mut SimCore, core: CoreId) -> Option<Tid>;

    /// A previously blocked thread became Ready; decide placement.
    fn on_unblock(&mut self, sc: &mut SimCore, tid: Tid);

    /// A thread exited (bookkeeping; the machine already freed the core).
    fn on_exit(&mut self, sc: &mut SimCore, tid: Tid);

    /// A kernel-scheduled event (noise tick, daemon wake, CIOD service
    /// completion, timeslice) fired.
    fn kernel_event(&mut self, sc: &mut SimCore, node: NodeId, tag: KernelEventTag);

    /// A collective-network message addressed to the kernel arrived
    /// (function-ship replies).
    fn net_deliver(&mut self, sc: &mut SimCore, msg: NetMsg);

    /// An inter-processor interrupt arrived at a core (§IV.C guard
    /// repositioning).
    fn on_ipi(&mut self, sc: &mut SimCore, core: CoreId, kind: u32);

    /// An injected hardware fault (L1 parity error, kind=FAULT_PARITY)
    /// hit a core (§V.B).
    fn on_fault(&mut self, sc: &mut SimCore, core: CoreId, kind: u32);

    /// A scheduled RAS fault fired on `node`. The machine has already
    /// applied the hardware-level effects (link outages, in-flight
    /// corruption, parity injection); this is the kernel's chance to run
    /// its RAS policy — log the event, start recovery daemons, shorten
    /// in-flight writes. Default: no kernel-level reaction.
    fn on_ras(&mut self, _sc: &mut SimCore, _node: NodeId, _ev: &crate::fault::FaultEvent) {}

    /// Kernel-semantic invariant sweep, called by differential checkers
    /// (`bgcheck`) at quiescence. Implementations cross-check their
    /// private bookkeeping against the machine state and return one
    /// human-readable string per violation (empty = healthy). Must not
    /// mutate anything: the checker runs it after `run()` returns and
    /// expects the digest to be unaffected. Default: no checks.
    fn check_invariants(&self, _sc: &SimCore) -> Vec<String> {
        Vec::new()
    }

    /// Approximate heap bytes held by kernel-private state (process
    /// tables, futex tables, I/O proxies...). Feeds
    /// `Machine::resident_bytes_estimate`; an estimate, not allocator
    /// truth. Default: unaccounted.
    fn resident_bytes(&self) -> usize {
        0
    }

    /// Data-plane address translation for `tid`.
    fn translate(&self, sc: &SimCore, tid: Tid, vaddr: u64) -> Option<u64>;

    /// Capabilities granted to the messaging stack.
    fn comm_caps(&self, sc: &SimCore, tid: Tid) -> CommCaps;

    /// uname(2) identity.
    fn utsname(&self) -> UtsName;

    /// The Table II/III feature matrix for this kernel.
    fn features(&self) -> FeatureMatrix;
}

/// The messaging stack under test.
pub trait CommModel {
    fn name(&self) -> &'static str;

    /// A job was launched; capture the rank map and the kernel's default
    /// capability set (used for receive-side costs).
    fn configure_job(&mut self, sc: &SimCore, job: &JobMap, default_caps: CommCaps);

    /// Service a communication op issued by `tid` (which holds `rank`).
    fn issue(
        &mut self,
        sc: &mut SimCore,
        caps: &CommCaps,
        tid: Tid,
        rank: Rank,
        op: &CommOp,
    ) -> CommAction;

    /// A torus message arrived.
    fn net_deliver(&mut self, sc: &mut SimCore, msg: NetMsg);
}

/// Fault kinds for `Machine::inject_fault`.
pub const FAULT_PARITY: u32 = 1;

/// IPI kinds.
pub const IPI_GUARD_REPOSITION: u32 = 1;

/// The application program of one thread.
pub trait Workload {
    /// Produce the next operation. Called at op boundaries; `env` exposes
    /// the result of the previous op, pending signals, current time, and
    /// the data plane.
    fn next(&mut self, env: &mut WlEnv<'_>) -> Op;

    /// Display label.
    fn label(&self) -> &str {
        "workload"
    }
}

/// Supplies main-thread workloads at job launch.
pub trait WorkloadFactory {
    fn main_workload(&mut self, rank: Rank) -> Box<dyn Workload>;
}

/// Blanket factory from a closure.
impl<F> WorkloadFactory for F
where
    F: FnMut(Rank) -> Box<dyn Workload>,
{
    fn main_workload(&mut self, rank: Rank) -> Box<dyn Workload> {
        self(rank)
    }
}

/// The environment a workload sees at an op boundary.
pub struct WlEnv<'a> {
    pub(crate) sc: &'a mut SimCore,
    pub(crate) kernel: &'a mut dyn Kernel,
    pub(crate) tid: Tid,
}

impl<'a> WlEnv<'a> {
    /// Current simulated cycle.
    pub fn now(&self) -> crate::cycles::Cycle {
        self.sc.now()
    }

    pub fn tid(&self) -> Tid {
        self.tid
    }

    pub fn rank(&self) -> Option<Rank> {
        self.sc.threads[self.tid.idx()].rank
    }

    pub fn node(&self) -> NodeId {
        self.sc.threads[self.tid.idx()].node
    }

    pub fn core(&self) -> CoreId {
        self.sc.threads[self.tid.idx()].core
    }

    /// Result of the previous op (syscall return, spawned tid, ...).
    pub fn take_ret(&mut self) -> Option<SysRet> {
        self.sc.threads[self.tid.idx()].pending_ret.take()
    }

    /// Completion info of the previous receive.
    pub fn take_recv(&mut self) -> Option<RecvInfo> {
        self.sc.threads[self.tid.idx()].pending_recv.take()
    }

    /// Next pending signal, if any.
    pub fn take_signal(&mut self) -> Option<Sig> {
        self.sc.threads[self.tid.idx()].sig_queue.pop_front()
    }

    pub fn has_signal(&self) -> bool {
        !self.sc.threads[self.tid.idx()].sig_queue.is_empty()
    }

    /// Data-plane read through the kernel's translation.
    pub fn mem_read(&mut self, vaddr: u64, len: u64) -> Option<Vec<u8>> {
        let t = &self.sc.threads[self.tid.idx()];
        let node = t.node;
        let pa = self.kernel.translate(self.sc, self.tid, vaddr)?;
        self.sc.dram[node.idx()].read(pa, len).ok()
    }

    /// Data-plane write through the kernel's translation.
    pub fn mem_write(&mut self, vaddr: u64, data: &[u8]) -> bool {
        let t = &self.sc.threads[self.tid.idx()];
        let node = t.node;
        match self.kernel.translate(self.sc, self.tid, vaddr) {
            Some(pa) => self.sc.dram[node.idx()].write(pa, data).is_ok(),
            None => false,
        }
    }

    pub fn mem_read_u32(&mut self, vaddr: u64) -> Option<u32> {
        self.mem_read(vaddr, 4)
            .map(|b| u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn mem_write_u32(&mut self, vaddr: u64, v: u32) -> bool {
        self.mem_write(vaddr, &v.to_be_bytes())
    }

    pub fn mem_read_u64(&mut self, vaddr: u64) -> Option<u64> {
        self.mem_read(vaddr, 8)
            .map(|b| u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    pub fn mem_write_u64(&mut self, vaddr: u64, v: u64) -> bool {
        self.mem_write(vaddr, &v.to_be_bytes())
    }

    /// The kernel's uname identity (the NPTL version gate reads this).
    pub fn utsname(&self) -> UtsName {
        self.kernel.utsname()
    }
}

/// A shared sample sink workloads record measurements into; the harness
/// keeps a clone and reads the series after the run. `Rc`-based because a
/// simulation is strictly single-threaded.
///
/// Each series is itself reference-counted, so a hot sampling loop can
/// hold a [`SeriesHandle`] and append without a name lookup per sample —
/// the FWQ loop records one value per 658k-cycle quantum and the map
/// probe used to be a measurable slice of the whole simulation.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Rc<RefCell<BTreeMap<String, SeriesData>>>,
}

/// One recorder series: shared, interior-mutable sample vector.
type SeriesData = Rc<RefCell<Vec<f64>>>;

/// A direct handle to one recorder series: push-only, O(1), no lookup.
#[derive(Clone)]
pub struct SeriesHandle {
    data: Rc<RefCell<Vec<f64>>>,
}

impl SeriesHandle {
    #[inline]
    pub fn push(&self, value: f64) {
        self.data.borrow_mut().push(value);
    }

    /// Bulk append — one borrow for the whole batch, so a sampling loop
    /// can buffer locally and flush once instead of paying the
    /// `RefCell` round-trip per sample.
    pub fn extend_from_slice(&self, values: &[f64]) {
        self.data.borrow_mut().extend_from_slice(values);
    }

    pub fn len(&self) -> usize {
        self.data.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.borrow().is_empty()
    }
}

impl Recorder {
    pub fn new() -> Recorder {
        Recorder::default()
    }

    pub fn record(&self, series: &str, value: f64) {
        // Existing series: append without allocating a key.
        if let Some(s) = self.inner.borrow().get(series) {
            s.borrow_mut().push(value);
            return;
        }
        self.inner
            .borrow_mut()
            .entry(series.to_string())
            .or_default()
            .borrow_mut()
            .push(value);
    }

    /// A push-only handle to `name`, creating the (empty) series if it
    /// does not exist yet.
    pub fn series_handle(&self, name: &str) -> SeriesHandle {
        let data = self
            .inner
            .borrow_mut()
            .entry(name.to_string())
            .or_default()
            .clone();
        SeriesHandle { data }
    }

    pub fn series(&self, name: &str) -> Vec<f64> {
        self.inner
            .borrow()
            .get(name)
            .map(|s| s.borrow().clone())
            .unwrap_or_default()
    }

    pub fn series_names(&self) -> Vec<String> {
        self.inner.borrow().keys().cloned().collect()
    }

    pub fn len(&self, name: &str) -> usize {
        self.inner
            .borrow()
            .get(name)
            .map_or(0, |v| v.borrow().len())
    }

    pub fn is_empty(&self) -> bool {
        self.inner.borrow().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_shares_data() {
        let r = Recorder::new();
        let r2 = r.clone();
        r.record("a", 1.0);
        r2.record("a", 2.0);
        assert_eq!(r.series("a"), vec![1.0, 2.0]);
        assert_eq!(r.series("missing"), Vec::<f64>::new());
        assert_eq!(r.series_names(), vec!["a".to_string()]);
    }

    #[test]
    fn boot_report_vhdl_time() {
        let b = BootReport {
            kernel: "cnk",
            instructions: 100_000,
            phases: vec![],
        };
        // 100k instructions at 10 Hz = 10,000 s ≈ 2.8 hours.
        let s = b.vhdl_sim_seconds(10.0);
        assert!((s - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn comm_caps_presets() {
        let c = CommCaps::cnk();
        assert!(c.user_space_dma && c.phys_contiguous && c.static_translation);
        assert_eq!(c.injection_syscall_cycles, 0);
        let f = CommCaps::fwk();
        assert!(!f.user_space_dma);
        assert!(f.injection_syscall_cycles > 0);
        assert_eq!(f.segment_bytes, 4 << 10);
    }
}
