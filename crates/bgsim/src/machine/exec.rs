//! The machine executor: boot, launch, and the deterministic event loop.

use std::collections::VecDeque;

use sysabi::{CoreId, JobSpec, NodeId, ProcId, Sig, SysReq, SysRet, Tid};

use crate::cycles::Cycle;
use crate::engine::EvKind;
use crate::fault::{FaultEvent, FaultKind};
use crate::machine::progress::{
    CancelCause, CancelToken, LiveHook, LiveState, ProgressCtl, ProgressReport,
};
use crate::machine::simcore::{NetDomain, SimCore};
use crate::machine::thread::ThreadState;
use crate::machine::{
    BootReport, CommAction, CommModel, JobMap, Kernel, LaunchError, SyscallAction, WlEnv,
    WorkloadFactory,
};
use crate::op::Op;
use crate::scan::{ScanRecord, ScanTarget};
use crate::telemetry::{Domain, Slot, TpKind};
use crate::trace::TraceEvent;

/// Cycles charged to the interrupted thread per delivered IPI.
const IPI_OVERHEAD: u64 = 80;

/// The fast path only engages when every pending event is a runnable
/// thread's completion; above this many pending events the quiescence
/// scan costs more than it saves (kernels with standing timers — noise
/// daemons, timeslices — or large multi-node runs never qualify, and
/// this cap keeps the rejection cheap for them).
const FAST_MAX_PENDING: usize = 8;

/// A virtualized `OpDone`: a pending completion lifted out of the event
/// heap into the machine's micro run queue. Carries the event's original
/// global sequence number so it occupies the exact slot in the
/// `(cycle, seq)` total order the heap would have given it, plus the
/// thread generation for the same staleness check `on_op_done` performs.
#[derive(Clone, Copy, Debug)]
struct FastSlot {
    until: Cycle,
    seq: u64,
    tid: Tid,
    gen: u32,
    node: u32,
}

/// Internal result of dispatching one op.
enum Disp {
    /// Zero-cost op — fetch the next op in the same cycle.
    Continue,
    /// A completion event was scheduled; the thread keeps its core.
    Scheduled,
    /// The thread gave up the core (blocked, yielded, or exited).
    Released,
}

/// How a run ended.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// All job threads exited.
    Completed { at: Cycle },
    /// The clock-stop bound was reached.
    ReachedCycle { at: Cycle },
    /// The event queue drained with threads still blocked — a hang.
    Deadlock { at: Cycle, blocked: Vec<Tid> },
    /// Nothing to do (no job launched).
    Idle { at: Cycle },
    /// The run was stopped early by its live hook: a cancel token, a
    /// cycle/wall deadline, or a sink returning
    /// [`ProgressCtl::Cancel`]. In-flight state is left intact (like
    /// `ReachedCycle`), but quiescence invariants do not hold.
    Cancelled { at: Cycle, cause: CancelCause },
}

impl RunOutcome {
    pub fn at(&self) -> Cycle {
        match self {
            RunOutcome::Completed { at }
            | RunOutcome::ReachedCycle { at }
            | RunOutcome::Deadlock { at, .. }
            | RunOutcome::Idle { at }
            | RunOutcome::Cancelled { at, .. } => *at,
        }
    }

    pub fn completed(&self) -> bool {
        matches!(self, RunOutcome::Completed { .. })
    }
}

/// A simulated machine: hardware state + a kernel + a messaging stack.
pub struct Machine {
    pub sc: SimCore,
    kernel: Box<dyn Kernel>,
    comm: Box<dyn CommModel>,
    booted: bool,
    has_job: bool,
    boot_report: Option<BootReport>,
    /// Livelock-guard state for the event loop. A Machine field (not a
    /// run_inner local) so windowed execution carries it across epoch
    /// boundaries instead of resetting every window.
    idle_kernel_events: u32,
    /// Epoch windows executed by `run_windowed`.
    epochs: u64,
    /// The fast-path micro run queue: pending completions virtualized out
    /// of the event heap while the machine is compute-quiescent.
    fast: Vec<FastSlot>,
    /// True while the micro run queue owns every pending event.
    fast_active: bool,
    /// The resolved fault schedule, sorted by `(at, node)`; `EvKind::Ras`
    /// events index into it. Empty when no faults are configured.
    fault_events: Vec<FaultEvent>,
    /// Live-run control (progress sink, cancel token, deadlines);
    /// `None` for ordinary runs, so the hook costs nothing when absent.
    live: Option<Box<LiveState>>,
}

impl Machine {
    pub fn new(
        cfg: crate::config::MachineConfig,
        kernel: Box<dyn Kernel>,
        comm: Box<dyn CommModel>,
    ) -> Machine {
        Machine {
            sc: SimCore::new(cfg),
            kernel,
            comm,
            booted: false,
            has_job: false,
            boot_report: None,
            idle_kernel_events: 0,
            epochs: 0,
            fast: Vec::new(),
            fast_active: false,
            fault_events: Vec::new(),
            live: None,
        }
    }

    /// Attach a live hook (progress sink, cancel token, deadlines) to
    /// the next run. The cycle deadline is resolved against the current
    /// clock; the hook stays attached across `run`/`run_windowed` calls
    /// until replaced or cleared.
    pub fn attach_live_hook(&mut self, hook: LiveHook) {
        if hook.is_noop() {
            self.live = None;
            return;
        }
        let now = self.sc.engine.now();
        let events = self.sc.engine.processed();
        self.live = Some(Box::new(LiveState::new(hook, now, events)));
    }

    /// Detach any live hook.
    pub fn clear_live_hook(&mut self) {
        self.live = None;
    }

    pub fn now(&self) -> Cycle {
        self.sc.now()
    }

    pub fn kernel(&self) -> &dyn Kernel {
        &*self.kernel
    }

    pub fn kernel_mut(&mut self) -> &mut dyn Kernel {
        &mut *self.kernel
    }

    pub fn comm(&self) -> &dyn CommModel {
        &*self.comm
    }

    pub fn boot_report(&self) -> Option<&BootReport> {
        self.boot_report.as_ref()
    }

    pub fn trace_digest(&self) -> u64 {
        self.sc.trace.digest()
    }

    /// Detached copy of the profiler's sim-side counters.
    pub fn profile_snapshot(&self) -> crate::telemetry::ProfileSnapshot {
        self.sc.prof.snapshot()
    }

    /// Render the crash flight recorder (recent spans per domain) for a
    /// repro artifact or panic dump.
    pub fn flight_dump(&self) -> String {
        self.sc.prof.flight_dump()
    }

    /// Coverage signal for fuzzers: counter vector + trace-digest prefix
    /// ([`crate::telemetry::coverage_digest`]).
    pub fn coverage_digest(&self) -> u64 {
        crate::telemetry::coverage_digest(&self.sc.tel.metrics, self.sc.trace.digest())
    }

    /// Approximate heap bytes resident for this machine: simulator state
    /// (engine queues, payload slab, per-node/per-core columns), kernel
    /// private state, and machine-level scratch (fast-path run queue,
    /// fault schedule). The estimate counts container capacities, so it
    /// tracks reservations as well as live entries; `fig_scale` divides it
    /// by the node count to report bytes/node at each sweep point.
    pub fn resident_bytes_estimate(&self) -> usize {
        self.sc.resident_bytes_estimate()
            + self.kernel.resident_bytes()
            + self.fast.capacity() * std::mem::size_of::<FastSlot>()
            + self.fault_events.capacity() * std::mem::size_of::<FaultEvent>()
    }

    /// Cold boot.
    pub fn boot(&mut self) -> &BootReport {
        assert!(!self.booted, "already booted");
        let report = self.kernel.boot(&mut self.sc, false);
        self.booted = true;
        self.schedule_faults();
        self.boot_report.insert(report)
    }

    /// Turn the config's fault schedule into engine events, one per
    /// fault, in the target node's event domain. An empty schedule
    /// schedules nothing — the run stays bit-identical to a fault-free
    /// build (and the event-reduction fast path stays eligible).
    fn schedule_faults(&mut self) {
        let mut events = self.sc.cfg.faults.events.clone();
        if events.is_empty() {
            self.fault_events = events;
            return;
        }
        events.sort_by_key(|e| (e.at, e.node));
        for (idx, ev) in events.iter().enumerate() {
            self.sc
                .engine
                .schedule_dom(ev.node, ev.at, EvKind::Ras { idx: idx as u32 });
        }
        self.fault_events = events;
    }

    /// Launch a job: the kernel builds address spaces and threads, the
    /// machine assigns ranks and queues the main threads for execution.
    pub fn launch(
        &mut self,
        spec: &JobSpec,
        factory: &mut dyn WorkloadFactory,
    ) -> Result<JobMap, LaunchError> {
        assert!(self.booted, "launch before boot");
        if spec.nodes > self.sc.cfg.nodes {
            return Err(LaunchError::BadSpec(format!(
                "job wants {} nodes, machine has {}",
                spec.nodes, self.sc.cfg.nodes
            )));
        }
        let job = self.kernel.launch(&mut self.sc, spec, factory)?;
        for ri in &job.ranks {
            self.sc.threads[ri.main_tid.idx()].rank = Some(ri.rank);
        }
        let caps = job
            .ranks
            .first()
            .map(|r| self.kernel.comm_caps(&self.sc, r.main_tid))
            .unwrap_or_else(crate::machine::CommCaps::cnk);
        self.comm.configure_job(&self.sc, &job, caps);
        for ri in &job.ranks {
            if self.sc.core_idle(self.sc.threads[ri.main_tid.idx()].core) {
                self.sc.dispatch(ri.main_tid);
            }
        }
        self.has_job = true;
        Ok(job)
    }

    /// Inject a hardware fault (e.g. `FAULT_PARITY`) at an absolute cycle.
    pub fn inject_fault(&mut self, at: Cycle, core: CoreId, kind: u32) {
        let node = self.sc.node_of_core(core);
        self.sc
            .engine
            .schedule_dom(node.0, at, EvKind::Fault { core: core.0, kind });
    }

    /// Run until the job completes or nothing can make progress.
    pub fn run(&mut self) -> RunOutcome {
        self.idle_kernel_events = 0;
        let out = self.run_inner(None);
        self.publish_engine_telemetry();
        out
    }

    /// Clock-stop: run to an exact cycle (§III), leaving in-flight state
    /// intact for scanning.
    pub fn run_until(&mut self, bound: Cycle) -> RunOutcome {
        self.idle_kernel_events = 0;
        self.run_inner(Some(bound))
    }

    /// Run to completion in bounded epoch windows of
    /// `cfg.effective_lookahead()` cycles — the execution mode of the
    /// conservative parallel protocol, driven sequentially here. Events
    /// pop in exactly the same `(cycle, seq)` order as `run()`, so the
    /// outcome, final cycle, and trace digest are bit-identical; only
    /// the batching differs. The sequential `run()` is the conformance
    /// oracle for this path.
    pub fn run_windowed(&mut self) -> RunOutcome {
        self.idle_kernel_events = 0;
        let lookahead = self.sc.cfg.effective_lookahead();
        loop {
            let bound = {
                let base = self.sc.now().saturating_add(lookahead);
                if self.sc.cfg.fast_path || self.sc.cfg.epoch_fast_forward {
                    // Quiescence fast-forward at the window level: if the
                    // earliest pending event lies beyond the naive window,
                    // every epoch until then would pop nothing. Jump the
                    // window so it starts at that event — the same rule
                    // parsim uses for its horizon (`min_at + lookahead`).
                    // Pop order is untouched; only the number of empty
                    // `ReachedCycle` epochs changes. Virtual kernel
                    // timers count as pending events for this purpose.
                    let head = match (self.sc.engine.peek_at(), self.sc.vtimers.peek_key()) {
                        (Some(e), Some((v, _))) => Some(e.min(v)),
                        (Some(e), None) => Some(e),
                        (None, Some((v, _))) => Some(v),
                        (None, None) => None,
                    };
                    match head {
                        Some(at) if at > base => at.saturating_add(lookahead),
                        _ => base,
                    }
                } else {
                    base
                }
            };
            match self.run_inner(Some(bound)) {
                RunOutcome::ReachedCycle { .. } => {
                    self.epochs += 1;
                    if self.sc.engine.is_idle() && self.sc.vtimers.is_empty() {
                        // Queue drained mid-window. Classify exactly as
                        // run() would, at the last processed event (the
                        // engine clock itself parked at the window
                        // bound).
                        let at = self.sc.engine.last_event_cycle();
                        let blocked: Vec<Tid> = self
                            .sc
                            .threads
                            .iter()
                            .filter(|t| t.state.is_blocked())
                            .map(|t| t.tid)
                            .collect();
                        let out = if !self.has_job || blocked.is_empty() {
                            RunOutcome::Idle { at }
                        } else {
                            RunOutcome::Deadlock { at, blocked }
                        };
                        self.publish_engine_telemetry();
                        return out;
                    }
                }
                out => {
                    self.publish_engine_telemetry();
                    return out;
                }
            }
        }
    }

    /// Epoch windows executed by `run_windowed` so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Machine-level invariant sweep plus the kernel's own
    /// [`Kernel::check_invariants`] hook. Run at quiescence (after
    /// `run()`/`run_windowed()` return); read-only. Returns one string
    /// per violation — empty means every cross-check held.
    pub fn check_invariants(&self) -> Vec<String> {
        let mut v = Vec::new();
        // Monotonic cycle time: retained trace entries must never go
        // backwards (the digest covers the full stream, but only the
        // retained window can be re-inspected here).
        let mut last = 0u64;
        for e in self.sc.trace.entries() {
            if e.at < last {
                v.push(format!(
                    "trace time went backwards: entry at cycle {} after cycle {last}",
                    e.at
                ));
                break;
            }
            last = e.at;
        }
        if last > self.sc.engine.now() {
            v.push(format!(
                "trace entry at cycle {last} is ahead of the engine clock {}",
                self.sc.engine.now()
            ));
        }
        // Live-thread counter vs a full recount: the executor maintains
        // the O(1) counter at exit transitions, so drift means a state
        // write bypassed them.
        let recount = self.sc.threads.iter().filter(|t| t.state.is_live()).count();
        if recount != self.sc.live_threads() {
            v.push(format!(
                "live-thread counter {} != recount {recount}",
                self.sc.live_threads()
            ));
        }
        // Running-slot cross-check: an occupied core slot must name a
        // live thread bound to that core.
        for (i, slot) in self.sc.running.iter().enumerate() {
            let Some(tid) = slot else { continue };
            match self.sc.threads.get(tid.idx()) {
                None => v.push(format!("core {i} runs nonexistent tid {}", tid.0)),
                Some(t) => {
                    if t.core.idx() != i {
                        v.push(format!(
                            "core {i} runs tid {} whose thread is bound to core {}",
                            tid.0, t.core.0
                        ));
                    }
                    if !t.state.is_live() {
                        v.push(format!(
                            "core {i} runs tid {} in non-live state {:?}",
                            tid.0, t.state
                        ));
                    }
                }
            }
        }
        // Telemetry counter sanity: histogram internals must be
        // mutually consistent (count/min/max/sum cannot contradict).
        for m in self.sc.tel.metrics.iter() {
            for (slot, h) in m.hists.iter().enumerate() {
                if h.count() == 0 {
                    continue;
                }
                let lo = h.min() as u128;
                let hi = h.max() as u128;
                let n = h.count() as u128;
                let sum = h.sum() as u128;
                // `sum` saturates at u64::MAX, so only flag bounds the
                // saturation cannot explain.
                if lo > hi || sum < lo || (sum > n * hi && h.sum() != u64::MAX) {
                    v.push(format!(
                        "telemetry hist {}[{slot}] inconsistent: count={} min={} max={} sum={}",
                        m.name,
                        h.count(),
                        h.min(),
                        h.max(),
                        h.sum()
                    ));
                }
            }
        }
        v.extend(self.kernel.check_invariants(&self.sc));
        v
    }

    /// Export the engine's occupancy counters as telemetry gauges (a
    /// no-op unless telemetry is enabled; gauges never feed back into
    /// simulation state, preserving observer-neutrality).
    fn publish_engine_telemetry(&mut self) {
        let stats = self.sc.engine.stats();
        let ids = self.sc.tel.ids;
        self.sc
            .tel
            .gauge(ids.evq_stale_discards, Slot::Machine, stats.stale_discarded);
        self.sc
            .tel
            .gauge(ids.evq_compactions, Slot::Machine, stats.compactions);
        self.sc
            .tel
            .gauge(ids.coalesced_ops, Slot::Machine, stats.coalesced);
        self.sc.tel.gauge(
            ids.fastforward_cycles,
            Slot::Machine,
            stats.fastforward_cycles,
        );
        self.sc.tel.gauge(
            ids.batched_packets,
            Slot::Machine,
            self.sc.stats.batched_packets,
        );
    }

    fn run_inner(&mut self, bound: Option<Cycle>) -> RunOutcome {
        // Livelock guard: a kernel with self-rescheduling events (noise
        // ticks) keeps the queue non-empty forever even when every
        // thread is deadlocked. Count consecutive kernel-private events
        // processed while no thread runs and nothing drains; past the
        // limit, report the deadlock instead of spinning.
        const IDLE_KERNEL_EVENT_LIMIT: u32 = 200_000;
        loop {
            if self.drain() {
                self.idle_kernel_events = 0;
            }
            if self.has_job && self.sc.live_threads() == 0 {
                return RunOutcome::Completed { at: self.sc.now() };
            }
            if self.idle_kernel_events > IDLE_KERNEL_EVENT_LIMIT {
                let blocked: Vec<Tid> = self
                    .sc
                    .threads
                    .iter()
                    .filter(|t| t.state.is_blocked())
                    .map(|t| t.tid)
                    .collect();
                return RunOutcome::Deadlock {
                    at: self.sc.now(),
                    blocked,
                };
            }
            if let Some(out) = self.poll_live() {
                return out;
            }
            // Quiescence fast path: when every pending event is a running
            // thread's own completion, retire them through the micro run
            // queue instead of the heap. Digest-identical by
            // construction; see `try_enter_fast`.
            if self.sc.cfg.fast_path && self.try_enter_fast(bound) {
                self.run_fast(bound);
                continue;
            }
            // Virtual kernel timers (closed-form noise) live outside the
            // heap but hold real slots in the global `(cycle, seq)` total
            // order: their seq comes from the engine's own counter. Pop
            // whichever source holds the earlier key, so the merged
            // stream is bit-identical to the all-on-heap reference.
            let vkey = self.sc.vtimers.peek_key();
            let take_virtual = match vkey {
                Some(v) => {
                    bound.is_none_or(|b| v.0 <= b)
                        && self.sc.engine.peek_key().is_none_or(|e| v < e)
                }
                None => false,
            };
            if take_virtual {
                let (at, _seq, node, tag) = self.sc.vtimers.pop().expect("peeked above");
                self.sc.engine.advance_virtual(at);
                let nothing_running = self.sc.running.iter().all(Option::is_none);
                if nothing_running {
                    self.idle_kernel_events += 1;
                } else {
                    self.idle_kernel_events = 0;
                }
                self.handle(EvKind::Kernel { node, tag });
                continue;
            }
            let ev = match bound {
                Some(b) => self.sc.engine.pop_until(b),
                None => self.sc.engine.pop(),
            };
            let Some(ev) = ev else {
                let at = self.sc.now();
                if bound.is_some() {
                    return RunOutcome::ReachedCycle { at };
                }
                let blocked: Vec<Tid> = self
                    .sc
                    .threads
                    .iter()
                    .filter(|t| t.state.is_blocked())
                    .map(|t| t.tid)
                    .collect();
                return if !self.has_job || blocked.is_empty() {
                    RunOutcome::Idle { at }
                } else {
                    RunOutcome::Deadlock { at, blocked }
                };
            };
            let nothing_running = self.sc.running.iter().all(Option::is_none);
            if nothing_running && matches!(ev.kind, EvKind::Kernel { .. }) {
                self.idle_kernel_events += 1;
            } else {
                self.idle_kernel_events = 0;
            }
            self.handle(ev.kind);
        }
    }

    // ---- live-run control ---------------------------------------------------

    /// One live-hook poll at the event-loop head: cheap tick first, then
    /// (when due) cancel token, deadlines, and the progress report.
    /// Everything observed is read-only simulation state, so a hook
    /// whose sink keeps returning `Continue` never perturbs the run —
    /// the neutrality proptest pins this.
    fn poll_live(&mut self) -> Option<RunOutcome> {
        let now = self.sc.engine.now();
        let live = self.live.as_deref_mut()?;
        if !live.tick(now) {
            return None;
        }
        live.due = false;
        if live.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Some(RunOutcome::Cancelled {
                at: now,
                cause: CancelCause::Requested,
            });
        }
        if live.deadline.is_some_and(|d| now >= d) {
            return Some(RunOutcome::Cancelled {
                at: now,
                cause: CancelCause::TimeoutCycles,
            });
        }
        if live
            .wall_deadline
            .is_some_and(|d| std::time::Instant::now() >= d)
        {
            return Some(RunOutcome::Cancelled {
                at: now,
                cause: CancelCause::TimeoutWall,
            });
        }
        if now >= live.next_report_at {
            let events = self.sc.engine.processed();
            let report = ProgressReport {
                cycle: now,
                events,
                d_events: events.saturating_sub(live.last_events),
                d_cycles: now.saturating_sub(live.last_cycle),
                live_threads: self.sc.live_threads(),
                profile: self.sc.prof.snapshot(),
            };
            live.last_events = events;
            live.last_cycle = now;
            live.next_report_at = now.saturating_add(live.interval.max(1));
            if let Some(sink) = live.sink.as_mut() {
                if let ProgressCtl::Cancel(cause) = sink.on_progress(&report) {
                    return Some(RunOutcome::Cancelled { at: now, cause });
                }
            }
        }
        None
    }

    /// Fast-path variant of the tick: when a live check falls due the
    /// fast loop must break out (flushing survivors back to the heap)
    /// so `poll_live` runs at the loop head. The flush/re-enter round
    /// trip preserves `(cycle, seq)` keys, so it is digest- and
    /// profile-invisible; only engine occupancy counters move.
    fn live_check_due(&mut self) -> bool {
        let now = self.sc.engine.now();
        match self.live.as_deref_mut() {
            Some(live) => live.tick(now),
            None => false,
        }
    }

    // ---- the event-reduction fast path -------------------------------------
    //
    // On CNK the machine spends almost all simulated time with every core
    // inside a long, perfectly predictable compute quantum (the paper's
    // noiselessness, §V.A). The heap then carries exactly one `OpDone`
    // per running thread and nothing else — yet the baseline loop still
    // pays a heap push + lazy-merge pop per quantum. The fast path
    // detects that *compute-quiescent* state, lifts the pending
    // completions into a tiny run queue (`fast`), and retires them
    // inline: the clock jumps straight to each completion
    // (`Engine::advance_inline`) and the next op's completion is
    // virtualized without touching the heap (`alloc_seq` keeps its
    // position in the global order).
    //
    // Digest identity with the heap path holds by construction:
    //
    // * Sequence numbers are allocated from the engine's own counter in
    //   the same order `schedule_dom` would have, so the `(cycle, seq)`
    //   total order over *all* events — virtual or real — is unchanged.
    // * Retirement order is argmin over `(until, seq)`, i.e. exactly heap
    //   pop order, and each retirement replays `on_op_done` verbatim
    //   (same state transitions, same trace records at the same cycles).
    // * The regime exits the moment anything else appears — a kernel
    //   timer, a message delivery, a deferral-queue push, a window
    //   bound — by restoring every survivor to the heap with its
    //   *original* sequence number (`Engine::restore`), after which the
    //   baseline loop drains events in the baseline order.
    //
    // Anything that could reorder events vetoes entry: preemption and
    // stretching only run from event handlers (impossible while the heap
    // is empty), and kills/unblocks route through the deferral queues,
    // which both the entry gate and the retirement loop check.

    /// Enter the compute-quiescent regime if every pending event is a
    /// running thread's own completion (and, under a window bound, at
    /// least one completion lands inside the window). On success the
    /// completions are migrated out of the heap into `fast`.
    fn try_enter_fast(&mut self, bound: Option<Cycle>) -> bool {
        debug_assert!(!self.fast_active);
        let pending = self.sc.engine.pending();
        if pending == 0 || pending > FAST_MAX_PENDING {
            return false;
        }
        if !self.sc.vtimers.is_empty() {
            // A virtual kernel timer (closed-form noise) is pending. It
            // lives outside the heap, so `pending` cannot see it, yet it
            // holds a slot in the global order — the fast path must not
            // jump the clock past it.
            return false;
        }
        if !self.sc.dispatch_q.is_empty()
            || !self.sc.unblock_q.is_empty()
            || !self.sc.kill_q.is_empty()
        {
            return false;
        }
        self.fast.clear();
        let mut min_until = Cycle::MAX;
        for slot in self.sc.running.iter() {
            let Some(tid) = *slot else { continue };
            let t = &self.sc.threads[tid.idx()];
            let ThreadState::Running { gen, until, .. } = t.state else {
                self.fast.clear();
                return false;
            };
            let Some(h) = t.pending_done else {
                self.fast.clear();
                return false;
            };
            if !self.sc.engine.is_live(h) {
                self.fast.clear();
                return false;
            }
            self.fast.push(FastSlot {
                until,
                seq: h.seq(),
                tid,
                gen,
                node: t.node.0,
            });
            min_until = min_until.min(until);
        }
        // Every pending event must be one of these completions; a kernel
        // timer, net delivery, IPI, or any other foreign event vetoes.
        if self.fast.len() != pending {
            self.fast.clear();
            return false;
        }
        if let Some(b) = bound {
            if min_until > b {
                // Empty window: let pop_until park the clock instead.
                self.fast.clear();
                return false;
            }
        }
        for i in 0..self.fast.len() {
            let tid = self.fast[i].tid;
            let h = self.sc.threads[tid.idx()]
                .pending_done
                .take()
                .expect("validated above");
            let ok = self.sc.engine.decommit(h);
            debug_assert!(ok, "validated handle must decommit");
        }
        self.fast_active = true;
        true
    }

    /// Retire virtualized completions in `(until, seq)` order — exactly
    /// heap pop order — until something foreign appears (engine event,
    /// deferral push, window bound) or the run queue drains; then flush.
    fn run_fast(&mut self, bound: Option<Cycle>) {
        debug_assert!(self.fast_active);
        loop {
            if !self.sc.dispatch_q.is_empty()
                || !self.sc.unblock_q.is_empty()
                || !self.sc.kill_q.is_empty()
                || self.sc.engine.pending() != 0
                || !self.sc.vtimers.is_empty()
                || self.fast.is_empty()
            {
                break;
            }
            if self.live_check_due() {
                break;
            }
            let mut best = 0usize;
            for i in 1..self.fast.len() {
                let (a, b) = (&self.fast[i], &self.fast[best]);
                if (a.until, a.seq) < (b.until, b.seq) {
                    best = i;
                }
            }
            if let Some(bnd) = bound {
                if self.fast[best].until > bnd {
                    break;
                }
            }
            let s = self.fast.swap_remove(best);
            // The staleness gate of `on_op_done`: a superseded completion
            // must not advance the clock (the heap path cancels it). One
            // borrow covers the gate and the retirement bookkeeping; the
            // clock moves only after the gate passes, and nothing before
            // `advance_inline` observes the clock.
            let busy = {
                let t = &mut self.sc.threads[s.tid.idx()];
                match t.state {
                    ThreadState::Running {
                        gen,
                        until,
                        started,
                    } if gen == s.gen => {
                        debug_assert_eq!(until, s.until);
                        let busy = until.saturating_sub(started);
                        t.stats.busy_cycles += busy;
                        t.state = ThreadState::Ready;
                        t.pending_done = None;
                        busy
                    }
                    _ => continue,
                }
            };
            self.sc.engine.advance_inline(s.until);
            self.idle_kernel_events = 0;
            self.sc
                .trace
                .record(s.until, TraceEvent::OpEnd { tid: s.tid.0 });
            // Profiler attribution: this completion retired through the
            // micro run queue, not a heap pop. The split is mode-stable —
            // a windowed run defers a fast retirement across the window
            // bound but re-enters the regime with identical state, so
            // seq and windowed drivers attribute identically.
            self.sc
                .prof
                .span(Domain::FastPath, s.until, s.node, "op_retire", busy);
            self.advance_thread(s.tid);
        }
        self.flush_fast();
    }

    /// Exit the regime: every surviving virtual completion goes back on
    /// the heap with its original `(cycle, seq)` key, and the thread gets
    /// its cancellable handle back. Slots whose thread was superseded are
    /// dropped (the heap path would have cancelled them).
    fn flush_fast(&mut self) {
        for i in 0..self.fast.len() {
            let s = self.fast[i];
            let valid = matches!(
                self.sc.threads[s.tid.idx()].state,
                ThreadState::Running { gen, .. } if gen == s.gen
            );
            if !valid {
                continue;
            }
            let h = self.sc.engine.restore(
                s.node,
                s.until,
                s.seq,
                EvKind::OpDone {
                    tid: s.tid.0,
                    gen: s.gen,
                },
            );
            self.sc.threads[s.tid.idx()].pending_done = Some(h);
        }
        self.fast.clear();
        self.fast_active = false;
    }

    /// Take a destructive logic scan: snapshot, then the machine is
    /// consumed (scans destroy chip state, §III). For non-destructive
    /// introspection in tests use `scan_ref`.
    pub fn scan_destructive(self, target: ScanTarget) -> ScanRecord {
        self.scan_ref(target)
    }

    /// Snapshot scan (the simulator can afford to be non-destructive, but
    /// the bringup workflow treats it as destructive).
    pub fn scan_ref(&self, target: ScanTarget) -> ScanRecord {
        let (desc, digest, probes) = match target {
            ScanTarget::Cores => ("cores", self.sc.trace.digest(), self.sc.probe_signals()),
            ScanTarget::Network => {
                let probes: Vec<(String, u64)> = self
                    .sc
                    .probe_signals()
                    .into_iter()
                    .filter(|(n, _)| n.starts_with("net."))
                    .collect();
                ("network", self.sc.trace.digest(), probes)
            }
            ScanTarget::Dram { addr, len } => {
                let d = self.sc.dram[0].digest(addr, len);
                ("dram", d, vec![("dram.window".to_string(), d)])
            }
            ScanTarget::Full => {
                let mut probes = self.sc.probe_signals();
                probes.push((
                    "dram0.resident".to_string(),
                    self.sc.dram[0].resident_granules() as u64,
                ));
                ("full", self.sc.trace.digest(), probes)
            }
        };
        ScanRecord {
            cycle: self.sc.now(),
            target_desc: desc,
            digest,
            probes,
        }
    }

    /// The §III reproducible reset: rendezvous cores, flush caches to
    /// DDR, put DDR in self-refresh, toggle reset. DRAM contents survive;
    /// everything else restarts from cycle 0. The kernel reboots on the
    /// reproducible path (no service-node interaction).
    pub fn reproducible_reset(&mut self) {
        self.sc.barrier.prepare_reproducible_reboot();
        let dram = std::mem::take(&mut self.sc.dram);
        let mut barrier = self.sc.barrier.clone();
        barrier.on_chip_reset();
        let mut fresh = SimCore::new(self.sc.cfg.clone());
        fresh.dram = dram;
        fresh.barrier = barrier;
        self.sc = fresh;
        self.kernel.reset();
        self.booted = true;
        self.has_job = false;
        self.boot_report = Some(self.kernel.boot(&mut self.sc, true));
        self.schedule_faults();
    }

    // ---- event handling ---------------------------------------------------

    fn handle(&mut self, kind: EvKind) {
        match kind {
            EvKind::OpDone { tid, gen } => self.on_op_done(Tid(tid), gen),
            EvKind::Kernel { node, tag } => {
                self.sc
                    .prof
                    .span(Domain::Sched, self.sc.engine.now(), node, "kernel_event", 0);
                self.kernel.kernel_event(&mut self.sc, NodeId(node), tag);
            }
            EvKind::NetDeliver { msg_id } => {
                let Some(msg) = self.sc.take_msg(msg_id) else {
                    return;
                };
                self.sc.trace.record(
                    self.sc.engine.now(),
                    TraceEvent::MsgRecv {
                        dst: msg.dst_node.0,
                        bytes: msg.bytes,
                        tag: msg.tag,
                    },
                );
                let dom = match msg.domain {
                    NetDomain::Torus => Domain::Torus,
                    NetDomain::Collective => Domain::Collective,
                };
                self.sc
                    .prof
                    .span(dom, self.sc.engine.now(), msg.dst_node.0, "deliver", 0);
                match msg.domain {
                    NetDomain::Torus => self.comm.net_deliver(&mut self.sc, msg),
                    NetDomain::Collective => self.kernel.net_deliver(&mut self.sc, msg),
                }
            }
            EvKind::Ipi { core, kind } => {
                let core = CoreId(core);
                self.sc
                    .trace
                    .record(self.sc.engine.now(), TraceEvent::Ipi { core: core.0, kind });
                let node = self.sc.node_of_core(core);
                self.sc
                    .tel
                    .count(self.sc.tel.ids.ipis, Slot::Core(core.0), 1);
                self.sc.tel.tp(
                    self.sc.engine.now(),
                    node.0,
                    core.0,
                    TpKind::Ipi,
                    "ipi",
                    u64::from(kind),
                    0,
                );
                // The IPI itself is a zero-cycle span; the stretch below
                // accounts the IPI_OVERHEAD cycles, avoiding double
                // counting in the Sched domain.
                self.sc
                    .prof
                    .span(Domain::Sched, self.sc.engine.now(), node.0, "ipi", 0);
                // The interrupted thread pays the IPI entry/exit cost.
                self.sc
                    .stretch_running(core, IPI_OVERHEAD, u64::from(kind) | 0x1000);
                self.kernel.on_ipi(&mut self.sc, core, kind);
            }
            EvKind::Fault { core, kind } => {
                self.raise_fault(CoreId(core), kind);
            }
            EvKind::CollDone { tid, coll: _ } => {
                let node = self.sc.threads[Tid(tid).idx()].node.0;
                self.sc.prof.span(
                    Domain::Collective,
                    self.sc.engine.now(),
                    node,
                    "coll_done",
                    0,
                );
                self.sc.defer_unblock(Tid(tid), Some(SysRet::Val(0)));
            }
            EvKind::Ras { idx } => self.on_ras_fault(idx),
        }
    }

    /// A hardware fault (parity machine check) hits a core: record it
    /// and hand the kernel its fault path. Reached from direct
    /// `inject_fault` events and from scheduled `MachineCheck` RAS
    /// faults.
    fn raise_fault(&mut self, core: CoreId, kind: u32) {
        self.sc.stats.faults += 1;
        self.sc.trace.record(
            self.sc.engine.now(),
            TraceEvent::Fault { core: core.0, kind },
        );
        let node = self.sc.node_of_core(core);
        self.sc
            .tel
            .count(self.sc.tel.ids.hw_faults, Slot::Core(core.0), 1);
        self.sc.tel.tp(
            self.sc.engine.now(),
            node.0,
            core.0,
            TpKind::HwFault,
            "parity",
            u64::from(kind),
            0,
        );
        self.sc.prof.span(
            Domain::FaultRas,
            self.sc.engine.now(),
            node.0,
            "hw_fault",
            0,
        );
        self.kernel.on_fault(&mut self.sc, core, kind);
    }

    /// A scheduled RAS fault fires: apply the hardware-level effects
    /// here (network outages, in-flight mangling, parity injection),
    /// then hand the kernel its RAS policy hook.
    fn on_ras_fault(&mut self, idx: u32) {
        let ev = self.fault_events[idx as usize];
        let node = NodeId(ev.node);
        let core0 = self.sc.core_of(node, 0);
        self.sc.trace.record(
            self.sc.engine.now(),
            TraceEvent::Fault {
                core: core0.0,
                kind: ev.kind.code(),
            },
        );
        self.sc
            .tel
            .count(self.sc.tel.ids.ras_events, Slot::Node(node.0), 1);
        self.sc.tel.tp(
            self.sc.engine.now(),
            node.0,
            core0.0,
            TpKind::HwFault,
            ev.kind.name(),
            u64::from(ev.kind.code()),
            ev.arg,
        );
        self.sc.prof.span(
            Domain::FaultRas,
            self.sc.engine.now(),
            node.0,
            ev.kind.name(),
            0,
        );
        match ev.kind {
            FaultKind::TorusDrop => {
                self.sc.fault_link_outage(node, NetDomain::Torus, ev.arg);
            }
            FaultKind::TorusCorrupt => {
                self.sc.fault_corrupt_inflight(node, NetDomain::Torus);
            }
            FaultKind::CollDrop => {
                self.sc
                    .fault_link_outage(node, NetDomain::Collective, ev.arg);
            }
            FaultKind::CollDelay => {
                self.sc
                    .fault_delay_inflight(node, NetDomain::Collective, ev.arg);
            }
            FaultKind::CollCorrupt => {
                self.sc.fault_corrupt_inflight(node, NetDomain::Collective);
            }
            // Kernel-policy faults: the machine only reports them; the
            // kernel's `on_ras` below does the work.
            FaultKind::CiodShortWrite | FaultKind::GuardStorm => {}
            FaultKind::MachineCheck => {
                let local = (ev.arg as u32).min(self.sc.cores_per_node() - 1);
                let core = self.sc.core_of(node, local);
                self.raise_fault(core, crate::machine::FAULT_PARITY);
            }
        }
        self.kernel.on_ras(&mut self.sc, node, &ev);
    }

    fn on_op_done(&mut self, tid: Tid, gen: u32) {
        let t = &mut self.sc.threads[tid.idx()];
        let ThreadState::Running {
            gen: cur,
            until,
            started,
        } = t.state
        else {
            // Stale (thread blocked/killed since). Cancellation should
            // have swallowed these; count the backstop hits.
            let core = t.core;
            self.sc
                .tel
                .count(self.sc.tel.ids.stale_opdone, Slot::Core(core.0), 1);
            return;
        };
        if cur != gen {
            // Stale (stretched or preempted since) — same backstop.
            let core = t.core;
            self.sc
                .tel
                .count(self.sc.tel.ids.stale_opdone, Slot::Core(core.0), 1);
            return;
        }
        t.stats.busy_cycles += until.saturating_sub(started);
        t.state = ThreadState::Ready;
        t.pending_done = None; // this event was the pending completion
        self.sc
            .trace
            .record(self.sc.engine.now(), TraceEvent::OpEnd { tid: tid.0 });
        let node = self.sc.threads[tid.idx()].node.0;
        self.sc.prof.span(
            Domain::EngineHeap,
            self.sc.engine.now(),
            node,
            "op_retire",
            until.saturating_sub(started),
        );
        // Non-preemptive continuation: the same thread keeps its core and
        // fetches its next op immediately (CNK semantics; FWK timeslice
        // switches happen via kernel events).
        self.advance_thread(tid);
    }

    // ---- deferral queues ---------------------------------------------------

    /// Drain the deferral queues; returns true if anything happened
    /// (used by the livelock guard as a progress signal).
    fn drain(&mut self) -> bool {
        let mut did = false;
        loop {
            if let Some((proc, code)) = pop_front_vec(&mut self.sc.kill_q) {
                self.kill_proc(proc, code);
                did = true;
                continue;
            }
            if let Some((tid, ret)) = pop_front_vec(&mut self.sc.unblock_q) {
                self.handle_unblock(tid, ret);
                did = true;
                continue;
            }
            if let Some(tid) = pop_front_vec(&mut self.sc.dispatch_q) {
                self.advance_thread(tid);
                did = true;
                continue;
            }
            break;
        }
        did
    }

    fn handle_unblock(&mut self, tid: Tid, ret: Option<SysRet>) {
        let t = &mut self.sc.threads[tid.idx()];
        if !t.state.is_live() {
            return;
        }
        if let Some(r) = ret {
            t.pending_ret = Some(r);
        }
        if t.state.is_blocked() {
            t.state = ThreadState::Ready;
        }
        self.kernel.on_unblock(&mut self.sc, tid);
    }

    fn kill_proc(&mut self, proc: ProcId, code: i32) {
        let tids: Vec<Tid> = self.sc.threads_of(proc).to_vec();
        let mut freed_cores = Vec::new();
        for tid in tids {
            let core = self.sc.threads[tid.idx()].core;
            let t = &mut self.sc.threads[tid.idx()];
            if !t.state.is_live() {
                continue;
            }
            t.next_gen(); // invalidate in-flight completions
            let pd = t.pending_done.take();
            t.state = ThreadState::Exited;
            t.exit_code = Some(code);
            self.sc.live_count -= 1;
            self.cancel_pending_done(pd, core);
            if self.sc.running[core.idx()] == Some(tid) {
                self.sc.running[core.idx()] = None;
                freed_cores.push(core);
            }
            self.sc
                .trace
                .record(self.sc.engine.now(), TraceEvent::ThreadExit { tid: tid.0 });
            self.tp_thread_exit(tid, code);
            self.kernel.on_exit(&mut self.sc, tid);
        }
        for core in freed_cores {
            self.refill_core(core);
        }
    }

    fn exit_thread(&mut self, tid: Tid, code: i32) {
        let core = self.sc.threads[tid.idx()].core;
        {
            let t = &mut self.sc.threads[tid.idx()];
            t.next_gen();
            let pd = t.pending_done.take();
            let was_live = t.state.is_live();
            t.state = ThreadState::Exited;
            t.exit_code = Some(code);
            if was_live {
                self.sc.live_count -= 1;
            }
            self.cancel_pending_done(pd, core);
        }
        if self.sc.running[core.idx()] == Some(tid) {
            self.sc.running[core.idx()] = None;
        }
        self.sc
            .trace
            .record(self.sc.engine.now(), TraceEvent::ThreadExit { tid: tid.0 });
        self.tp_thread_exit(tid, code);
        self.kernel.on_exit(&mut self.sc, tid);
        self.refill_core(core);
    }

    /// Cancel a thread's in-flight `OpDone` (kill/exit paths), counting
    /// the cancellation against the core's node.
    fn cancel_pending_done(&mut self, pd: Option<crate::engine::EvHandle>, core: CoreId) {
        if let Some(h) = pd {
            if self.sc.engine.cancel(h) {
                let node = self.sc.node_of_core(core);
                self.sc
                    .tel
                    .count(self.sc.tel.ids.evq_cancelled, Slot::Node(node.0), 1);
            }
        }
    }

    fn tp_thread_exit(&mut self, tid: Tid, code: i32) {
        if self.sc.tel.enabled() {
            let t = &self.sc.threads[tid.idx()];
            let (node, core) = (t.node, t.core);
            self.sc.tel.tp(
                self.sc.engine.now(),
                node.0,
                core.0,
                TpKind::ThreadExit,
                "exit",
                tid.0 as u64,
                code as u64,
            );
        }
    }

    fn refill_core(&mut self, core: CoreId) {
        if !self.sc.core_idle(core) {
            return;
        }
        if let Some(next) = self.kernel.pick_next(&mut self.sc, core) {
            if self.sc.core_idle(core) {
                self.sc
                    .tel
                    .count(self.sc.tel.ids.sched_picks, Slot::Core(core.0), 1);
                let node = self.sc.node_of_core(core);
                self.sc.tel.tp(
                    self.sc.engine.now(),
                    node.0,
                    core.0,
                    TpKind::SchedPick,
                    "pick_next",
                    next.0 as u64,
                    0,
                );
                self.sc
                    .prof
                    .span(Domain::Sched, self.sc.engine.now(), node.0, "sched_pick", 0);
                self.sc.dispatch(next);
            }
        }
    }

    // ---- op dispatch --------------------------------------------------------

    /// Fetch and start the next op of `tid`. Zero-cost ops complete
    /// inline (same cycle); timed ops schedule an `OpDone`.
    fn advance_thread(&mut self, tid: Tid) {
        loop {
            // One borrow covers the liveness gate, the preemption-resume
            // check, and the workload handoff (the `Option` dance frees
            // the thread slot so `WlEnv` can borrow all of `sc`).
            let mut wl = {
                let t = &mut self.sc.threads[tid.idx()];
                if !t.state.is_live() {
                    return;
                }
                debug_assert_eq!(
                    self.sc.running[t.core.idx()],
                    Some(tid),
                    "advance_thread without core ownership"
                );
                // Resume a preempted compute op without consulting the
                // workload.
                if let Some(rem) = t.resume_cycles.take() {
                    self.start_run(tid, rem, true);
                    return;
                }
                t.workload.take().expect("live thread without workload")
            };
            let op = {
                let mut env = WlEnv {
                    sc: &mut self.sc,
                    kernel: &mut *self.kernel,
                    tid,
                };
                wl.next(&mut env)
            };
            let t = &mut self.sc.threads[tid.idx()];
            t.workload = Some(wl);
            t.stats.ops += 1;
            match self.dispatch_op(tid, op) {
                Disp::Continue => continue,
                Disp::Scheduled | Disp::Released => return,
            }
        }
    }

    fn dispatch_op(&mut self, tid: Tid, op: Op) -> Disp {
        // The streaming flag covers exactly the duration of a Stream op.
        // Conditional store: the flag only ever flips around Stream ops,
        // so the hot compute loop reads and leaves it alone.
        let core = self.sc.threads[tid.idx()].core;
        let is_stream = matches!(op, Op::Stream { .. });
        if self.sc.streaming[core.idx()] != is_stream {
            self.sc.streaming[core.idx()] = is_stream;
        }
        match op {
            // Exactly the `Op::is_compute` classes (the compiler keeps
            // this list exhaustive; the predicate keeps it honest for
            // external callers).
            Op::Compute { .. } | Op::Daxpy { .. } | Op::Stream { .. } | Op::Flops { .. } => {
                debug_assert!(op.is_compute());
                let cost = self.kernel.compute_cost(&mut self.sc, tid, &op);
                self.trace_start(tid, op.name(), cost);
                self.start_run(tid, cost, true);
                Disp::Scheduled
            }
            Op::MemTouch {
                vaddr,
                bytes,
                write,
            } => {
                let r = self
                    .kernel
                    .mem_touch(&mut self.sc, tid, vaddr, bytes, write);
                self.trace_start(tid, "memtouch", r.cost);
                if r.cost == 0 {
                    Disp::Continue
                } else {
                    self.start_run(tid, r.cost, false);
                    Disp::Scheduled
                }
            }
            Op::Syscall(req) => self.dispatch_syscall(tid, &req),
            Op::Yield => self.dispatch_syscall(tid, &SysReq::SchedYield),
            Op::Spawn {
                args,
                child,
                core_hint,
            } => {
                let (ret, cost) = self
                    .kernel
                    .spawn(&mut self.sc, tid, &args, core_hint, child);
                self.trace_start(tid, "spawn", cost);
                self.sc.threads[tid.idx()].pending_ret = Some(ret);
                if cost == 0 {
                    Disp::Continue
                } else {
                    self.start_run(tid, cost, false);
                    Disp::Scheduled
                }
            }
            Op::Comm(cop) => {
                let rank = match self.sc.threads[tid.idx()].rank {
                    Some(r) => r,
                    None => {
                        // Communication from a thread with no rank is a
                        // program error; fail the op.
                        self.sc.threads[tid.idx()].pending_ret =
                            Some(SysRet::Err(sysabi::Errno::EINVAL));
                        return Disp::Continue;
                    }
                };
                let caps = self.kernel.comm_caps(&self.sc, tid);
                let opname = cop.name();
                let action = self.comm.issue(&mut self.sc, &caps, tid, rank, &cop);
                match action {
                    CommAction::RunFor { cycles } => {
                        self.trace_start(tid, opname, cycles);
                        if cycles == 0 {
                            Disp::Continue
                        } else {
                            self.start_run(tid, cycles, false);
                            Disp::Scheduled
                        }
                    }
                    CommAction::Block { kind } => {
                        self.block_thread(tid, kind);
                        Disp::Released
                    }
                }
            }
            Op::End => {
                self.exit_thread(tid, 0);
                Disp::Released
            }
        }
    }

    fn dispatch_syscall(&mut self, tid: Tid, req: &SysReq) -> Disp {
        self.sc.threads[tid.idx()].stats.syscalls += 1;
        self.sc.trace.record(
            self.sc.engine.now(),
            TraceEvent::SyscallEnter {
                tid: tid.0,
                name: req.name(),
            },
        );
        let (node, core) = {
            let t = &self.sc.threads[tid.idx()];
            (t.node, t.core)
        };
        self.sc
            .tel
            .count(self.sc.tel.ids.syscalls, Slot::Core(core.0), 1);
        self.sc.tel.tp(
            self.sc.engine.now(),
            node.0,
            core.0,
            TpKind::SyscallEnter,
            req.name(),
            tid.0 as u64,
            0,
        );
        let action = self.kernel.syscall(&mut self.sc, tid, req);
        match action {
            SyscallAction::Done { ret, cost } => {
                let ok = !ret.is_err();
                self.sc.trace.record(
                    self.sc.engine.now(),
                    TraceEvent::SyscallExit { tid: tid.0, ok },
                );
                self.sc
                    .tel
                    .hist(self.sc.tel.ids.syscall_cycles, Slot::Core(core.0), cost);
                self.sc.tel.tp(
                    self.sc.engine.now(),
                    node.0,
                    core.0,
                    TpKind::SyscallExit,
                    req.name(),
                    tid.0 as u64,
                    cost,
                );
                self.sc
                    .prof
                    .span(Domain::Sched, self.sc.engine.now(), node.0, "syscall", cost);
                self.sc.threads[tid.idx()].pending_ret = Some(ret);
                if cost == 0 {
                    Disp::Continue
                } else {
                    self.start_run(tid, cost, false);
                    Disp::Scheduled
                }
            }
            SyscallAction::Block { kind } => {
                self.block_thread(tid, kind);
                Disp::Released
            }
            SyscallAction::YieldCpu => {
                let core = self.sc.threads[tid.idx()].core;
                self.sc.threads[tid.idx()].state = ThreadState::Ready;
                self.sc.running[core.idx()] = None;
                self.refill_core(core);
                Disp::Released
            }
            SyscallAction::ExitThread { code } => {
                self.exit_thread(tid, code);
                Disp::Released
            }
            SyscallAction::ExitProc { code } => {
                let proc = self.sc.threads[tid.idx()].proc;
                self.sc.defer_kill(proc, code);
                Disp::Released
            }
        }
    }

    fn block_thread(&mut self, tid: Tid, kind: crate::machine::BlockKind) {
        let core = self.sc.threads[tid.idx()].core;
        let t = &mut self.sc.threads[tid.idx()];
        t.state = ThreadState::Blocked(kind);
        t.stats.blocks += 1;
        self.sc.running[core.idx()] = None;
        self.refill_core(core);
    }

    fn start_run(&mut self, tid: Tid, cost: u64, preemptible: bool) {
        let now = self.sc.engine.now();
        let t = &mut self.sc.threads[tid.idx()];
        let gen = t.next_gen();
        let node = t.node;
        t.preemptible = preemptible;
        t.state = ThreadState::Running {
            gen,
            until: now + cost,
            started: now,
        };
        if self.fast_active && self.sc.engine.pending() == 0 && self.sc.vtimers.is_empty() {
            // Virtual insert: the completion joins the micro run queue
            // instead of the heap, carrying the sequence number the heap
            // would have assigned — so if it is ever flushed back
            // (`flush_fast`), it sorts exactly where the baseline put it.
            let seq = self.sc.engine.alloc_seq();
            self.sc.threads[tid.idx()].pending_done = None;
            self.fast.push(FastSlot {
                until: now + cost,
                seq,
                tid,
                gen,
                node: node.0,
            });
        } else {
            let h =
                self.sc
                    .engine
                    .schedule_dom(node.0, now + cost, EvKind::OpDone { tid: tid.0, gen });
            self.sc.threads[tid.idx()].pending_done = Some(h);
        }
    }

    fn trace_start(&mut self, tid: Tid, opname: &'static str, cost: u64) {
        self.sc.trace.record(
            self.sc.engine.now(),
            TraceEvent::OpStart {
                tid: tid.0,
                opname,
                cost,
            },
        );
        if self.sc.tel.enabled() {
            let t = &self.sc.threads[tid.idx()];
            let (node, core) = (t.node, t.core);
            self.sc.tel.tp(
                self.sc.engine.now(),
                node.0,
                core.0,
                TpKind::OpStart,
                opname,
                tid.0 as u64,
                cost,
            );
        }
    }

    /// Borrow a thread's workload for result extraction after a run.
    pub fn workload_of(&self, tid: Tid) -> Option<&dyn crate::machine::Workload> {
        self.sc.threads[tid.idx()].workload.as_deref()
    }

    /// Deliver a signal to a thread at its next op boundary (test and
    /// fault-injection hook; kernels use `sc.post_signal` directly).
    pub fn post_signal(&mut self, tid: Tid, sig: Sig) {
        self.sc.post_signal(tid, sig);
    }
}

fn pop_front_vec<T>(v: &mut Vec<T>) -> Option<T> {
    if v.is_empty() {
        None
    } else {
        Some(v.remove(0))
    }
}

// A VecDeque would avoid the O(n) remove, but the queues hold a handful
// of entries; keeping them as Vec preserves FIFO order with less code.
#[allow(dead_code)]
type QueueNote = VecDeque<()>;
