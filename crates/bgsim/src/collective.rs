//! The collective (tree) network.
//!
//! BG/P's tree network connects compute nodes to their I/O node and
//! supports hardware reductions/broadcasts. CNK uses it for function-
//! shipped I/O (§IV.A, Fig. 2) and the messaging stack uses it for
//! small-communicator collectives. We model a binary tree over the pset
//! (the compute nodes sharing one I/O node) with per-stage latency and a
//! shared bandwidth.

use crate::config::MachineConfig;
use crate::cycles::{self, Cycle};
use sysabi::NodeId;

/// Collective-network link packets carry up to 256 bytes of payload
/// (the tree network's fixed packet size on BG/P).
pub const PACKET_PAYLOAD: u64 = 256;

/// Number of tree-network packets a `bytes` message occupies (at least
/// 1; header-only for empty messages). The timing model streams the
/// whole message through the tree as one leg — this accessor exists so
/// the batching instrumentation can report how many per-packet events
/// that single completion event replaces.
pub fn packets(bytes: u64) -> u64 {
    bytes.div_ceil(PACKET_PAYLOAD).max(1)
}

/// Timing model of the collective network for one partition.
#[derive(Clone, Debug)]
pub struct CollectiveNet {
    stage_cycles: Cycle,
    bytes_per_cycle: f64,
    io_ratio: u32,
    nodes: u32,
}

impl CollectiveNet {
    pub fn new(cfg: &MachineConfig) -> CollectiveNet {
        CollectiveNet {
            stage_cycles: cycles::ns_to_cycles(cfg.collective_stage_ns),
            bytes_per_cycle: cycles::mbs_to_bytes_per_cycle(cfg.collective_mbs),
            io_ratio: cfg.io_ratio,
            nodes: cfg.nodes,
        }
    }

    /// Which I/O node serves compute node `n` (psets are contiguous).
    pub fn io_node_of(&self, n: NodeId) -> u32 {
        n.0 / self.io_ratio
    }

    /// Number of compute nodes in the pset of compute node `n`.
    pub fn pset_size(&self, n: NodeId) -> u32 {
        let first = (n.0 / self.io_ratio) * self.io_ratio;
        (self.nodes - first).min(self.io_ratio)
    }

    /// Tree depth from a compute node to its I/O node.
    fn depth(&self, n: NodeId) -> u32 {
        let p = self.pset_size(n).max(2);
        32 - (p - 1).leading_zeros()
    }

    /// Cycles for a `bytes` message from compute node `n` up to its I/O
    /// node (or back down).
    ///
    /// Batched form: one completion per leg, with every packet's
    /// streaming folded into the closed-form transfer term. Licensed by
    /// [`CollectiveNet::cn_ion_cycles_per_packet`] computing the same
    /// value packet by packet.
    pub fn cn_ion_cycles(&self, n: NodeId, bytes: u64) -> Cycle {
        let stages = self.depth(n).max(1) as u64;
        stages * self.stage_cycles + cycles::transfer_cycles(bytes, self.bytes_per_cycle)
    }

    /// Unbatched reference: walk the message packet by packet as a
    /// per-packet engine would and stream the accumulated payload
    /// through the tree pipeline. Packets of one leg stream back to back
    /// on the same tree path, so the per-stage latency is paid once and
    /// the payloads serialize behind a single bytes→cycles ceiling —
    /// exactly [`CollectiveNet::cn_ion_cycles`].
    pub fn cn_ion_cycles_per_packet(&self, n: NodeId, bytes: u64) -> Cycle {
        let stages = self.depth(n).max(1) as u64;
        let mut streamed = 0u64;
        let mut left = bytes;
        loop {
            let payload = left.min(PACKET_PAYLOAD);
            streamed += payload;
            left -= payload;
            if left == 0 {
                break;
            }
        }
        stages * self.stage_cycles + cycles::transfer_cycles(streamed, self.bytes_per_cycle)
    }

    /// Cycles for a hardware tree reduction/broadcast of `bytes` over the
    /// whole partition (used by small-message MPI_Allreduce on BG/P).
    pub fn reduce_cycles(&self, participants: u32, bytes: u64) -> Cycle {
        let p = participants.max(2);
        let depth = (32 - (p - 1).leading_zeros()) as u64;
        // Up-sweep + down-sweep through the tree, payload streamed once
        // each way.
        2 * depth * self.stage_cycles + 2 * cycles::transfer_cycles(bytes, self.bytes_per_cycle)
    }

    pub fn bytes_per_cycle(&self) -> f64 {
        self.bytes_per_cycle
    }

    /// Minimum latency of any collective-network traversal: one tree
    /// stage. Every CN message (function-ship traffic, reductions,
    /// broadcasts) crosses at least one stage, so no cross-node
    /// `NetDeliver`/`CollDone` routed through the CN can undercut this —
    /// the CN's contribution to the conservative-parallel lookahead
    /// window (`MachineConfig::min_link_cycles`).
    pub fn min_latency_cycles(&self) -> Cycle {
        self.stage_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(nodes: u32, ratio: u32) -> CollectiveNet {
        let mut cfg = MachineConfig::nodes(nodes);
        cfg.io_ratio = ratio;
        CollectiveNet::new(&cfg)
    }

    #[test]
    fn pset_assignment() {
        let n = net(64, 16);
        assert_eq!(n.io_node_of(NodeId(0)), 0);
        assert_eq!(n.io_node_of(NodeId(15)), 0);
        assert_eq!(n.io_node_of(NodeId(16)), 1);
        assert_eq!(n.io_node_of(NodeId(63)), 3);
        assert_eq!(n.pset_size(NodeId(0)), 16);
    }

    #[test]
    fn ragged_last_pset() {
        let n = net(20, 16);
        assert_eq!(n.pset_size(NodeId(0)), 16);
        assert_eq!(n.pset_size(NodeId(19)), 4);
    }

    #[test]
    fn latency_grows_with_pset_and_bytes() {
        let small = net(4, 4);
        let large = net(64, 64);
        assert!(small.cn_ion_cycles(NodeId(0), 0) < large.cn_ion_cycles(NodeId(0), 0));
        let n = net(16, 16);
        assert!(n.cn_ion_cycles(NodeId(0), 0) < n.cn_ion_cycles(NodeId(0), 1 << 20));
    }

    #[test]
    fn reduce_scales_logarithmically() {
        let n = net(64, 16);
        let r2 = n.reduce_cycles(2, 8);
        let r64 = n.reduce_cycles(64, 8);
        // log2(64)=6 vs log2(2)=1: at most 6x the stage cost apart.
        assert!(r64 > r2);
        assert!(r64 < r2 * 8);
    }

    #[test]
    fn per_packet_reference_matches_batched_model() {
        let n = net(64, 16);
        for bytes in [0u64, 1, 255, 256, 257, 4096, 65_536, 1 << 20] {
            assert_eq!(
                n.cn_ion_cycles(NodeId(3), bytes),
                n.cn_ion_cycles_per_packet(NodeId(3), bytes),
                "bytes={bytes}"
            );
        }
        assert_eq!(packets(0), 1);
        assert_eq!(packets(256), 1);
        assert_eq!(packets(257), 2);
    }

    #[test]
    fn small_allreduce_is_microseconds() {
        // The tree allreduce of one double over 16 nodes should be a few
        // microseconds — the scale of the paper's mpiBench_Allreduce.
        let n = net(16, 16);
        let us = crate::cycles::cycles_to_us(n.reduce_cycles(16, 8));
        assert!(us > 0.1 && us < 20.0, "allreduce {us} us");
    }
}
