//! Deterministic RAS fault injection (§V.B).
//!
//! Blue Gene treated survival as a first-class kernel feature: RAS
//! events are reported and handled, the CIOD link can flap without
//! taking the job down, and — crucially for bringup — everything stays
//! reproducible. This module makes the *faults themselves*
//! deterministic: a [`FaultSchedule`] pins every injected fault to an
//! exact cycle and node, so a fault run is bit-reproducible and
//! invariant under the windowed driver and host-thread sharding, the
//! same way ordinary runs are.
//!
//! Faults become engine events in the target node's domain at boot.
//! An **empty schedule schedules zero events**, which is what keeps
//! no-fault runs digest-identical to a build without this module at
//! all (any foreign pending event would also veto the event-reduction
//! fast path).
//!
//! Fault semantics (who recovers, and how):
//!
//! - **Torus** faults model link-level CRC errors. The torus hardware
//!   retransmits, so a drop or corruption never loses a message at the
//!   messaging layer — it shows up as delivery delay plus
//!   `torus.dropped_pkts`. Applications cannot deadlock on them.
//! - **Collective** (CIOD) faults are real losses: the tree wire
//!   protocol is validated in software, so drops, corruptions, and
//!   short writes are recovered by the compute-node kernel's
//!   retry/backoff machinery (or surface as a clean `EIO`).
//! - **Machine checks** take the existing parity path: the kernel
//!   signals the application, and the default disposition terminates
//!   the job cleanly with an exit report.
//! - **Guard storms** are spurious DAC guard violations: survivable
//!   handler time on every core of the node.

use rand::rngs::SmallRng;

use crate::config::MachineConfig;
use crate::cycles::Cycle;
use crate::rng::{uniform_incl, RngHub};

/// What kind of fault fires.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultKind {
    /// Torus link outage at the node for `arg` cycles: in-flight and
    /// newly sent messages touching the node are retransmitted after
    /// the outage (link-level CRC retry; never lost to software).
    TorusDrop,
    /// A torus CRC error: in-flight messages at the node bounce once
    /// (retransmit delay), delivered clean.
    TorusCorrupt,
    /// Collective-tree outage (CIOD flap) for `arg` cycles: in-flight
    /// and newly sent tree messages touching the node are lost.
    CollDrop,
    /// In-flight collective messages at the node are delayed `arg`
    /// cycles (CIOD hiccup).
    CollDelay,
    /// In-flight collective payloads at the node are corrupted; the
    /// receiver's wire validation drops them (then retry recovers).
    CollCorrupt,
    /// In-flight CIOD write requests at the node are truncated: the
    /// application sees a genuine POSIX short write.
    CiodShortWrite,
    /// L1 parity machine check on local core `arg` of the node — the
    /// fatal RAS path (clean job termination).
    MachineCheck,
    /// `arg` spurious DAC guard violations on every core of the node.
    GuardStorm,
}

impl FaultKind {
    pub const ALL: [FaultKind; 8] = [
        FaultKind::TorusDrop,
        FaultKind::TorusCorrupt,
        FaultKind::CollDrop,
        FaultKind::CollDelay,
        FaultKind::CollCorrupt,
        FaultKind::CiodShortWrite,
        FaultKind::MachineCheck,
        FaultKind::GuardStorm,
    ];

    /// Script/name form (`torus-drop`, `machine-check`, ...).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::TorusDrop => "torus-drop",
            FaultKind::TorusCorrupt => "torus-corrupt",
            FaultKind::CollDrop => "coll-drop",
            FaultKind::CollDelay => "coll-delay",
            FaultKind::CollCorrupt => "coll-corrupt",
            FaultKind::CiodShortWrite => "ciod-short-write",
            FaultKind::MachineCheck => "machine-check",
            FaultKind::GuardStorm => "guard-storm",
        }
    }

    pub fn parse(s: &str) -> Option<FaultKind> {
        FaultKind::ALL.iter().copied().find(|k| k.name() == s)
    }

    /// Stable numeric code (folded into the trace digest).
    pub fn code(self) -> u32 {
        0x100
            + match self {
                FaultKind::TorusDrop => 0,
                FaultKind::TorusCorrupt => 1,
                FaultKind::CollDrop => 2,
                FaultKind::CollDelay => 3,
                FaultKind::CollCorrupt => 4,
                FaultKind::CiodShortWrite => 5,
                FaultKind::MachineCheck => 6,
                FaultKind::GuardStorm => 7,
            }
    }
}

/// One scheduled fault: a kind firing at an exact cycle on a node,
/// with a kind-specific argument (outage window, delay, core, count).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultEvent {
    pub at: Cycle,
    pub node: u32,
    pub kind: FaultKind,
    pub arg: u64,
}

/// The full fault plan for a run. Built from a seed
/// ([`FaultSchedule::from_seed`]) or an explicit script
/// ([`FaultSchedule::parse`]); empty by default (and an empty schedule
/// injects nothing — runs are bit-identical to a fault-free build).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    pub events: Vec<FaultEvent>,
}

impl FaultSchedule {
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn push(&mut self, ev: FaultEvent) -> &mut FaultSchedule {
        self.events.push(ev);
        self
    }

    /// Generate a survivable fault mix from `seed`: link outages,
    /// CIOD drops/delays/corruptions/short-writes spread over the
    /// first ~12M cycles, one to two per node. Deliberately excludes
    /// the fatal kinds (machine checks, guard storms) — those are
    /// scripted, so a seeded sweep never turns into a kill sweep.
    /// The RNG stream is derived the same way as every other
    /// deterministic stream in the simulator (master seed + name), so
    /// a (schedule seed, machine seed) pair pins the run exactly.
    pub fn from_seed(cfg: &MachineConfig, seed: u64) -> FaultSchedule {
        let mut rng = RngHub::new(seed).stream("fault-schedule");
        let mut events = Vec::new();
        for node in 0..cfg.nodes {
            let n = uniform_incl(&mut rng, 1, 2);
            for _ in 0..n {
                events.push(Self::draw(&mut rng, node));
            }
        }
        FaultSchedule { events }
    }

    fn draw(rng: &mut SmallRng, node: u32) -> FaultEvent {
        let at = uniform_incl(rng, 200_000, 12_000_000);
        let (kind, arg) = match uniform_incl(rng, 0, 7) {
            0 | 1 => (FaultKind::CollDrop, uniform_incl(rng, 400_000, 1_200_000)),
            2 => (FaultKind::CollDelay, uniform_incl(rng, 200_000, 800_000)),
            3 => (FaultKind::CollCorrupt, 0),
            4 => (FaultKind::CiodShortWrite, 0),
            5 | 6 => (FaultKind::TorusDrop, uniform_incl(rng, 50_000, 200_000)),
            _ => (FaultKind::TorusCorrupt, 0),
        };
        FaultEvent {
            at,
            node,
            kind,
            arg,
        }
    }

    /// Parse a fault script: one `<cycle> <node> <kind> [arg]` per
    /// line, `#` comments and blank lines ignored. Kinds are the
    /// [`FaultKind::name`] forms.
    ///
    /// ```text
    /// # CIOD flap on node 0, two million cycles in, link down 1.5ms
    /// 2000000 0 coll-drop 1275000
    /// 5000000 0 machine-check 2
    /// ```
    pub fn parse(script: &str) -> Result<FaultSchedule, String> {
        let mut events = Vec::new();
        for (lineno, raw) in script.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut f = line.split_whitespace();
            let err = |what: &str| format!("fault script line {}: {what}: {raw:?}", lineno + 1);
            let at: Cycle = f
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("bad cycle"))?;
            let node: u32 = f
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("bad node"))?;
            let kind = f
                .next()
                .and_then(FaultKind::parse)
                .ok_or_else(|| err("unknown fault kind"))?;
            let arg: u64 = match f.next() {
                Some(s) => s.parse().map_err(|_| err("bad arg"))?,
                None => 0,
            };
            if f.next().is_some() {
                return Err(err("trailing fields"));
            }
            events.push(FaultEvent {
                at,
                node,
                kind,
                arg,
            });
        }
        Ok(FaultSchedule { events })
    }

    /// Digest of the schedule: every event's (cycle, node, kind, arg)
    /// folded in order. The `faults` component of a memoization key —
    /// an empty schedule has a stable digest of its own, so fault-free
    /// jobs key consistently.
    pub fn digest(&self) -> u64 {
        let mut h = crate::config::DigestFold::new();
        h.word(self.events.len() as u64);
        for ev in &self.events {
            h.word(ev.at)
                .word(ev.node as u64)
                .word(ev.kind.code() as u64)
                .word(ev.arg);
        }
        h.finish()
    }

    /// The highest node index referenced (for config validation).
    pub fn max_node(&self) -> Option<u32> {
        self.events.iter().map(|e| e.node).max()
    }

    /// Check every referenced node against a machine size, naming the
    /// offending id — the error CLI front ends surface instead of
    /// letting machine construction panic on an out-of-range node.
    pub fn check_nodes(&self, nodes: u32) -> Result<(), String> {
        match self.max_node() {
            Some(m) if m >= nodes => Err(format!(
                "fault schedule names node {m}, but the machine has only {nodes} node(s) (0..={})",
                nodes.saturating_sub(1)
            )),
            _ => Ok(()),
        }
    }
}

/// How a run wants its faults: nothing, a seeded schedule, or an
/// explicit one. This is the value the bench `--fault-seed` /
/// `--fault-script` flags produce; [`FaultSpec::apply`] resolves it
/// against a machine config (seeded generation needs the node count).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum FaultSpec {
    #[default]
    None,
    Seed(u64),
    Explicit(FaultSchedule),
}

impl FaultSpec {
    pub fn is_active(&self) -> bool {
        match self {
            FaultSpec::None => false,
            FaultSpec::Seed(_) => true,
            FaultSpec::Explicit(s) => !s.is_empty(),
        }
    }

    pub fn resolve(&self, cfg: &MachineConfig) -> FaultSchedule {
        match self {
            FaultSpec::None => FaultSchedule::default(),
            FaultSpec::Seed(s) => FaultSchedule::from_seed(cfg, *s),
            FaultSpec::Explicit(s) => s.clone(),
        }
    }

    /// Resolve against `cfg` and install the schedule on it.
    pub fn apply(&self, cfg: MachineConfig) -> MachineConfig {
        let sched = self.resolve(&cfg);
        cfg.with_faults(sched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for k in FaultKind::ALL {
            assert_eq!(FaultKind::parse(k.name()), Some(k));
        }
        assert_eq!(FaultKind::parse("bogus"), None);
    }

    #[test]
    fn schedule_digest_is_order_and_content_sensitive() {
        let mut a = FaultSchedule::default();
        let empty = a.digest();
        assert_eq!(empty, FaultSchedule::default().digest());
        a.push(FaultEvent {
            at: 100,
            node: 0,
            kind: FaultKind::TorusDrop,
            arg: 5,
        });
        assert_ne!(a.digest(), empty);
        let mut b = FaultSchedule::default();
        b.push(FaultEvent {
            at: 100,
            node: 0,
            kind: FaultKind::TorusDrop,
            arg: 6,
        });
        assert_ne!(a.digest(), b.digest());
        // Same events, same digest.
        let mut c = FaultSchedule::default();
        c.push(a.events[0]);
        assert_eq!(a.digest(), c.digest());
    }

    #[test]
    fn script_parses_comments_args_and_defaults() {
        let s = FaultSchedule::parse(
            "# header\n\
             2000000 0 coll-drop 1275000\n\
             \n\
             5000000 1 machine-check 2  # inline comment\n\
             7000000 1 torus-corrupt\n",
        )
        .unwrap();
        assert_eq!(s.events.len(), 3);
        assert_eq!(
            s.events[0],
            FaultEvent {
                at: 2_000_000,
                node: 0,
                kind: FaultKind::CollDrop,
                arg: 1_275_000
            }
        );
        assert_eq!(s.events[1].kind, FaultKind::MachineCheck);
        assert_eq!(s.events[1].arg, 2);
        assert_eq!(s.events[2].arg, 0);
        assert_eq!(s.max_node(), Some(1));
    }

    #[test]
    fn check_nodes_names_the_offender() {
        let s = FaultSchedule::parse("10 7 coll-drop 5").unwrap();
        assert!(s.check_nodes(8).is_ok());
        let e = s.check_nodes(4).unwrap_err();
        assert!(e.contains("node 7"), "{e}");
        assert!(e.contains("4 node(s)"), "{e}");
        assert!(FaultSchedule::default().check_nodes(1).is_ok());
    }

    #[test]
    fn script_errors_name_the_line() {
        let e = FaultSchedule::parse("10 0 coll-drop\nxx 0 coll-drop").unwrap_err();
        assert!(e.contains("line 2"), "{e}");
        let e = FaultSchedule::parse("10 0 warp-core-breach").unwrap_err();
        assert!(e.contains("unknown fault kind"), "{e}");
        let e = FaultSchedule::parse("10 0 coll-drop 5 extra").unwrap_err();
        assert!(e.contains("trailing"), "{e}");
    }

    #[test]
    fn seeded_schedule_is_deterministic_and_survivable() {
        let cfg = MachineConfig::nodes(8);
        let a = FaultSchedule::from_seed(&cfg, 42);
        let b = FaultSchedule::from_seed(&cfg, 42);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert_ne!(a, FaultSchedule::from_seed(&cfg, 43));
        for ev in &a.events {
            assert!(ev.node < 8);
            assert!(
                !matches!(ev.kind, FaultKind::MachineCheck | FaultKind::GuardStorm),
                "seeded schedules must stay survivable: {ev:?}"
            );
        }
    }

    #[test]
    fn spec_resolution() {
        let cfg = MachineConfig::nodes(2);
        assert!(!FaultSpec::None.is_active());
        assert!(FaultSpec::None.resolve(&cfg).is_empty());
        assert!(FaultSpec::Seed(1).is_active());
        assert_eq!(
            FaultSpec::Seed(1).resolve(&cfg),
            FaultSchedule::from_seed(&cfg, 1)
        );
        let explicit = FaultSchedule::parse("5 1 guard-storm 3").unwrap();
        let spec = FaultSpec::Explicit(explicit.clone());
        assert!(spec.is_active());
        assert_eq!(spec.apply(cfg).faults, explicit);
        assert!(!FaultSpec::Explicit(FaultSchedule::default()).is_active());
    }
}
