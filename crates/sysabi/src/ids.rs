//! Typed identifiers for nodes, cores, processes, threads, and MPI ranks.
//!
//! All identifiers are small newtype wrappers so that the simulator cannot
//! accidentally index a thread table with a node id. Conversions to `usize`
//! are explicit via `.idx()`.

use std::fmt;

/// A compute or I/O node in the simulated machine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A hardware core, identified globally as `node * cores_per_node + local`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CoreId(pub u32);

impl CoreId {
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }

    /// Global core id for `local` core of `node` on a machine with
    /// `cores_per_node` cores per node.
    #[inline]
    pub fn global(node: NodeId, local: u32, cores_per_node: u32) -> CoreId {
        CoreId(node.0 * cores_per_node + local)
    }

    /// The node this core belongs to.
    #[inline]
    pub fn node(self, cores_per_node: u32) -> NodeId {
        NodeId(self.0 / cores_per_node)
    }

    /// The core index within its node.
    #[inline]
    pub fn local(self, cores_per_node: u32) -> u32 {
        self.0 % cores_per_node
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A process (an MPI task). Unique across the machine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcId(pub u32);

impl ProcId {
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A software thread (pthread). Unique across the machine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Tid(pub u32);

impl Tid {
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Tid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// An MPI rank within a job. On our machine rank == ProcId for the single
/// running job, but the types are kept distinct because messaging layers
/// address ranks while kernels address processes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Rank(pub u32);

impl Rank {
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_global_roundtrip() {
        let cpn = 4;
        for node in 0..8u32 {
            for local in 0..cpn {
                let c = CoreId::global(NodeId(node), local, cpn);
                assert_eq!(c.node(cpn), NodeId(node));
                assert_eq!(c.local(cpn), local);
            }
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(CoreId(5).to_string(), "c5");
        assert_eq!(ProcId(1).to_string(), "p1");
        assert_eq!(Tid(9).to_string(), "t9");
        assert_eq!(Rank(2).to_string(), "r2");
    }
}
