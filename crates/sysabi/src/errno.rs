//! Linux-compatible error numbers.
//!
//! The function-ship design (paper §IV.A) requires that "the calls produce
//! the same result codes" as Linux: the ioproxy executes the real call on
//! the I/O node and the errno travels back to the compute node verbatim.
//! We therefore use the real Linux numeric values so marshaled results are
//! bit-compatible with what a PowerPC Linux ioproxy would return.

use std::fmt;

/// A subset of Linux errno values sufficient for the CNK syscall surface.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(i32)]
pub enum Errno {
    /// Operation not permitted.
    EPERM = 1,
    /// No such file or directory.
    ENOENT = 2,
    /// No such process.
    ESRCH = 3,
    /// Interrupted system call.
    EINTR = 4,
    /// I/O error.
    EIO = 5,
    /// Bad file descriptor.
    EBADF = 9,
    /// Try again (also EWOULDBLOCK).
    EAGAIN = 11,
    /// Out of memory.
    ENOMEM = 12,
    /// Permission denied.
    EACCES = 13,
    /// Bad address.
    EFAULT = 14,
    /// Device or resource busy.
    EBUSY = 16,
    /// File exists.
    EEXIST = 17,
    /// No such device.
    ENODEV = 19,
    /// Not a directory.
    ENOTDIR = 20,
    /// Is a directory.
    EISDIR = 21,
    /// Invalid argument.
    EINVAL = 22,
    /// Too many open files.
    EMFILE = 24,
    /// No space left on device.
    ENOSPC = 28,
    /// Illegal seek.
    ESPIPE = 29,
    /// Directory not empty.
    ENOTEMPTY = 39,
    /// Function not implemented. CNK returns this for fork/exec (§VII.B).
    ENOSYS = 38,
}

impl Errno {
    /// The Linux numeric value (positive).
    #[inline]
    pub fn code(self) -> i32 {
        self as i32
    }

    /// The value a syscall returns in the Linux convention (`-errno`).
    #[inline]
    pub fn as_ret(self) -> i64 {
        -(self as i32) as i64
    }

    /// Reconstruct from a positive Linux code (used when demarshaling
    /// function-ship replies).
    pub fn from_code(code: i32) -> Option<Errno> {
        use Errno::*;
        Some(match code {
            1 => EPERM,
            2 => ENOENT,
            3 => ESRCH,
            4 => EINTR,
            5 => EIO,
            9 => EBADF,
            11 => EAGAIN,
            12 => ENOMEM,
            13 => EACCES,
            14 => EFAULT,
            16 => EBUSY,
            17 => EEXIST,
            19 => ENODEV,
            20 => ENOTDIR,
            21 => EISDIR,
            22 => EINVAL,
            24 => EMFILE,
            28 => ENOSPC,
            29 => ESPIPE,
            38 => ENOSYS,
            39 => ENOTEMPTY,
            _ => return None,
        })
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: &[Errno] = &[
        Errno::EPERM,
        Errno::ENOENT,
        Errno::ESRCH,
        Errno::EINTR,
        Errno::EIO,
        Errno::EBADF,
        Errno::EAGAIN,
        Errno::ENOMEM,
        Errno::EACCES,
        Errno::EFAULT,
        Errno::EBUSY,
        Errno::EEXIST,
        Errno::ENODEV,
        Errno::ENOTDIR,
        Errno::EISDIR,
        Errno::EINVAL,
        Errno::EMFILE,
        Errno::ENOSPC,
        Errno::ESPIPE,
        Errno::ENOTEMPTY,
        Errno::ENOSYS,
    ];

    #[test]
    fn code_roundtrip() {
        for &e in ALL {
            assert_eq!(Errno::from_code(e.code()), Some(e));
        }
    }

    #[test]
    fn linux_values_match() {
        assert_eq!(Errno::ENOENT.code(), 2);
        assert_eq!(Errno::EBADF.code(), 9);
        assert_eq!(Errno::ENOSYS.code(), 38);
        assert_eq!(Errno::EINVAL.code(), 22);
    }

    #[test]
    fn ret_convention_is_negative() {
        assert_eq!(Errno::ENOENT.as_ret(), -2);
        assert_eq!(Errno::ENOSYS.as_ret(), -38);
    }

    #[test]
    fn unknown_code_is_none() {
        assert_eq!(Errno::from_code(0), None);
        assert_eq!(Errno::from_code(9999), None);
    }
}
