//! System-call ABI shared across the CNK reproduction workspace.
//!
//! This crate is the lowest layer of the stack: it defines the identifiers,
//! error codes, and system-call request/response types that the kernels
//! (`cnk`, `fwk`), the function-ship protocol (`ciod`), and the workload
//! programs all agree on. It corresponds to the stable glibc ⇔ kernel
//! boundary the paper highlights in Section IV: "the one advantage of
//! drawing the line between glibc and the kernel is that that interface
//! tends to be more stable".
//!
//! Nothing in this crate has timing or behaviour — it is pure vocabulary.

pub mod app;
pub mod errno;
pub mod fs;
pub mod futex;
pub mod ids;
pub mod signal;
pub mod syscall;
pub mod uname;

pub use app::{AppImage, DynLib, JobSpec, NodeMode};
pub use errno::Errno;
pub use fs::{Fd, FileKind, OpenFlags, SeekWhence, StatBuf};
pub use futex::FutexOp;
pub use ids::{CoreId, NodeId, ProcId, Rank, Tid};
pub use signal::{Sig, SigDisposition};
pub use syscall::{CloneFlags, MapFlags, Prot, SysReq, SysRet};
pub use uname::UtsName;
