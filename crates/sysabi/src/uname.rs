//! The `uname` result and the glibc version gate.
//!
//! Paper §IV.B.1: "The glibc library performs a uname system call to
//! determine the kernel capabilities so we set CNK's version field in
//! uname to 2.6.19.2 to indicate to glibc that we have the proper
//! support." The NPTL model in `workloads` refuses to initialize threading
//! if the kernel reports a release older than its minimum, exactly like
//! real glibc.

/// A kernel version triple with an optional patch component.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct KernelVersion {
    pub major: u32,
    pub minor: u32,
    pub patch: u32,
    pub sub: u32,
}

impl KernelVersion {
    pub const fn new(major: u32, minor: u32, patch: u32, sub: u32) -> Self {
        KernelVersion {
            major,
            minor,
            patch,
            sub,
        }
    }

    /// The version CNK advertises (§IV.B.1).
    pub const CNK_ADVERTISED: KernelVersion = KernelVersion::new(2, 6, 19, 2);

    /// The minimum NPTL requires for the clone/futex/TLS feature set.
    pub const NPTL_MINIMUM: KernelVersion = KernelVersion::new(2, 6, 16, 0);

    /// Parse "a.b.c" or "a.b.c.d".
    pub fn parse(s: &str) -> Option<KernelVersion> {
        let mut parts = s.split('.');
        let major = parts.next()?.parse().ok()?;
        let minor = parts.next()?.parse().ok()?;
        let patch = parts.next()?.parse().ok()?;
        let sub = match parts.next() {
            Some(p) => p.parse().ok()?,
            None => 0,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(KernelVersion {
            major,
            minor,
            patch,
            sub,
        })
    }
}

impl std::fmt::Display for KernelVersion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.sub == 0 {
            write!(f, "{}.{}.{}", self.major, self.minor, self.patch)
        } else {
            write!(
                f,
                "{}.{}.{}.{}",
                self.major, self.minor, self.patch, self.sub
            )
        }
    }
}

/// The `uname(2)` result.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UtsName {
    pub sysname: String,
    pub release: KernelVersion,
    pub machine: String,
}

impl UtsName {
    /// What BG/P CNK reports.
    pub fn cnk() -> UtsName {
        UtsName {
            sysname: "CNK".to_string(),
            release: KernelVersion::CNK_ADVERTISED,
            machine: "ppc450".to_string(),
        }
    }

    /// What the SUSE-derived 2.6.16 Linux on BG/P I/O nodes reports
    /// (the kernel used for the paper's Fig. 5 comparison).
    pub fn linux_2_6_16() -> UtsName {
        UtsName {
            sysname: "Linux".to_string(),
            release: KernelVersion::new(2, 6, 16, 0),
            machine: "ppc450".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let v = KernelVersion::parse("2.6.19.2").unwrap();
        assert_eq!(v, KernelVersion::CNK_ADVERTISED);
        assert_eq!(v.to_string(), "2.6.19.2");
        assert_eq!(
            KernelVersion::parse("2.6.16").unwrap().to_string(),
            "2.6.16"
        );
        assert!(KernelVersion::parse("2.6").is_none());
        assert!(KernelVersion::parse("2.6.19.2.1").is_none());
        assert!(KernelVersion::parse("a.b.c").is_none());
    }

    #[test]
    fn cnk_version_satisfies_nptl() {
        assert!(KernelVersion::CNK_ADVERTISED >= KernelVersion::NPTL_MINIMUM);
    }

    #[test]
    fn ordering_is_lexicographic() {
        let old = KernelVersion::new(2, 4, 37, 0);
        let new = KernelVersion::new(2, 6, 0, 0);
        assert!(old < new);
        assert!(KernelVersion::new(2, 6, 19, 2) > KernelVersion::new(2, 6, 19, 0));
    }
}
