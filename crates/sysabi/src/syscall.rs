//! The system-call request/response surface.
//!
//! This is the complete syscall vocabulary of the reproduction. CNK
//! implements the local subset (memory, threads, futex, signals) in the
//! kernel and function-ships everything filesystem-shaped to CIOD
//! (paper §IV.A, §VI.A). The Linux-like FWK baseline implements everything
//! locally. `SysReq`/`SysRet` are deliberately self-contained values — the
//! ciod crate serializes them byte-for-byte into the wire format.

use crate::errno::Errno;
use crate::fs::{Fd, OpenFlags, SeekWhence, StatBuf};
use crate::futex::FutexOp;
use crate::signal::{Sig, SigDisposition};
use crate::uname::UtsName;

/// mmap protection bits (Linux values).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Prot(pub u32);

impl Prot {
    pub const NONE: Prot = Prot(0);
    pub const READ: Prot = Prot(1);
    pub const WRITE: Prot = Prot(2);
    pub const EXEC: Prot = Prot(4);

    #[inline]
    pub fn contains(self, o: Prot) -> bool {
        self.0 & o.0 == o.0
    }
}

impl std::ops::BitOr for Prot {
    type Output = Prot;
    fn bitor(self, rhs: Prot) -> Prot {
        Prot(self.0 | rhs.0)
    }
}

/// mmap flags. `MAP_COPY` is the ld.so requirement the paper calls out
/// (§IV.B.2): map a file by copying it fully at map time.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct MapFlags(pub u32);

impl MapFlags {
    pub const PRIVATE: MapFlags = MapFlags(0x02);
    pub const SHARED: MapFlags = MapFlags(0x01);
    pub const FIXED: MapFlags = MapFlags(0x10);
    pub const ANONYMOUS: MapFlags = MapFlags(0x20);
    /// MAP_COPY: historic Linux flag (MAP_PRIVATE|MAP_DENYWRITE); ld.so
    /// passes it when loading shared objects.
    pub const COPY: MapFlags = MapFlags(0x0402);

    #[inline]
    pub fn contains(self, o: MapFlags) -> bool {
        self.0 & o.0 == o.0
    }
}

impl std::ops::BitOr for MapFlags {
    type Output = MapFlags;
    fn bitor(self, rhs: MapFlags) -> MapFlags {
        MapFlags(self.0 | rhs.0)
    }
}

/// clone(2) flags (Linux values). Paper §IV.B.1: "glibc uses the clone
/// system call with a static set of flags. The flags to clone are
/// validated against the expected flags."
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct CloneFlags(pub u64);

impl CloneFlags {
    pub const VM: CloneFlags = CloneFlags(0x0000_0100);
    pub const FS: CloneFlags = CloneFlags(0x0000_0200);
    pub const FILES: CloneFlags = CloneFlags(0x0000_0400);
    pub const SIGHAND: CloneFlags = CloneFlags(0x0000_0800);
    pub const THREAD: CloneFlags = CloneFlags(0x0001_0000);
    pub const SYSVSEM: CloneFlags = CloneFlags(0x0004_0000);
    pub const SETTLS: CloneFlags = CloneFlags(0x0008_0000);
    pub const PARENT_SETTID: CloneFlags = CloneFlags(0x0010_0000);
    pub const CHILD_CLEARTID: CloneFlags = CloneFlags(0x0020_0000);

    /// The exact flag set NPTL passes to clone for pthread_create.
    pub const NPTL_THREAD_FLAGS: CloneFlags = CloneFlags(
        0x0000_0100
            | 0x0000_0200
            | 0x0000_0400
            | 0x0000_0800
            | 0x0001_0000
            | 0x0004_0000
            | 0x0008_0000
            | 0x0010_0000
            | 0x0020_0000,
    );

    #[inline]
    pub fn contains(self, o: CloneFlags) -> bool {
        self.0 & o.0 == o.0
    }
}

impl std::ops::BitOr for CloneFlags {
    type Output = CloneFlags;
    fn bitor(self, rhs: CloneFlags) -> CloneFlags {
        CloneFlags(self.0 | rhs.0)
    }
}

/// A system-call request.
///
/// Buffers travel inside the request/response values (as the paper
/// describes for the function-ship protocol: "a write system call sends a
/// message containing the file descriptor number, length of the buffer,
/// and the buffer data").
#[derive(Clone, PartialEq, Debug)]
pub enum SysReq {
    // ---- file I/O: function-shipped by CNK, local on FWK ----
    Open {
        path: String,
        flags: OpenFlags,
        mode: u32,
    },
    Close {
        fd: Fd,
    },
    Read {
        fd: Fd,
        len: u64,
    },
    Write {
        fd: Fd,
        data: Vec<u8>,
    },
    Pread {
        fd: Fd,
        len: u64,
        offset: u64,
    },
    Pwrite {
        fd: Fd,
        data: Vec<u8>,
        offset: u64,
    },
    Lseek {
        fd: Fd,
        offset: i64,
        whence: SeekWhence,
    },
    Stat {
        path: String,
    },
    Fstat {
        fd: Fd,
    },
    Ftruncate {
        fd: Fd,
        len: u64,
    },
    Mkdir {
        path: String,
        mode: u32,
    },
    Unlink {
        path: String,
    },
    Rmdir {
        path: String,
    },
    Rename {
        from: String,
        to: String,
    },
    Chdir {
        path: String,
    },
    Getcwd,
    Dup {
        fd: Fd,
    },
    Fsync {
        fd: Fd,
    },

    // ---- memory: always local ----
    /// brk(0) queries; otherwise sets the program break.
    Brk {
        addr: u64,
    },
    Mmap {
        addr: u64,
        len: u64,
        prot: Prot,
        flags: MapFlags,
        fd: Option<Fd>,
        offset: u64,
    },
    Munmap {
        addr: u64,
        len: u64,
    },
    Mprotect {
        addr: u64,
        len: u64,
        prot: Prot,
    },

    // ---- threads / process ----
    Clone {
        flags: CloneFlags,
        child_stack: u64,
        tls: u64,
        parent_tid_addr: u64,
        child_tid_addr: u64,
    },
    SetTidAddress {
        addr: u64,
    },
    Futex {
        uaddr: u64,
        op: FutexOp,
    },
    SchedYield,
    Sigaction {
        sig: Sig,
        disposition: SigDisposition,
    },
    Tgkill {
        tid: u32,
        sig: Sig,
    },
    Gettid,
    Getpid,
    Uname,
    ExitThread {
        code: i32,
    },
    ExitGroup {
        code: i32,
    },

    // ---- not in CNK (ENOSYS there, implemented by FWK) §VII.B ----
    Fork,
    Exec {
        path: String,
    },

    // ---- CNK specials ----
    /// Open (or re-attach) a named persistent-memory region (§IV.D).
    PersistOpen {
        name: String,
        len: u64,
    },
    /// Query the static virtual→physical map (§IV.C: "a process can query
    /// the static map during initialization").
    QueryStaticMap,
    /// §VIII extended thread affinity: designate the calling process as
    /// the single "remote" partner of a core on its node (identified by
    /// the node-local core index). The core may then alternate between
    /// its home process's pthreads and the caller's.
    AffinityPartner {
        local_core: u32,
    },
}

impl SysReq {
    /// Is this one of the calls CNK offloads to the I/O node?
    /// (Everything filesystem-shaped; cf. §IV.A and §VI.A.)
    pub fn is_io(&self) -> bool {
        use SysReq::*;
        matches!(
            self,
            Open { .. }
                | Close { .. }
                | Read { .. }
                | Write { .. }
                | Pread { .. }
                | Pwrite { .. }
                | Lseek { .. }
                | Stat { .. }
                | Fstat { .. }
                | Ftruncate { .. }
                | Mkdir { .. }
                | Unlink { .. }
                | Rmdir { .. }
                | Rename { .. }
                | Chdir { .. }
                | Getcwd
                | Dup { .. }
                | Fsync { .. }
        )
    }

    /// Payload bytes that must travel to the I/O node with the request
    /// (affects function-ship latency on the collective network).
    pub fn outbound_bytes(&self) -> u64 {
        use SysReq::*;
        match self {
            Write { data, .. } | Pwrite { data, .. } => data.len() as u64,
            Open { path, .. }
            | Stat { path }
            | Chdir { path }
            | Mkdir { path, .. }
            | Unlink { path }
            | Rmdir { path }
            | Exec { path } => path.len() as u64,
            Rename { from, to } => (from.len() + to.len()) as u64,
            _ => 0,
        }
    }

    /// Payload bytes expected back from the I/O node.
    pub fn inbound_bytes(&self) -> u64 {
        use SysReq::*;
        match self {
            Read { len, .. } | Pread { len, .. } => *len,
            Getcwd => 256,
            Stat { .. } | Fstat { .. } => 64,
            _ => 0,
        }
    }

    /// Short mnemonic for tracing.
    pub fn name(&self) -> &'static str {
        use SysReq::*;
        match self {
            Open { .. } => "open",
            Close { .. } => "close",
            Read { .. } => "read",
            Write { .. } => "write",
            Pread { .. } => "pread",
            Pwrite { .. } => "pwrite",
            Lseek { .. } => "lseek",
            Stat { .. } => "stat",
            Fstat { .. } => "fstat",
            Ftruncate { .. } => "ftruncate",
            Mkdir { .. } => "mkdir",
            Unlink { .. } => "unlink",
            Rmdir { .. } => "rmdir",
            Rename { .. } => "rename",
            Chdir { .. } => "chdir",
            Getcwd => "getcwd",
            Dup { .. } => "dup",
            Fsync { .. } => "fsync",
            Brk { .. } => "brk",
            Mmap { .. } => "mmap",
            Munmap { .. } => "munmap",
            Mprotect { .. } => "mprotect",
            Clone { .. } => "clone",
            SetTidAddress { .. } => "set_tid_address",
            Futex { .. } => "futex",
            SchedYield => "sched_yield",
            Sigaction { .. } => "rt_sigaction",
            Tgkill { .. } => "tgkill",
            Gettid => "gettid",
            Getpid => "getpid",
            Uname => "uname",
            ExitThread { .. } => "exit",
            ExitGroup { .. } => "exit_group",
            Fork => "fork",
            Exec { .. } => "execve",
            PersistOpen { .. } => "persist_open",
            QueryStaticMap => "query_static_map",
            AffinityPartner { .. } => "affinity_partner",
        }
    }
}

/// A system-call result.
#[derive(Clone, PartialEq, Debug)]
pub enum SysRet {
    /// Scalar success value (fd number, byte count, address, pid, ...).
    Val(i64),
    /// Data-carrying success (read, getcwd).
    Data(Vec<u8>),
    Stat(StatBuf),
    Uname(UtsName),
    /// The queried static map: (virtual start, physical start, bytes) per
    /// region, in virtual-address order.
    StaticMap(Vec<(u64, u64, u64)>),
    Err(Errno),
}

impl SysRet {
    pub fn is_err(&self) -> bool {
        matches!(self, SysRet::Err(_))
    }

    /// Unwrap a scalar, panicking with context on mismatch. Test helper.
    pub fn val(&self) -> i64 {
        match self {
            SysRet::Val(v) => *v,
            other => panic!("expected SysRet::Val, got {other:?}"),
        }
    }

    pub fn err(&self) -> Errno {
        match self {
            SysRet::Err(e) => *e,
            other => panic!("expected SysRet::Err, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nptl_flags_contain_required_parts() {
        let f = CloneFlags::NPTL_THREAD_FLAGS;
        assert!(f.contains(CloneFlags::VM));
        assert!(f.contains(CloneFlags::THREAD));
        assert!(f.contains(CloneFlags::SETTLS));
        assert!(f.contains(CloneFlags::CHILD_CLEARTID));
        assert!(f.contains(CloneFlags::PARENT_SETTID));
    }

    #[test]
    fn io_classification() {
        assert!(SysReq::Write {
            fd: Fd(1),
            data: vec![0; 8]
        }
        .is_io());
        assert!(SysReq::Getcwd.is_io());
        assert!(!SysReq::Brk { addr: 0 }.is_io());
        assert!(!SysReq::Futex {
            uaddr: 0x1000,
            op: FutexOp::Wake { count: 1 }
        }
        .is_io());
        assert!(!SysReq::Fork.is_io());
    }

    #[test]
    fn payload_accounting() {
        let w = SysReq::Write {
            fd: Fd(1),
            data: vec![0; 4096],
        };
        assert_eq!(w.outbound_bytes(), 4096);
        assert_eq!(w.inbound_bytes(), 0);
        let r = SysReq::Read {
            fd: Fd(3),
            len: 65536,
        };
        assert_eq!(r.outbound_bytes(), 0);
        assert_eq!(r.inbound_bytes(), 65536);
    }

    #[test]
    fn map_copy_includes_private() {
        assert!(MapFlags::COPY.contains(MapFlags::PRIVATE));
    }

    #[test]
    fn prot_bits() {
        let rw = Prot::READ | Prot::WRITE;
        assert!(rw.contains(Prot::READ));
        assert!(!rw.contains(Prot::EXEC));
    }
}
