//! Filesystem vocabulary: file descriptors, open flags, seek whence, stat.
//!
//! These mirror the Linux ABI closely enough that the `ciod` crate can
//! marshal them into the function-ship wire format and an ioproxy can
//! execute them with identical semantics (paper §IV.A).

/// A process-local file descriptor.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Fd(pub i32);

impl Fd {
    pub const STDIN: Fd = Fd(0);
    pub const STDOUT: Fd = Fd(1);
    pub const STDERR: Fd = Fd(2);

    #[inline]
    pub fn is_std(self) -> bool {
        (0..=2).contains(&self.0)
    }
}

/// Open(2) flags. Modeled as a bitset with the Linux values.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct OpenFlags(pub u32);

impl OpenFlags {
    pub const RDONLY: OpenFlags = OpenFlags(0o0);
    pub const WRONLY: OpenFlags = OpenFlags(0o1);
    pub const RDWR: OpenFlags = OpenFlags(0o2);
    pub const CREAT: OpenFlags = OpenFlags(0o100);
    pub const EXCL: OpenFlags = OpenFlags(0o200);
    pub const TRUNC: OpenFlags = OpenFlags(0o1000);
    pub const APPEND: OpenFlags = OpenFlags(0o2000);
    pub const DIRECTORY: OpenFlags = OpenFlags(0o200000);

    #[inline]
    pub fn contains(self, other: OpenFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Access mode (lowest two bits).
    #[inline]
    pub fn access(self) -> u32 {
        self.0 & 0o3
    }

    #[inline]
    pub fn readable(self) -> bool {
        matches!(self.access(), 0o0 | 0o2)
    }

    #[inline]
    pub fn writable(self) -> bool {
        matches!(self.access(), 0o1 | 0o2)
    }
}

impl std::ops::BitOr for OpenFlags {
    type Output = OpenFlags;
    fn bitor(self, rhs: OpenFlags) -> OpenFlags {
        OpenFlags(self.0 | rhs.0)
    }
}

/// lseek(2) whence.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u32)]
pub enum SeekWhence {
    Set = 0,
    Cur = 1,
    End = 2,
}

impl SeekWhence {
    pub fn from_code(c: u32) -> Option<SeekWhence> {
        Some(match c {
            0 => SeekWhence::Set,
            1 => SeekWhence::Cur,
            2 => SeekWhence::End,
            _ => return None,
        })
    }
}

/// The kind of an inode.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum FileKind {
    Regular = 0,
    Directory = 1,
    /// A character device (the console on the I/O node).
    CharDev = 2,
}

impl FileKind {
    pub fn from_code(c: u8) -> Option<FileKind> {
        Some(match c {
            0 => FileKind::Regular,
            1 => FileKind::Directory,
            2 => FileKind::CharDev,
            _ => return None,
        })
    }
}

/// A minimal stat buffer: the fields the paper's applications consume.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StatBuf {
    pub kind: FileKind,
    pub size: u64,
    pub mode: u32,
    pub uid: u32,
    pub gid: u32,
    pub ino: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_flag_access_modes() {
        assert!(OpenFlags::RDONLY.readable());
        assert!(!OpenFlags::RDONLY.writable());
        assert!(OpenFlags::WRONLY.writable());
        assert!(!OpenFlags::WRONLY.readable());
        assert!(OpenFlags::RDWR.readable() && OpenFlags::RDWR.writable());
    }

    #[test]
    fn open_flag_combination() {
        let f = OpenFlags::WRONLY | OpenFlags::CREAT | OpenFlags::TRUNC;
        assert!(f.contains(OpenFlags::CREAT));
        assert!(f.contains(OpenFlags::TRUNC));
        assert!(!f.contains(OpenFlags::APPEND));
        assert!(f.writable());
    }

    #[test]
    fn whence_roundtrip() {
        for w in [SeekWhence::Set, SeekWhence::Cur, SeekWhence::End] {
            assert_eq!(SeekWhence::from_code(w as u32), Some(w));
        }
        assert_eq!(SeekWhence::from_code(7), None);
    }

    #[test]
    fn std_fds() {
        assert!(Fd::STDIN.is_std());
        assert!(Fd::STDERR.is_std());
        assert!(!Fd(3).is_std());
    }
}
