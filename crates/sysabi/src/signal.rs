//! Signal vocabulary.
//!
//! CNK implements `sigaction` because NPTL needs it "for thread signaling
//! and cancellation" (§IV.B.1), and because the machine-check path that
//! turned L1 parity errors into application-visible recovery events
//! (§V.B, the 2007 Gordon Bell run) is delivered as a signal.

/// Signals the CNK surface knows about (Linux numbering).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u32)]
pub enum Sig {
    /// Hangup — used by job control.
    Hup = 1,
    /// Interrupt.
    Int = 2,
    /// Illegal instruction.
    Ill = 4,
    /// Abort.
    Abrt = 6,
    /// Bus error — delivered on a DAC guard-page hit (§IV.C).
    Bus = 7,
    /// Kill (uncatchable).
    Kill = 9,
    /// User signal 1 — NPTL uses the RT range; we model cancellation here.
    Usr1 = 10,
    /// Segmentation violation.
    Segv = 11,
    /// User signal 2.
    Usr2 = 12,
    /// Termination.
    Term = 15,
    /// NPTL's internal cancel/setxid signal (SIGRTMIN = 32 on Linux/NPTL).
    Cancel = 32,
    /// Machine check: L1 parity error recovery notification (§V.B).
    /// Real CNK used SIGBUS machine-check info; we keep it distinct so
    /// tests can tell guard-page hits and parity events apart.
    Parity = 33,
}

impl Sig {
    pub fn from_code(c: u32) -> Option<Sig> {
        use Sig::*;
        Some(match c {
            1 => Hup,
            2 => Int,
            4 => Ill,
            6 => Abrt,
            7 => Bus,
            9 => Kill,
            10 => Usr1,
            11 => Segv,
            12 => Usr2,
            15 => Term,
            32 => Cancel,
            33 => Parity,
            _ => return None,
        })
    }

    /// Can user code install a handler for this signal?
    pub fn catchable(self) -> bool {
        self != Sig::Kill
    }

    /// Default disposition terminates the process.
    pub fn default_fatal(self) -> bool {
        !matches!(self, Sig::Usr1 | Sig::Usr2 | Sig::Cancel | Sig::Parity)
    }
}

/// What a process has installed for a signal.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SigDisposition {
    /// Default action (`SIG_DFL`).
    #[default]
    Default,
    /// Ignore (`SIG_IGN`).
    Ignore,
    /// A user handler, identified by a small integer the workload
    /// understands (we do not simulate instruction pointers).
    Handler(u32),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for c in 0..64 {
            if let Some(s) = Sig::from_code(c) {
                assert_eq!(s as u32, c);
            }
        }
    }

    #[test]
    fn kill_uncatchable() {
        assert!(!Sig::Kill.catchable());
        assert!(Sig::Bus.catchable());
    }

    #[test]
    fn parity_not_fatal_by_default() {
        // The Gordon Bell recovery story depends on the app surviving to
        // handle the event.
        assert!(!Sig::Parity.default_fatal());
        assert!(Sig::Segv.default_fatal());
    }
}
