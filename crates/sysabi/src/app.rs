//! Application images and job specifications.
//!
//! We do not parse real ELF binaries; `AppImage` carries exactly the
//! information CNK's loader extracts from ELF section headers (§IV.C:
//! "the ELF section information of the application indicates the location
//! and size of the text and data segments") plus the dynamic-library list
//! the ld.so model needs (§IV.B.2).

/// A dynamic shared object the application loads (at startup or later via
/// `dlopen`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DynLib {
    pub name: String,
    /// Text + read-only data bytes.
    pub text_bytes: u64,
    /// Writable data + bss bytes.
    pub data_bytes: u64,
}

/// What the job loader knows about an application binary.
#[derive(Clone, PartialEq, Debug)]
pub struct AppImage {
    pub name: String,
    /// .text + .rodata bytes.
    pub text_bytes: u64,
    /// .data + .bss bytes.
    pub data_bytes: u64,
    /// Initial heap request (brk arena) in bytes.
    pub initial_heap: u64,
    /// Main-thread stack bytes.
    pub main_stack: u64,
    /// True if dynamically linked (needs the ld.so model).
    pub dynamic: bool,
    /// Libraries needed at startup.
    pub dynlibs: Vec<DynLib>,
}

impl AppImage {
    /// A small statically linked test binary.
    pub fn static_test(name: &str) -> AppImage {
        AppImage {
            name: name.to_string(),
            text_bytes: 2 << 20,
            data_bytes: 1 << 20,
            initial_heap: 64 << 20,
            main_stack: 8 << 20,
            dynamic: false,
            dynlibs: Vec::new(),
        }
    }

    /// A Python-driven dynamically linked application in the style of the
    /// UMT benchmark (§IV.B.2, §V.B).
    pub fn umt_like() -> AppImage {
        AppImage {
            name: "umt".to_string(),
            text_bytes: 24 << 20,
            data_bytes: 8 << 20,
            initial_heap: 256 << 20,
            main_stack: 8 << 20,
            dynamic: true,
            dynlibs: vec![
                DynLib {
                    name: "libpython2.5.so".into(),
                    text_bytes: 6 << 20,
                    data_bytes: 1 << 20,
                },
                DynLib {
                    name: "libmpi.so".into(),
                    text_bytes: 4 << 20,
                    data_bytes: 512 << 10,
                },
                DynLib {
                    name: "libumt_physics.so".into(),
                    text_bytes: 12 << 20,
                    data_bytes: 2 << 20,
                },
            ],
        }
    }

    /// Total bytes of text across main image and startup libraries.
    pub fn total_text(&self) -> u64 {
        self.text_bytes + self.dynlibs.iter().map(|l| l.text_bytes).sum::<u64>()
    }

    /// Total bytes of writable data across main image and startup libraries.
    pub fn total_data(&self) -> u64 {
        self.data_bytes + self.dynlibs.iter().map(|l| l.data_bytes).sum::<u64>()
    }
}

/// How many processes share a node. BG/P job modes (§IV.C: "the number of
/// processes per node ... are specified by the user").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NodeMode {
    /// One process per node, all four cores available to its threads.
    Smp,
    /// Two processes per node, two cores each.
    Dual,
    /// Virtual node mode: four processes per node, one core each.
    Vn,
}

impl NodeMode {
    #[inline]
    pub fn procs_per_node(self) -> u32 {
        match self {
            NodeMode::Smp => 1,
            NodeMode::Dual => 2,
            NodeMode::Vn => 4,
        }
    }

    /// Cores assigned to each process on a 4-core node.
    #[inline]
    pub fn cores_per_proc(self) -> u32 {
        4 / self.procs_per_node()
    }
}

/// A job launch specification.
#[derive(Clone, Debug)]
pub struct JobSpec {
    pub image: AppImage,
    pub nodes: u32,
    pub mode: NodeMode,
    /// Size of the shared-memory region, which CNK "requires the user to
    /// define ... up-front as the application is launched" (§VII.B).
    pub shared_mem_bytes: u64,
    /// Names of persistent-memory regions this job may re-attach (§IV.D).
    pub persist_grants: Vec<String>,
}

impl JobSpec {
    pub fn new(image: AppImage, nodes: u32, mode: NodeMode) -> JobSpec {
        JobSpec {
            image,
            nodes,
            mode,
            shared_mem_bytes: 16 << 20,
            persist_grants: Vec::new(),
        }
    }

    pub fn ranks(&self) -> u32 {
        self.nodes * self.mode.procs_per_node()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_arithmetic() {
        assert_eq!(NodeMode::Smp.procs_per_node(), 1);
        assert_eq!(NodeMode::Smp.cores_per_proc(), 4);
        assert_eq!(NodeMode::Dual.procs_per_node(), 2);
        assert_eq!(NodeMode::Dual.cores_per_proc(), 2);
        assert_eq!(NodeMode::Vn.procs_per_node(), 4);
        assert_eq!(NodeMode::Vn.cores_per_proc(), 1);
    }

    #[test]
    fn job_rank_count() {
        let j = JobSpec::new(AppImage::static_test("a"), 16, NodeMode::Vn);
        assert_eq!(j.ranks(), 64);
    }

    #[test]
    fn umt_totals() {
        let u = AppImage::umt_like();
        assert!(u.dynamic);
        assert_eq!(
            u.total_text(),
            (24 << 20) + (6 << 20) + (4 << 20) + (12 << 20)
        );
        assert!(u.total_data() > u.data_bytes);
    }
}
