//! Futex operation vocabulary.
//!
//! The paper (§IV.B.1): "For atomic operations, such as pthread_mutex, a
//! full implementation of futex was needed." The operations below are the
//! ones glibc's NPTL actually issues: WAIT/WAKE for mutexes and joins,
//! REQUEUE/CMP_REQUEUE for condition variables, and the bitset variants
//! used by modern NPTL for targeted wakeups.

/// A futex operation, as carried by the `futex` system call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FutexOp {
    /// Block if `*uaddr == expected`.
    Wait { expected: u32 },
    /// Wake up to `count` waiters.
    Wake { count: u32 },
    /// Wake up to `wake` waiters and requeue up to `requeue` more onto
    /// `target_uaddr` (condition-variable broadcast).
    Requeue {
        wake: u32,
        requeue: u32,
        target_uaddr: u64,
    },
    /// Like `Requeue` but fails with EAGAIN if `*uaddr != expected`.
    CmpRequeue {
        wake: u32,
        requeue: u32,
        target_uaddr: u64,
        expected: u32,
    },
    /// Block if `*uaddr == expected`, tagged with a wake mask.
    WaitBitset { expected: u32, bitset: u32 },
    /// Wake up to `count` waiters whose bitset intersects `bitset`.
    WakeBitset { count: u32, bitset: u32 },
}

impl FutexOp {
    /// Does this operation block the caller (potentially)?
    pub fn is_wait(self) -> bool {
        matches!(self, FutexOp::Wait { .. } | FutexOp::WaitBitset { .. })
    }
}

/// The bitset that matches any waiter (FUTEX_BITSET_MATCH_ANY).
pub const FUTEX_BITSET_MATCH_ANY: u32 = u32::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_classification() {
        assert!(FutexOp::Wait { expected: 0 }.is_wait());
        assert!(FutexOp::WaitBitset {
            expected: 0,
            bitset: 1
        }
        .is_wait());
        assert!(!FutexOp::Wake { count: 1 }.is_wait());
        assert!(!FutexOp::Requeue {
            wake: 1,
            requeue: 1,
            target_uaddr: 0
        }
        .is_wait());
    }
}
